//! What the audit catches: a gallery of misbehaving executors.
//!
//! Each scenario serves an honest run, then tampers with a different
//! part of the executor's output — the response contents, the operation
//! logs, the op counts, the groupings — and shows the audit rejecting.
//! Finally it replays the honest bundle to show completeness.
//!
//! Run with: `cargo run --example adversarial`

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::{audit, AuditConfig};
use orochi::server::{Server, ServerConfig};
use orochi::state::{OpLog, OpLogEntry};
use orochi::trace::{Event, HttpRequest};
use orochi_common::ids::OpNum;
use std::collections::HashMap;

fn honest_bundle() -> (
    orochi::server::server::AuditBundle,
    HashMap<String, orochi::php::CompiledScript>,
) {
    let app = orochi::apps::forum::app();
    let scripts = app.compile().unwrap();
    let mut db = app.initial_db();
    for sql in orochi::workload::forum::seed_sql(&orochi::workload::forum::Params::default()) {
        db.execute_autocommit(&sql).0.unwrap();
    }
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: db,
        recording: true,
        seed: 99,
        ..Default::default()
    });
    server.handle(
        HttpRequest::post("/login.php", &[], &[("user", "mallory")]).with_cookie("sess", "mallory"),
    );
    server.handle(HttpRequest::get("/topic.php", &[("id", "1")]).with_cookie("sess", "mallory"));
    server.handle(
        HttpRequest::post("/reply.php", &[], &[("id", "1"), ("body", "hi")])
            .with_cookie("sess", "mallory"),
    );
    server.handle(HttpRequest::get("/topic.php", &[("id", "1")]));
    (server.into_bundle(), scripts)
}

fn verdict(
    label: &str,
    bundle: &orochi::server::server::AuditBundle,
    scripts: &HashMap<String, orochi::php::CompiledScript>,
    config: &AuditConfig,
) {
    let mut verifier = AccPhpExecutor::new(scripts.clone());
    match audit(&bundle.trace, &bundle.reports, &mut verifier, config) {
        Ok(_) => println!("{label:<28} ACCEPTED"),
        Err(r) => println!("{label:<28} REJECTED: {r}"),
    }
}

fn main() {
    let app = orochi::apps::forum::app();
    let mut config = AuditConfig::new();
    let mut db = app.initial_db();
    for sql in orochi::workload::forum::seed_sql(&orochi::workload::forum::Params::default()) {
        db.execute_autocommit(&sql).0.unwrap();
    }
    config.initial_dbs.insert("db:main".to_string(), db);

    // Honest run: must be accepted (Completeness, §2).
    let (bundle, scripts) = honest_bundle();
    verdict("honest executor", &bundle, &scripts, &config);

    // 1. Tampered response body: the server lies about what it sent.
    let (mut b, s) = honest_bundle();
    for event in b.trace.events.iter_mut() {
        if let Event::Response(_, resp) = event {
            if resp.body.contains("Topic 1") {
                resp.body = resp.body.replace("Topic 1", "Topic 1 (sponsored)");
                break;
            }
        }
    }
    verdict("tampered response", &b, &s, &config);

    // 2. Dropped operation: the logs hide a database write.
    let (mut b, s) = honest_bundle();
    let log = b.reports.op_logs.log_mut(0).unwrap();
    let mut entries = log.entries().to_vec();
    entries.pop();
    *log = OpLog::from_entries(entries);
    verdict("dropped log entry", &b, &s, &config);

    // 3. Reordered log: swap two entries of the database log.
    let (mut b, s) = honest_bundle();
    let log = b.reports.op_logs.log_mut(0).unwrap();
    let mut entries = log.entries().to_vec();
    if entries.len() >= 2 {
        entries.swap(0, 1);
    }
    *log = OpLog::from_entries(entries);
    verdict("reordered log entries", &b, &s, &config);

    // 4. Inflated op count: M promises an operation that never ran.
    let (mut b, s) = honest_bundle();
    if let Some((_, count)) = b.reports.op_counts.iter_mut().next() {
        *count += 1;
    }
    verdict("wrong op count", &b, &s, &config);

    // 5. Forged session value: rewrite a logged register write.
    let (mut b, s) = honest_bundle();
    'outer: for i in 0.. {
        let Some(log) = b.reports.op_logs.log_mut(i) else {
            break;
        };
        let mut entries: Vec<OpLogEntry> = log.entries().to_vec();
        for e in entries.iter_mut() {
            if let orochi::state::OpContents::RegisterWrite { value } = &mut e.contents {
                value.push(0xFF);
                *log = OpLog::from_entries(entries);
                break 'outer;
            }
        }
    }
    verdict("forged session write", &b, &s, &config);

    // 6. Scrambled grouping: claim requests with different control flow
    //    share one group. The responses themselves are genuine, so the
    //    audit rightly ACCEPTS — a bad grouping hint only slows the
    //    verifier down (divergence -> per-request fallback); it cannot
    //    make a lying executor pass.
    let (mut b, s) = honest_bundle();
    let all_rids: Vec<_> = b
        .reports
        .groupings
        .iter()
        .flat_map(|(_, rids)| rids.clone())
        .collect();
    b.reports.groupings = vec![(orochi_common::ids::CtlFlowTag(1), all_rids)];
    verdict("scrambled groupings (honest)", &b, &s, &config);

    // 7. Fabricated extra op: append a spurious read to a log.
    let (mut b, s) = honest_bundle();
    let log = b.reports.op_logs.log_mut(0).unwrap();
    let mut entries = log.entries().to_vec();
    if let Some(first) = entries.first().cloned() {
        entries.push(OpLogEntry {
            rid: first.rid,
            opnum: OpNum(99),
            contents: orochi::state::OpContents::RegisterRead,
        });
    }
    *log = OpLog::from_entries(entries);
    verdict("fabricated extra op", &b, &s, &config);
}
