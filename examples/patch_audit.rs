//! Patch-based auditing (§7, following Poirot): replay recorded
//! requests against *patched* code and report which responses change.
//!
//! The verifier re-executes the trace against a modified script. The
//! audit machinery is reused wholesale: the only difference is that
//! output mismatches are *collected* instead of rejected — each mismatch
//! is a request whose behaviour the patch altered.
//!
//! Run with: `cargo run --example patch_audit`

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::{audit, AuditConfig, Rejection};
use orochi::php::{compile, parse_script};
use orochi::server::{Server, ServerConfig};
use orochi::sqldb::Database;
use orochi::trace::HttpRequest;
use std::collections::HashMap;

const ORIGINAL: &str = r#"<?php
    $n = intval($_GET['n']);
    if ($n >= 10) { echo 'big:' . $n; } else { echo 'small:' . $n; }
"#;

// The patch moves the boundary — requests with n == 10 change behaviour.
const PATCHED: &str = r#"<?php
    $n = intval($_GET['n']);
    if ($n > 10) { echo 'big:' . $n; } else { echo 'small:' . $n; }
"#;

fn scripts_for(src: &str) -> HashMap<String, orochi::php::CompiledScript> {
    let mut scripts = HashMap::new();
    scripts.insert(
        "/t.php".to_string(),
        compile("/t.php", &parse_script(src).unwrap()).unwrap(),
    );
    scripts
}

fn main() {
    // Record a workload against the original code.
    let server = Server::new(ServerConfig {
        scripts: scripts_for(ORIGINAL),
        initial_db: Database::new(),
        recording: true,
        seed: 1,
        ..Default::default()
    });
    for n in [3, 10, 11, 9, 10, 25] {
        server.handle(HttpRequest::get("/t.php", &[("n", &n.to_string())]));
    }
    let bundle = server.into_bundle();

    // Sanity: the original code passes the audit.
    let mut verifier = AccPhpExecutor::new(scripts_for(ORIGINAL));
    audit(
        &bundle.trace,
        &bundle.reports,
        &mut verifier,
        &AuditConfig::new(),
    )
    .expect("original code audits clean");
    println!("original code: audit ACCEPTED (responses unchanged)");

    // Patch-based audit: replay against the patched code. A rejection
    // with OutputMismatch pinpoints a behaviour-changing request; we
    // keep auditing by removing it from consideration, collecting all
    // affected requests.
    let mut affected = Vec::new();
    let mut trace = bundle.trace.clone();
    let mut reports = bundle.reports.clone();
    loop {
        let mut verifier = AccPhpExecutor::new(scripts_for(PATCHED));
        match audit(&trace, &reports, &mut verifier, &AuditConfig::new()) {
            Ok(_) => break,
            Err(Rejection::OutputMismatch { rid }) => {
                affected.push(rid);
                // Drop the affected pair and keep looking.
                trace.events.retain(|e| e.rid() != rid);
                for (_, rids) in reports.groupings.iter_mut() {
                    rids.retain(|r| *r != rid);
                }
                reports.op_counts.remove(&rid);
            }
            Err(other) => {
                println!("patched audit stopped: {other}");
                break;
            }
        }
    }
    println!(
        "patched code: {} request(s) change behaviour: {:?}",
        affected.len(),
        affected
    );
}
