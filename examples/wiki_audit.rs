//! The Dana scenario (§1 of the paper): a wiki on an untrusted provider,
//! audited from the middlebox trace.
//!
//! Serves a Zipf-distributed MediaWiki-shaped workload on the concurrent
//! server, then audits it twice — once with SIMD-on-demand + query
//! deduplication (OROCHI) and once by simple per-request re-execution —
//! and prints the speedup.
//!
//! Run with: `cargo run --release --example wiki_audit`

use orochi::harness::{run_audit, serve, AppWorkload, ServeOptions};
use orochi::workload::wiki;

fn main() {
    let params = wiki::Params::scaled(0.1);
    println!(
        "workload: {} pages, Zipf β={}, ~{} views",
        params.pages, params.zipf_beta, params.view_requests
    );
    let work = AppWorkload {
        app: orochi::apps::wiki::app(),
        workload: wiki::generate(&params, 42),
        seed_sql: Vec::new(),
    };

    let served = serve(&work, &ServeOptions::default());
    println!(
        "served {} requests in {:.2?} (busy {:.2?}) across 4 client threads",
        served.requests, served.wall, served.busy
    );

    let orochi_run = run_audit(&served.bundle, &work, true, true)
        .unwrap_or_else(|r| panic!("audit rejected an honest server: {r}"));
    let simple_run = run_audit(&served.bundle, &work, false, false)
        .unwrap_or_else(|r| panic!("baseline audit rejected: {r}"));

    println!("\n-- OROCHI audit (grouped + dedup) --");
    let stats = &orochi_run.outcome.stats;
    println!("wall: {:.2?}", orochi_run.wall);
    for (phase, t) in stats.phases.iter() {
        println!("  {phase:<10} {t:.2?}");
    }
    println!(
        "  groups: {} ({} grouped, {} fallbacks), dedup hits: {}/{}",
        stats.groups_executed,
        orochi_run.exec_stats.grouped,
        orochi_run.exec_stats.fallbacks,
        stats.db_queries_deduped,
        stats.db_queries_deduped + stats.db_queries_issued,
    );

    println!("\n-- simple re-execution --");
    println!("wall: {:.2?}", simple_run.wall);

    println!(
        "\naudit speedup: {:.1}x",
        simple_run.wall.as_secs_f64() / orochi_run.wall.as_secs_f64()
    );
}
