//! Quickstart: put a program on an untrusted server, capture the trace,
//! and audit the responses.
//!
//! Run with: `cargo run --example quickstart`

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::{audit, AuditConfig};
use orochi::php::{compile, parse_script};
use orochi::server::{Server, ServerConfig};
use orochi::sqldb::Database;
use orochi::trace::HttpRequest;
use std::collections::HashMap;

fn main() {
    // 1. The principal's program: a PHP script that greets visitors and
    //    counts their visits in a session.
    let source = r#"<?php
        session_start();
        $_SESSION['visits'] = intval($_SESSION['visits']) + 1;
        echo 'hello ' . htmlspecialchars($_GET['name'])
            . ', visit #' . $_SESSION['visits'];
    "#;
    let mut scripts = HashMap::new();
    scripts.insert(
        "/hello.php".to_string(),
        compile("/hello.php", &parse_script(source).unwrap()).unwrap(),
    );

    // 2. Deploy on the (untrusted) server. The collector inside records
    //    the trace; the recording runtime assembles the reports.
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: Database::new(),
        recording: true,
        seed: 7,
        ..Default::default()
    });

    // 3. Clients talk to the server.
    for name in ["ada", "grace", "ada", "ada"] {
        let response = server
            .handle(HttpRequest::get("/hello.php", &[("name", name)]).with_cookie("sess", name));
        println!("server said: {}", response.body);
    }

    // 4. The audit: trace (trusted) + reports (untrusted) + the program.
    let bundle = server.into_bundle();
    println!(
        "\ntrace: {} events, reports: {} ops / {} bytes",
        bundle.trace.events.len(),
        bundle.reports.total_ops(),
        bundle.reports.wire_size(),
    );
    let mut verifier = AccPhpExecutor::new(scripts);
    match audit(
        &bundle.trace,
        &bundle.reports,
        &mut verifier,
        &AuditConfig::new(),
    ) {
        Ok(outcome) => println!(
            "AUDIT ACCEPTED: {} requests re-executed in {} groups",
            outcome.stats.requests_reexecuted, outcome.stats.groups_executed
        ),
        Err(rejection) => println!("AUDIT REJECTED: {rejection}"),
    }
}
