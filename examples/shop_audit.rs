//! The storefront scenario: serve the session-heavy shop workload,
//! audit it honestly, then tamper three different ways — a forged cart
//! total in the trace, a stale inventory read, and a replayed KV write
//! in the reports — and watch the audit reject each one.
//!
//! The shop routes most of its operations through session registers
//! (login + cart state) and the APC key-value store (inventory counters
//! with check-then-act races, a rendered-fragment cache), so this is
//! the register/versioned-KV counterpart of `wiki_audit`.
//!
//! Run with: `cargo run --release --example shop_audit`

use orochi::harness::tamper;
use orochi::harness::{run_audit, serve, AppWorkload, ServeOptions};
use orochi::server::server::AuditBundle;
use orochi::workload::shop;

fn shop_work(seed: u64) -> AppWorkload {
    let params = shop::Params::scaled(0.1);
    AppWorkload {
        app: orochi::apps::shop::app(),
        workload: shop::generate(&params, seed),
        seed_sql: shop::seed_sql(&params),
    }
}

fn main() {
    let work = shop_work(42);
    let params = shop::Params::scaled(0.1);
    println!(
        "workload: {} products (Zipf θ={}), {} sessions, ~{} requests",
        params.products,
        params.zipf_theta,
        params.sessions,
        work.workload.len()
    );

    let served = serve(&work, &ServeOptions::default());
    println!(
        "served {} requests in {:.2?} (busy {:.2?})",
        served.requests, served.wall, served.busy
    );
    let mut reg_kv = 0usize;
    let mut total = 0usize;
    for (_, name, log) in served.bundle.reports.op_logs.iter() {
        total += log.len();
        if name.as_str().starts_with("reg:") || name.as_str().starts_with("kv:") {
            reg_kv += log.len();
        }
    }
    println!(
        "{:.1}% of {} logged operations hit the register/KV sub-logs",
        reg_kv as f64 / total as f64 * 100.0,
        total
    );

    let honest = run_audit(&served.bundle, &work, true, true)
        .unwrap_or_else(|r| panic!("audit rejected an honest storefront: {r}"));
    println!(
        "\nhonest audit: ACCEPT in {:.2?} ({} register ops, {} kv ops, {} db txns)",
        honest.wall,
        honest.outcome.stats.register_ops,
        honest.outcome.stats.kv_ops,
        honest.outcome.stats.db_txns,
    );

    type Tamper = fn(&mut AuditBundle) -> bool;
    let tampers: [(&str, Tamper); 3] = [
        ("forged cart total", |b| {
            tamper::forge_cart_total(&mut b.trace)
        }),
        ("stale inventory read", |b| {
            tamper::reorder_kv_read(&mut b.reports, "inv:")
        }),
        ("replayed KV write", |b| {
            tamper::replay_kv_write(&mut b.reports, "inv:")
        }),
    ];
    for (label, apply) in tampers {
        // Tamper a fresh serve so the mutations don't stack.
        let work = shop_work(42);
        let mut served = serve(&work, &ServeOptions::default());
        assert!(apply(&mut served.bundle), "no site to apply {label}");
        match run_audit(&served.bundle, &work, true, true) {
            Ok(_) => panic!("{label}: the audit accepted a tampered run!"),
            Err(rejection) => println!("{label:<22} -> REJECT: {rejection}"),
        }
    }
}
