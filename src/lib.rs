//! # orochi-rs
//!
//! A Rust reproduction of **"The Efficient Server Audit Problem,
//! Deduplicated Re-execution, and the Web"** (Tan, Yu, Leners, Walfish —
//! SOSP 2017).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — SSCO, the audit algorithm: consistent-ordering
//!   verification, simulate-and-check, and the grouped re-execution
//!   driver.
//! * [`trace`] — request/response traces and the collector middlebox.
//! * [`state`] — shared objects: registers, key-value store, operation
//!   logs, and the audit-time versioned KV store.
//! * [`sqldb`] — the SQL-subset database engine with strict
//!   serializability and Warp-style versioned storage.
//! * [`php`] — the mini-PHP language: lexer, parser, bytecode compiler,
//!   and the scalar VM the online server runs.
//! * [`accphp`] — acc-PHP: the SIMD-on-demand multivalue VM the verifier
//!   runs.
//! * [`server`] — the online executor with untrusted report recording.
//! * [`apps`] — the three evaluation applications (wiki, forum,
//!   conference review).
//! * [`workload`] — workload generators with the paper's parameters.
//! * [`harness`] — end-to-end experiment drivers that regenerate every
//!   table and figure of the paper's evaluation.
//! * [`obs`] — the telemetry layer: lock-free metrics registry, RAII
//!   pipeline spans with a chrome://tracing journal, and the
//!   JSON/Prometheus exporters behind `OROCHI_OBS`.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

pub use orochi_accphp as accphp;
pub use orochi_apps as apps;
pub use orochi_common as common;
pub use orochi_core as core;
pub use orochi_harness as harness;
pub use orochi_obs as obs;
pub use orochi_php as php;
pub use orochi_server as server;
pub use orochi_sqldb as sqldb;
pub use orochi_state as state;
pub use orochi_trace as trace;
pub use orochi_workload as workload;

pub use orochi_harness::Config;
