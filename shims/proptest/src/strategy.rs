//! Value-generation strategies.
//!
//! The core abstraction mirrors proptest's: a [`Strategy`] produces
//! values of an associated type; combinators build bigger strategies
//! out of smaller ones. Unlike real proptest there is no value tree and
//! no shrinking — `generate` returns the final value directly.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive data: `recurse` receives the strategy built so far and
    /// wraps it one level deeper. The result generates leaves and trees
    /// up to `depth` levels deep. (`desired_size` and
    /// `expected_branch_size` are accepted for API compatibility; the
    /// per-level branch width already comes from `recurse` itself.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy::from_fn(move |rng| {
                // Half the mass on leaves keeps expected size finite.
                if rng.next_f64() < 0.5 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    generator: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generator: Rc::clone(&self.generator),
        }
    }
}

impl<V> BoxedStrategy<V> {
    pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> Self {
        BoxedStrategy {
            generator: Rc::new(f),
        }
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generator)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies; built by [`crate::prop_oneof!`].
#[derive(Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps Debug output readable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);

// Tuples of strategies generate tuples of values.
macro_rules! strategy_tuple {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_tuple!(A => 0, B => 1);
strategy_tuple!(A => 0, B => 1, C => 2);
strategy_tuple!(A => 0, B => 1, C => 2, D => 3);

// Numeric ranges are uniform strategies over the range.
macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// `&str` patterns: the subset of regex the tests use — concatenations
// of literal characters and `[...]` classes, each optionally followed
// by `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alternatives: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"\\.+*?()|^$".contains(c),
                "unsupported regex construct {c:?} in pattern {pattern:?}",
            );
            i += 1;
            vec![c]
        };
        // Optional {n} or {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.parse::<usize>().expect("bad repeat min"),
                    n.parse::<usize>().expect("bad repeat max"),
                ),
                None => {
                    let n = spec.parse::<usize>().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            let pick = rng.below(alternatives.len() as u64) as usize;
            out.push(alternatives[pick]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generation_respects_class_and_repeat() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..200 {
            let s = "[a-c]{1,2}".generate(&mut rng);
            assert!((1..=2).contains(&s.len()), "bad len: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad chars: {s:?}"
            );
        }
        for _ in 0..200 {
            let s = "[a-z0-9]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // fields exist to exercise Debug formatting
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(7);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }
}
