//! Collection strategies.

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates a `Vec` whose length is uniform in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end || size.start == 0, "empty size range");
    VecStrategy { element, size }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
