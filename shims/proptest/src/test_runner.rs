//! The per-test RNG and configuration.

/// How many cases [`crate::proptest!`] runs per test.
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator used for all strategy sampling.
///
/// Seeded from the test name so every test is deterministic across runs
/// and independent of execution order (no regressions file needed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
