//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice its property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_recursive`,
//! [`prelude::any`], [`prelude::Just`], ranges and `&str` regex
//! patterns as strategies, [`prop_oneof!`], [`collection::vec`], and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   `Debug`-printed; it is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce across runs without a
//!   `proptest-regressions` file.
//! * `&str` strategies support only the pattern shape the tests use:
//!   concatenations of literals and `[...]` classes with optional
//!   `{n}` / `{m,n}` repetition.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one test function body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                // Build each strategy once (construction can be heavy,
                // e.g. prop_recursive); the loop below shadows the
                // binding with the generated value per case.
                $(let $arg = $strategy;)+
                let strategies = ($(&$arg,)+);
                for case in 0..config.cases {
                    // Checkpoint the RNG: on failure the (possibly
                    // consumed) inputs are regenerated from it for the
                    // report, so passing cases pay no formatting cost.
                    let checkpoint = rng.clone();
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} failed for {}; inputs:",
                            case + 1, config.cases, stringify!($name),
                        );
                        let ($($arg,)+) = strategies;
                        let mut rng = checkpoint;
                        $(eprintln!(
                            "  {} = {:?}",
                            stringify!($arg),
                            $crate::strategy::Strategy::generate($arg, &mut rng),
                        );)+
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
