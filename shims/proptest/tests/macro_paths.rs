//! The proptest! macro's two paths: passing bodies run all cases;
//! failing bodies panic (after regenerating inputs for the report).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn in_range_values_pass(x in 0u8..10, pair in (any::<bool>(), 0i64..5)) {
        prop_assert!(x < 10);
        prop_assert!((0..5).contains(&pair.1));
    }
}

// No #[test] attribute: invoked manually below to observe the panic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    fn always_fails(v in proptest::collection::vec(0u8..10, 1..4)) {
        // Consumes the input, so the failure report must regenerate it.
        prop_assert!(v.into_iter().map(u32::from).sum::<u32>() > 1000);
    }
}

#[test]
fn failing_property_panics_with_report() {
    let outcome = std::panic::catch_unwind(always_fails);
    assert!(
        outcome.is_err(),
        "failing property must propagate its panic"
    );
}
