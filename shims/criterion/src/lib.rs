//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Statistics are deliberately simple — each benchmark runs
//! `sample_size` timed samples after a short warm-up and reports
//! min/median/mean wall-clock time per iteration. Good enough to rank
//! the paper's comparisons; swap in the real crate for publishable
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id, 10, f);
        self
    }

    /// Compatibility no-op (the real crate parses CLI args here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<60} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        bencher.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
