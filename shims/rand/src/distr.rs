//! Standard-distribution sampling and uniform ranges.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types samplable by [`crate::Rng::random`].
pub trait StandardUniform: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`crate::Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}
