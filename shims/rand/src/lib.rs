//! Offline, API-compatible subset of the `rand` crate (0.9 naming).
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`]. `StdRng` here is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms, which is all the
//! workload generators require (they fix seeds for reproducibility).

pub mod distr;
pub mod rngs;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T: distr::StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64`, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}
