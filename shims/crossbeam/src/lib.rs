//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! The build environment has no crates.io access; the workspace uses
//! [`channel::unbounded`] and [`channel::bounded`] — multi-producer
//! **multi-consumer** channels (std's `mpsc::Receiver` is not clonable,
//! which is why the harness reaches for crossbeam) — and
//! [`thread::scope`], the scoped-thread API the parallel audit's worker
//! pool is built on. The channels are a `Mutex<VecDeque>` plus
//! `Condvar`s; the bounded variant blocks senders at capacity
//! (backpressure) and offers `try_send` (load shedding) for the serving
//! front-end's admission queue. Throughput is adequate for the
//! request-dispatch loops it serves. Scoped threads delegate to
//! `std::thread::scope` behind crossbeam's signature.

pub mod thread {
    //! Scoped threads, API-compatible with `crossbeam::thread`.
    //!
    //! `scope(|s| { s.spawn(|_| ...); })` — spawned closures may borrow
    //! from the enclosing stack frame; every thread is joined before
    //! `scope` returns. Implemented over `std::thread::scope`, so a
    //! panicking child propagates on join exactly like the real crate's
    //! `.unwrap()` flow.

    /// A scope handle; crossbeam passes it to every spawned closure so
    /// nested spawns can join the same scope.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining returns the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope itself (crossbeam's signature) for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning borrowing threads. All spawned
    /// threads are joined before this returns; the `Result` wrapper
    /// mirrors crossbeam's API (this shim always returns `Ok` — a
    /// panicked, unjoined child propagates its panic instead, which is
    /// what callers' `.unwrap()` would have done anyway).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|v| s.spawn(move |_| *v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let out = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(out, 7);
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue frees a slot (recv) or the
        /// receiver side disconnects, waking blocked senders.
        space: Condvar,
        /// `usize::MAX` = unbounded.
        cap: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    fn with_cap<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(usize::MAX)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages:
    /// [`Sender::send`] blocks while the queue is full (backpressure)
    /// and [`Sender::try_send`] fails fast with [`TrySendError::Full`]
    /// (load shedding). Zero-capacity rendezvous channels are not
    /// implemented — no caller in this workspace needs one.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
        with_cap(cap)
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while queue.len() >= self.shared.cap {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                queue = self
                    .shared
                    .space
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] when a
        /// bounded queue is at capacity instead of waiting for a slot.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= self.shared.cap {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so it
                // can observe disconnection. The queue lock must be
                // held while notifying — a receiver between its
                // empty-check and its wait would otherwise miss the
                // wakeup and park forever.
                let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.shared.space.notify_one();
                Ok(value)
            } else if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake senders blocked on a full
                // bounded queue so they can observe disconnection.
                // Same lost-wakeup discipline as Sender::drop — notify
                // only while holding the queue lock, so a sender
                // between its full-check and its wait cannot miss it.
                let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.space.notify_all();
            }
        }
    }

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error from [`Sender::try_send`], carrying the unsent value.
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(rx);
            assert!(tx.send(2).is_err());
        }

        #[test]
        fn bounded_try_send_sheds_when_full() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn bounded_send_blocks_until_slot_frees() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let sender = thread::spawn(move || tx.send(2).is_ok());
            // The sender is blocked on the full queue; receiving frees
            // the slot and lets it complete.
            thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert!(sender.join().unwrap());
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn bounded_send_errors_when_receivers_vanish() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let sender = thread::spawn(move || tx.send(2).is_err());
            thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(sender.join().unwrap());
        }

        #[test]
        fn mpmc_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = 0u32;
                        while let Ok(v) = rx.recv() {
                            got += v;
                        }
                        got
                    })
                })
                .collect();
            for _ in 0..1000 {
                tx.send(1).unwrap();
            }
            drop(tx);
            let total: u32 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }
    }
}
