//! The `lock_api` guard types re-exported by parking_lot.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::Mutex;

/// An owned mutex guard: holds both the `Arc` and the lock, so it can
/// outlive the borrow that created it (used by `sqldb::Transaction` to
/// keep the database's global lock across statements).
pub struct ArcMutexGuard<R, T: ?Sized> {
    mutex: Arc<Mutex<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> ArcMutexGuard<R, T> {
    /// Wraps an `Arc`'d mutex whose raw lock the caller has already
    /// acquired; the guard releases it on drop.
    pub(crate) fn new(mutex: Arc<Mutex<T>>) -> Self {
        ArcMutexGuard {
            mutex,
            _raw: PhantomData,
        }
    }
}

unsafe impl<R, T: ?Sized + Send> Send for ArcMutexGuard<R, T> {}
unsafe impl<R, T: ?Sized + Send + Sync> Sync for ArcMutexGuard<R, T> {}

impl<R, T: ?Sized> Deref for ArcMutexGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data_ptr() }
    }
}

impl<R, T: ?Sized> DerefMut for ArcMutexGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data_ptr() }
    }
}

impl<R, T: ?Sized> Drop for ArcMutexGuard<R, T> {
    fn drop(&mut self) {
        self.mutex.raw_unlock();
    }
}
