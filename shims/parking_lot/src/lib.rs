//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice it uses: [`Mutex`] with [`Mutex::lock`] and the
//! owned-guard [`Mutex::lock_arc`] (returning
//! [`lock_api::ArcMutexGuard`], which the SQL engine stores inside its
//! `Transaction` to hold the global lock across statements).
//!
//! The implementation is a fair-enough blocking lock built on
//! `std::sync::Mutex<bool>` + `Condvar` — no poisoning (matching
//! parking_lot semantics: a panicking holder simply releases the lock).

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

pub mod lock_api;

use lock_api::ArcMutexGuard;

/// The raw lock backing [`Mutex`]; exposed because `lock_api` guard
/// types are generic over it.
#[derive(Default)]
pub struct RawMutex {
    locked: StdMutex<bool>,
    cond: Condvar,
}

impl RawMutex {
    fn new() -> Self {
        Self::default()
    }

    fn lock(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        while *locked {
            locked = self.cond.wait(locked).unwrap_or_else(|e| e.into_inner());
        }
        *locked = true;
    }

    fn unlock(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        *locked = false;
        drop(locked);
        self.cond.notify_one();
    }
}

/// A mutual-exclusion primitive without poisoning.
pub struct Mutex<T: ?Sized> {
    raw: RawMutex,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            raw: RawMutex::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.raw.lock();
        MutexGuard {
            mutex: self,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Acquires the lock on an `Arc`'d mutex, returning an owned guard
    /// that keeps the lock held for its own lifetime (parking_lot's
    /// `arc_lock` feature).
    pub fn lock_arc(self: &Arc<Self>) -> ArcMutexGuard<RawMutex, T> {
        self.raw.lock();
        ArcMutexGuard::new(Arc::clone(self))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    pub(crate) fn raw_unlock(&self) {
        self.raw.unlock();
    }

    pub(crate) fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    /// Suppresses the auto Send/Sync impls (`&Mutex<T>` alone would
    /// make the guard Sync for any `T: Send`, handing `&T` to other
    /// threads even when `T: !Sync`); the explicit impl below mirrors
    /// real parking_lot: Sync iff `T: Sync`, never Send.
    _not_send: std::marker::PhantomData<*const ()>,
}

unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data_ptr() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data_ptr() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.raw_unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn arc_guard_holds_lock_until_drop() {
        let m = Arc::new(Mutex::new(5u32));
        let guard = m.lock_arc();
        assert_eq!(*guard, 5);
        drop(guard);
        assert_eq!(*m.lock(), 5);
    }
}
