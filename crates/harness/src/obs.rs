//! Telemetry export: writes the registry snapshot and the event
//! journal to the artifact prefix configured by `--obs-out` /
//! `OROCHI_OBS_OUT`.

use crate::config::Config;
use std::io;
use std::path::PathBuf;

/// Exports telemetry artifacts for `config.obs_out` prefix `P`:
///
/// * `P.metrics.json` — JSON snapshot of every registered metric;
/// * `P.prom` — the same registry in Prometheus text format;
/// * `P.trace.json` — the event journal as chrome://tracing JSON
///   (open it in `chrome://tracing` or Perfetto).
///
/// Returns the paths written, or an empty list when no export prefix
/// is configured. Call at the end of a run, after the last audit.
pub fn export_obs(config: &Config) -> io::Result<Vec<PathBuf>> {
    let Some(prefix) = &config.obs_out else {
        return Ok(Vec::new());
    };
    if let Some(parent) = prefix.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let with_ext = |ext: &str| -> PathBuf {
        let mut name = prefix.file_name().unwrap_or_default().to_os_string();
        name.push(ext);
        prefix.with_file_name(name)
    };
    let metrics = with_ext(".metrics.json");
    std::fs::write(&metrics, orochi_obs::export::json_snapshot())?;
    let prom = with_ext(".prom");
    std::fs::write(&prom, orochi_obs::export::prometheus_text())?;
    let trace = with_ext(".trace.json");
    std::fs::write(&trace, orochi_obs::journal::chrome_trace_json())?;
    Ok(vec![metrics, prom, trace])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefix_no_files() {
        let config = Config::default();
        assert!(export_obs(&config).unwrap().is_empty());
    }

    #[test]
    fn export_writes_three_artifacts() {
        let dir = std::env::temp_dir().join(format!("orochi-obs-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = Config {
            obs_out: Some(dir.join("run")),
            ..Config::default()
        };
        orochi_obs::registry::counter("test_export_obs_total").inc();
        let paths = export_obs(&config).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{} missing", p.display());
        }
        let metrics = std::fs::read_to_string(dir.join("run.metrics.json")).unwrap();
        assert!(metrics.contains("test_export_obs_total"));
        let trace = std::fs::read_to_string(dir.join("run.trace.json")).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
