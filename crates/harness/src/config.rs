//! One typed configuration for every OROCHI knob.
//!
//! Historically each knob lived in its own `OROCHI_*` environment
//! variable with a hand-rolled reader, and each bench binary grew its
//! own flag parsing. [`Config`] consolidates them: a plain struct with
//! typed fields, loaded from the environment ([`Config::from_env`]),
//! merged with command-line flags ([`Config::apply_cli`] — CLI wins
//! over environment), and exportable back to the environment
//! ([`Config::export_env`]) so code that still reads the variables
//! (workload generators, the serving front-end defaults) sees the same
//! configuration. The environment names remain the compatibility
//! layer; the legacy per-knob readers in [`crate::driver`] keep
//! working.
//!
//! | Field | Variable | Flag | Default |
//! |---|---|---|---|
//! | `serve_threads` | `OROCHI_SERVE_THREADS` | `--serve-threads` | 4 |
//! | `serve_queue` | `OROCHI_SERVE_QUEUE` | `--queue-depth` | unbounded |
//! | `audit_threads` | `OROCHI_AUDIT_THREADS` | `--audit-threads` | auto |
//! | `vm_engine` | `OROCHI_VM_ENGINE` | `--engine` | register |
//! | `skew` | `OROCHI_WORKLOAD_SKEW` | `--skew`, `--session-len` | per-workload |
//! | `full` | `OROCHI_FULL` | `--full` | CI scale |
//! | `bench_json` | `OROCHI_BENCH_JSON` | `--bench-json` | off |
//! | `store_dir` | `OROCHI_STORE_DIR` | `--store-dir` | in-RAM audit |
//! | `segment_bytes` | `OROCHI_SEGMENT_BYTES` | `--segment-bytes` | 1 MiB |
//! | `epoch_events` | `OROCHI_EPOCH_EVENTS` | `--epoch-events` | 0 (batch) |
//! | `obs` | `OROCHI_OBS` | `--obs` | off |
//! | `obs_out` | `OROCHI_OBS_OUT` | `--obs-out` | no export |
//! | `campaigns` | `OROCHI_CAMPAIGNS` | `--campaigns` | bin-sized |
//! | `campaign_k` | `OROCHI_CAMPAIGN_K` | `--campaign-k` | 0 (cycle 1–3) |
//! | `campaign_seed` | `OROCHI_CAMPAIGN_SEED` | `--campaign-seed` | 0xC0FFEE |

use crate::driver::{
    resolve_audit_threads, resolve_serve_threads, vm_engine_from_env, AuditOptions, ServeOptions,
};
use orochi_accphp::executor::VmEngine;
use orochi_trace::DEFAULT_SEGMENT_BYTES;
use orochi_workload::skew::Skew;
use std::path::PathBuf;

/// A thread-count knob: explicit, or "whatever the machine has".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// Use the available parallelism.
    Auto,
    /// An explicit count (`0` also means auto at resolution time).
    Exact(usize),
}

impl Threads {
    fn parse(label: &str, v: &str) -> Threads {
        if v.eq_ignore_ascii_case("auto") || v.is_empty() {
            Threads::Auto
        } else {
            Threads::Exact(
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{label} must be a number or 'auto', got {v:?}")),
            )
        }
    }

    fn parse_flag(bin: &str, flag: &str, v: &str) -> Threads {
        if v.eq_ignore_ascii_case("auto") {
            Threads::Auto
        } else {
            Threads::Exact(
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{bin}: {flag} needs a count or auto")),
            )
        }
    }

    fn env_value(&self) -> String {
        match self {
            Threads::Auto => "auto".to_string(),
            Threads::Exact(n) => n.to_string(),
        }
    }
}

/// The consolidated knob set. Fields are public; construct with
/// [`Config::default`], [`Config::from_env`], or either followed by
/// [`Config::apply_cli`].
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Serving front-end worker threads.
    pub serve_threads: Threads,
    /// Admission-queue depth; `0` = unbounded.
    pub serve_queue: usize,
    /// Audit re-execution worker threads.
    pub audit_threads: Threads,
    /// PHP bytecode engine for re-execution.
    pub vm_engine: VmEngine,
    /// Workload skew override (Zipf theta, session length).
    pub skew: Skew,
    /// Paper-scale workloads instead of the CI-friendly fraction.
    pub full: bool,
    /// Where bench binaries write their JSON row; `None` = don't.
    pub bench_json: Option<String>,
    /// Directory for the segmented trace store; `None` = audit in RAM.
    pub store_dir: Option<PathBuf>,
    /// Segment size budget for trace spilling.
    pub segment_bytes: usize,
    /// Epoch budget for the streaming audit, in trace events; `0`
    /// means batch (the whole trace as one epoch).
    pub epoch_events: usize,
    /// Enable the clock-bearing telemetry layer (spans, event journal,
    /// admission-wait timestamps). Implied by `obs_out`.
    pub obs: bool,
    /// Export prefix for telemetry artifacts: `<prefix>.metrics.json`,
    /// `<prefix>.prom`, `<prefix>.trace.json`; `None` = no export.
    pub obs_out: Option<PathBuf>,
    /// Number of mutated campaign runs for the adversarial campaign
    /// bench; `0` means the binary picks its own smoke/full sizing.
    pub campaigns: usize,
    /// Mutation sites per campaign; `0` cycles k through 1–3.
    pub campaign_k: usize,
    /// Base seed for the campaign's mutation plans.
    pub campaign_seed: u64,
    /// Server randomness seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            serve_threads: Threads::Exact(4),
            serve_queue: 0,
            audit_threads: Threads::Auto,
            vm_engine: VmEngine::Register,
            skew: Skew::default(),
            full: false,
            bench_json: None,
            store_dir: None,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            epoch_events: 0,
            obs: false,
            obs_out: None,
            campaigns: 0,
            campaign_k: 0,
            campaign_seed: 0xC0FFEE,
            seed: 42,
        }
    }
}

fn parse_u64_maybe_hex(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse::<u64>().ok(),
    }
}

fn env_nonempty(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) if !v.is_empty() => Some(v),
        _ => None,
    }
}

impl Config {
    /// Loads every knob from its `OROCHI_*` variable, with the same
    /// defaults and panic messages as the legacy per-knob readers.
    ///
    /// # Panics
    ///
    /// Panics on malformed values — a silently ignored knob would
    /// corrupt an experiment.
    pub fn from_env() -> Config {
        let defaults = Config::default();
        Config {
            serve_threads: match std::env::var("OROCHI_SERVE_THREADS") {
                Ok(v) => Threads::parse("OROCHI_SERVE_THREADS", &v),
                Err(_) => defaults.serve_threads,
            },
            serve_queue: match env_nonempty("OROCHI_SERVE_QUEUE") {
                Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
                    panic!("OROCHI_SERVE_QUEUE must be a queue depth, got {v:?}")
                }),
                None => defaults.serve_queue,
            },
            audit_threads: match std::env::var("OROCHI_AUDIT_THREADS") {
                Ok(v) => Threads::parse("OROCHI_AUDIT_THREADS", &v),
                Err(_) => defaults.audit_threads,
            },
            vm_engine: vm_engine_from_env(),
            skew: orochi_workload::skew::from_env(),
            full: matches!(std::env::var("OROCHI_FULL"),
                           Ok(v) if v == "1" || v.eq_ignore_ascii_case("true")),
            bench_json: env_nonempty("OROCHI_BENCH_JSON"),
            store_dir: env_nonempty("OROCHI_STORE_DIR").map(PathBuf::from),
            segment_bytes: match env_nonempty("OROCHI_SEGMENT_BYTES") {
                Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
                    panic!("OROCHI_SEGMENT_BYTES must be a byte count, got {v:?}")
                }),
                None => defaults.segment_bytes,
            },
            epoch_events: match env_nonempty("OROCHI_EPOCH_EVENTS") {
                Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
                    panic!("OROCHI_EPOCH_EVENTS must be an event count, got {v:?}")
                }),
                None => defaults.epoch_events,
            },
            obs: matches!(std::env::var("OROCHI_OBS"),
                          Ok(v) if v == "1" || v.eq_ignore_ascii_case("true")),
            obs_out: env_nonempty("OROCHI_OBS_OUT").map(PathBuf::from),
            campaigns: match env_nonempty("OROCHI_CAMPAIGNS") {
                Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
                    panic!("OROCHI_CAMPAIGNS must be a campaign count, got {v:?}")
                }),
                None => defaults.campaigns,
            },
            campaign_k: match env_nonempty("OROCHI_CAMPAIGN_K") {
                Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
                    panic!("OROCHI_CAMPAIGN_K must be a site count, got {v:?}")
                }),
                None => defaults.campaign_k,
            },
            campaign_seed: match env_nonempty("OROCHI_CAMPAIGN_SEED") {
                Some(v) => parse_u64_maybe_hex(&v).unwrap_or_else(|| {
                    panic!("OROCHI_CAMPAIGN_SEED must be a seed (decimal or 0x hex), got {v:?}")
                }),
                None => defaults.campaign_seed,
            },
            seed: defaults.seed,
        }
    }

    /// Merges command-line flags into `self` (CLI wins over whatever
    /// the config currently holds). Unknown arguments panic with a
    /// usage message naming `bin`.
    ///
    /// # Panics
    ///
    /// Panics on unknown flags, missing values, or malformed values.
    pub fn apply_cli(&mut self, bin: &str, args: impl Iterator<Item = String>) {
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value_of = |flag: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{bin}: {flag} needs a value"))
            };
            match arg.as_str() {
                "--skew" => {
                    let v = value_of("--skew");
                    let parsed =
                        Skew::parse(&v).unwrap_or_else(|e| panic!("{bin}: invalid skew: {e}"));
                    if parsed.theta.is_some() {
                        self.skew.theta = parsed.theta;
                    }
                    if parsed.session_len.is_some() {
                        self.skew.session_len = parsed.session_len;
                    }
                }
                "--session-len" => {
                    let v = value_of("--session-len");
                    let parsed = Skew::parse(&format!(",{v}"))
                        .unwrap_or_else(|e| panic!("{bin}: invalid skew: {e}"));
                    self.skew.session_len = parsed.session_len;
                }
                "--serve-threads" => {
                    self.serve_threads =
                        Threads::parse_flag(bin, "--serve-threads", &value_of("--serve-threads"));
                }
                "--queue-depth" => {
                    let v = value_of("--queue-depth");
                    self.serve_queue = v
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("{bin}: --queue-depth needs a number"));
                }
                "--audit-threads" => {
                    self.audit_threads =
                        Threads::parse_flag(bin, "--audit-threads", &value_of("--audit-threads"));
                }
                "--engine" => {
                    let v = value_of("--engine");
                    self.vm_engine = if v.eq_ignore_ascii_case("stack") {
                        VmEngine::Stack
                    } else if v.eq_ignore_ascii_case("register") {
                        VmEngine::Register
                    } else {
                        panic!("{bin}: --engine must be 'register' or 'stack', got {v:?}")
                    };
                }
                "--full" => self.full = true,
                "--bench-json" => self.bench_json = Some(value_of("--bench-json")),
                "--store-dir" => {
                    self.store_dir = Some(PathBuf::from(value_of("--store-dir")));
                }
                "--segment-bytes" => {
                    let v = value_of("--segment-bytes");
                    self.segment_bytes = v
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("{bin}: --segment-bytes needs a byte count"));
                }
                "--epoch-events" => {
                    let v = value_of("--epoch-events");
                    self.epoch_events = v
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("{bin}: --epoch-events needs an event count"));
                }
                "--obs" => self.obs = true,
                "--obs-out" => {
                    self.obs_out = Some(PathBuf::from(value_of("--obs-out")));
                }
                "--campaigns" => {
                    let v = value_of("--campaigns");
                    self.campaigns = v
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("{bin}: --campaigns needs a count"));
                }
                "--campaign-k" => {
                    let v = value_of("--campaign-k");
                    self.campaign_k = v
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("{bin}: --campaign-k needs a site count"));
                }
                "--campaign-seed" => {
                    let v = value_of("--campaign-seed");
                    self.campaign_seed = parse_u64_maybe_hex(&v).unwrap_or_else(|| {
                        panic!("{bin}: --campaign-seed needs a seed (decimal or 0x hex)")
                    });
                }
                other => panic!(
                    "{bin}: unknown argument {other:?} \
                     (supported: --skew <theta[,session_len]>, --session-len <len>, \
                     --serve-threads <n|auto>, --queue-depth <n>, \
                     --audit-threads <n|auto>, --engine <register|stack>, --full, \
                     --bench-json <path>, --store-dir <path>, --segment-bytes <n>, \
                     --epoch-events <n>, --obs, --obs-out <prefix>, \
                     --campaigns <n>, --campaign-k <k>, --campaign-seed <seed>)"
                ),
            }
        }
    }

    /// Writes every knob back to its `OROCHI_*` variable so legacy
    /// readers (workload generators, `ServeOptions::default`) observe
    /// this configuration.
    pub fn export_env(&self) {
        std::env::set_var("OROCHI_SERVE_THREADS", self.serve_threads.env_value());
        std::env::set_var("OROCHI_SERVE_QUEUE", self.serve_queue.to_string());
        std::env::set_var("OROCHI_AUDIT_THREADS", self.audit_threads.env_value());
        std::env::set_var(
            "OROCHI_VM_ENGINE",
            match self.vm_engine {
                VmEngine::Register => "register",
                VmEngine::Stack => "stack",
            },
        );
        match self.skew_env_value() {
            Some(v) => std::env::set_var("OROCHI_WORKLOAD_SKEW", v),
            None => std::env::remove_var("OROCHI_WORKLOAD_SKEW"),
        }
        std::env::set_var("OROCHI_FULL", if self.full { "1" } else { "0" });
        match &self.bench_json {
            Some(path) => std::env::set_var("OROCHI_BENCH_JSON", path),
            None => std::env::remove_var("OROCHI_BENCH_JSON"),
        }
        match &self.store_dir {
            Some(dir) => std::env::set_var("OROCHI_STORE_DIR", dir),
            None => std::env::remove_var("OROCHI_STORE_DIR"),
        }
        std::env::set_var("OROCHI_SEGMENT_BYTES", self.segment_bytes.to_string());
        std::env::set_var("OROCHI_EPOCH_EVENTS", self.epoch_events.to_string());
        let obs_on = self.obs_enabled();
        std::env::set_var("OROCHI_OBS", if obs_on { "1" } else { "0" });
        match &self.obs_out {
            Some(prefix) => std::env::set_var("OROCHI_OBS_OUT", prefix),
            None => std::env::remove_var("OROCHI_OBS_OUT"),
        }
        std::env::set_var("OROCHI_CAMPAIGNS", self.campaigns.to_string());
        std::env::set_var("OROCHI_CAMPAIGN_K", self.campaign_k.to_string());
        std::env::set_var("OROCHI_CAMPAIGN_SEED", self.campaign_seed.to_string());
        // The telemetry layer caches its enabled flag; push the decision
        // through so code that already resolved it observes this config.
        orochi_obs::set_enabled(obs_on);
    }

    /// Whether the clock-bearing telemetry layer should be on: asked
    /// for explicitly (`--obs`), or implied by an export destination.
    pub fn obs_enabled(&self) -> bool {
        self.obs || self.obs_out.is_some()
    }

    /// The skew knob in its `OROCHI_WORKLOAD_SKEW` syntax, or `None`
    /// when nothing is overridden.
    fn skew_env_value(&self) -> Option<String> {
        match (self.skew.theta, self.skew.session_len) {
            (None, None) => None,
            (Some(t), None) => Some(format!("{t}")),
            (None, Some(l)) => Some(format!(",{l}")),
            (Some(t), Some(l)) => Some(format!("{t},{l}")),
        }
    }

    /// Workload scale matching [`crate::experiments::scale_from_env`].
    pub fn scale(&self) -> f64 {
        if self.full {
            1.0
        } else {
            0.05
        }
    }

    /// Resolved serving worker count.
    pub fn resolved_serve_threads(&self) -> usize {
        match self.serve_threads {
            Threads::Auto => resolve_serve_threads(0),
            Threads::Exact(n) => resolve_serve_threads(n),
        }
    }

    /// Resolved (hardware-clamped) audit worker count.
    pub fn resolved_audit_threads(&self) -> usize {
        match self.audit_threads {
            Threads::Auto => resolve_audit_threads(0),
            Threads::Exact(n) => resolve_audit_threads(n),
        }
    }

    /// Serving options carrying this configuration.
    pub fn serve_options(&self) -> ServeOptions {
        ServeOptions {
            threads: self.resolved_serve_threads(),
            queue_depth: self.serve_queue,
            recording: true,
            seed: self.seed,
        }
    }

    /// Audit options carrying this configuration (grouped re-execution
    /// and query dedup on, as everywhere outside the ablations).
    pub fn audit_options(&self) -> AuditOptions {
        AuditOptions {
            grouped: true,
            dedup: true,
            threads: self.resolved_audit_threads(),
            engine: self.vm_engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults_match_legacy_readers() {
        let c = Config::default();
        assert_eq!(c.serve_threads, Threads::Exact(4));
        assert_eq!(c.serve_queue, 0);
        assert_eq!(c.audit_threads, Threads::Auto);
        assert_eq!(c.vm_engine, VmEngine::Register);
        assert_eq!(c.segment_bytes, DEFAULT_SEGMENT_BYTES);
        assert_eq!(c.epoch_events, 0, "batch by default");
        assert!(!c.full);
        assert!(c.bench_json.is_none() && c.store_dir.is_none());
    }

    #[test]
    fn cli_merges_over_defaults() {
        let mut c = Config::default();
        c.apply_cli(
            "t",
            args(&[
                "--skew",
                "0.8",
                "--session-len",
                "4",
                "--serve-threads",
                "8",
                "--queue-depth",
                "64",
                "--audit-threads",
                "auto",
                "--engine",
                "stack",
                "--full",
                "--bench-json",
                "/tmp/out.json",
                "--store-dir",
                "/tmp/store",
                "--segment-bytes",
                "65536",
                "--epoch-events",
                "512",
            ]),
        );
        assert_eq!(c.skew.theta, Some(0.8));
        assert_eq!(c.skew.session_len, Some(4.0));
        assert_eq!(c.serve_threads, Threads::Exact(8));
        assert_eq!(c.serve_queue, 64);
        assert_eq!(c.audit_threads, Threads::Auto);
        assert_eq!(c.vm_engine, VmEngine::Stack);
        assert!(c.full);
        assert_eq!(c.bench_json.as_deref(), Some("/tmp/out.json"));
        assert_eq!(c.store_dir, Some(PathBuf::from("/tmp/store")));
        assert_eq!(c.segment_bytes, 65536);
        assert_eq!(c.epoch_events, 512);
        assert_eq!(c.scale(), 1.0);
    }

    #[test]
    fn session_len_overrides_embedded_skew_part() {
        let mut c = Config::default();
        c.apply_cli("t", args(&["--skew", "1.1,9", "--session-len", "2"]));
        assert_eq!(c.skew.theta, Some(1.1));
        assert_eq!(c.skew.session_len, Some(2.0));
        assert_eq!(c.skew_env_value().as_deref(), Some("1.1,2"));
        let mut only_len = Config::default();
        only_len.apply_cli("t", args(&["--session-len", "2"]));
        assert_eq!(only_len.skew_env_value().as_deref(), Some(",2"));
        assert_eq!(Config::default().skew_env_value(), None);
    }

    #[test]
    fn obs_knobs_parse_and_imply() {
        let mut c = Config::default();
        assert!(!c.obs_enabled());
        c.apply_cli("t", args(&["--obs"]));
        assert!(c.obs && c.obs_enabled());
        let mut c = Config::default();
        c.apply_cli("t", args(&["--obs-out", "/tmp/obs_run"]));
        assert!(!c.obs, "--obs-out alone leaves the flag false");
        assert!(c.obs_enabled(), "but implies the layer is on");
        assert_eq!(c.obs_out, Some(PathBuf::from("/tmp/obs_run")));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flags_panic() {
        Config::default().apply_cli("t", args(&["--frobnicate"]));
    }

    #[test]
    fn campaign_knobs_parse() {
        let c = Config::default();
        assert_eq!(c.campaigns, 0, "bin picks its own sizing by default");
        assert_eq!(c.campaign_k, 0, "k cycles 1-3 by default");
        assert_eq!(c.campaign_seed, 0xC0FFEE);
        let mut c = Config::default();
        c.apply_cli(
            "t",
            args(&[
                "--campaigns",
                "500",
                "--campaign-k",
                "2",
                "--campaign-seed",
                "0xDEAD",
            ]),
        );
        assert_eq!(c.campaigns, 500);
        assert_eq!(c.campaign_k, 2);
        assert_eq!(c.campaign_seed, 0xDEAD);
        let mut c = Config::default();
        c.apply_cli("t", args(&["--campaign-seed", "97"]));
        assert_eq!(c.campaign_seed, 97, "decimal seeds parse too");
    }

    #[test]
    fn options_carry_the_config() {
        let mut c = Config::default();
        c.apply_cli("t", args(&["--serve-threads", "3", "--audit-threads", "1"]));
        let serve = c.serve_options();
        assert_eq!(serve.threads, 3);
        assert_eq!(serve.queue_depth, 0);
        let audit = c.audit_options();
        assert_eq!(audit.threads, 1);
        assert!(audit.grouped && audit.dedup);
    }
}
