//! End-to-end experiment drivers: everything needed to regenerate the
//! paper's tables and figures (§5).
//!
//! * [`driver`] — serve a workload on the online executor (with a
//!   configurable client-thread count or an open-loop Poisson schedule)
//!   and run audits over the resulting bundle.
//! * [`experiments`] — one function per table/figure: Fig. 8 (main
//!   results + latency/throughput), Fig. 9 (audit CPU decomposition),
//!   Fig. 11 (control-flow group characteristics), and the §5.2
//!   sources-of-acceleration ablation.
//! * [`obs`] — telemetry artifact export (`--obs-out`): registry
//!   snapshot as JSON and Prometheus text, event journal as
//!   chrome://tracing JSON.
//!
//! Workload sizes default to a CI-friendly scale; set `OROCHI_FULL=1`
//! for the paper's full request counts.

pub mod config;
pub mod driver;
pub mod experiments;
pub mod mutation;
pub mod obs;
pub mod tamper;

pub use config::{Config, Threads};
pub use driver::{
    audit_threads_from_env, resolve_audit_threads, resolve_serve_threads, run_audit,
    run_audit_cold, run_audit_streaming, run_audit_with, serve, serve_and_audit, serve_drained,
    serve_open_loop, serve_open_loop_with, serve_queue_from_env, serve_threads_from_env,
    spill_bundle, AppWorkload, AuditOptions, AuditRun, OpenLoopOptions, ServeAudit, ServeOptions,
    ServeResult,
};
pub use experiments::scale_from_env;
pub use obs::export_obs;
