//! Deterministic single-site tampers for the soundness batteries.
//!
//! These are the hand-written ancestors of the generative operator
//! library in [`crate::mutation`], kept as thin front-ends over the
//! same site primitives: each helper addresses one *specific* site (a
//! key prefix plus a last-match rule) instead of drawing one from a
//! seed, so `tests/soundness.rs` and the per-app tamper batteries can
//! pin exact sites and exact diagnostics. Each helper returns whether
//! it found a site (callers assert `true`, so a workload that stops
//! producing the targeted structure fails loudly instead of silently
//! testing nothing). The KV helpers target the versioned-KV audit path
//! (§4.5, §A.7): reads are fed from `kv.get(k, s)`, so reordering or
//! dropping log entries changes what re-execution observes — an honest
//! trace then cannot be reproduced and the audit must reject.

use crate::mutation::{
    apply_drop, apply_duplicate, apply_move_read, kv_set_positions, stale_read_pairs,
};
use orochi_core::reports::Reports;
use orochi_state::object::ObjectName;
use orochi_state::oplog::OpLog;
use orochi_trace::{Event, Trace};

/// The APC key-value log, if any.
fn kv_log(reports: &mut Reports) -> Option<&mut OpLog> {
    let i = reports.op_logs.index_of(&ObjectName::kv("apc"))?;
    reports.op_logs.log_mut(i)
}

/// Drops the last `KvSet` whose key starts with `key_prefix` from the
/// KV log (a write the server performed but "forgot" to report).
pub fn drop_kv_write(reports: &mut Reports, key_prefix: &str) -> bool {
    let Some(log) = kv_log(reports) else {
        return false;
    };
    let Some(&pos) = kv_set_positions(log, key_prefix).last() else {
        return false;
    };
    apply_drop(log, pos);
    true
}

/// Makes a KV read stale: finds a key with two writes of different
/// values and a read observing the newer one, then moves the read to
/// just after the older write. Re-execution feeds the read the older
/// version, so the response the server actually delivered can no
/// longer be reproduced. Refuses (returns `false`) when every
/// reorderable pair holds equal values — moving such a read changes
/// nothing observable.
pub fn reorder_kv_read(reports: &mut Reports, key_prefix: &str) -> bool {
    let Some(log) = kv_log(reports) else {
        return false;
    };
    let Some(&(read, write)) = stale_read_pairs(log, key_prefix).first() else {
        return false;
    };
    apply_move_read(log, read, write);
    true
}

/// Replays a KV write: duplicates the last `KvSet` whose key starts
/// with `key_prefix`, as if the server's recorder reported the same
/// operation twice.
pub fn replay_kv_write(reports: &mut Reports, key_prefix: &str) -> bool {
    let Some(log) = kv_log(reports) else {
        return false;
    };
    let Some(&pos) = kv_set_positions(log, key_prefix).last() else {
        return false;
    };
    apply_duplicate(log, pos);
    true
}

/// Forges a checkout total in the trace: finds the first response body
/// containing `total=<n>` and adds 1 to the number (the storefront
/// charging more than the order the program computed).
pub fn forge_cart_total(trace: &mut Trace) -> bool {
    for event in trace.events.iter_mut() {
        let Event::Response(_, resp) = event else {
            continue;
        };
        let Some(at) = resp.body.find("total=") else {
            continue;
        };
        let digits_start = at + "total=".len();
        let digits_len = resp.body[digits_start..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .count();
        if digits_len == 0 {
            continue;
        }
        let total: u64 = resp.body[digits_start..digits_start + digits_len]
            .parse()
            .expect("ascii digits");
        resp.body.replace_range(
            digits_start..digits_start + digits_len,
            &(total + 1).to_string(),
        );
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_common::ids::{OpNum, RequestId, SeqNum};
    use orochi_state::object::OpContents;
    use orochi_state::oplog::{OpLogEntry, OpLogs};
    use orochi_trace::{HttpRequest, HttpResponse};

    fn kv_entry(rid: u64, opnum: u32, contents: OpContents) -> OpLogEntry {
        OpLogEntry {
            rid: RequestId(rid),
            opnum: OpNum(opnum),
            contents,
        }
    }

    fn reports_with_kv(entries: Vec<OpLogEntry>) -> Reports {
        let mut op_logs = OpLogs::new();
        op_logs.push(ObjectName("kv:apc".into()), OpLog::from_entries(entries));
        Reports {
            op_logs,
            ..Default::default()
        }
    }

    fn set(key: &str, v: u8) -> OpContents {
        OpContents::KvSet {
            key: key.into(),
            value: Some(vec![v]),
        }
    }

    #[test]
    fn reorder_moves_read_behind_older_differing_write() {
        let mut reports = reports_with_kv(vec![
            kv_entry(1, 1, set("inv:1", 10)),
            kv_entry(2, 1, set("inv:1", 9)),
            kv_entry(
                3,
                1,
                OpContents::KvGet {
                    key: "inv:1".into(),
                },
            ),
        ]);
        assert!(reorder_kv_read(&mut reports, "inv:"));
        let log = reports.op_logs.log(0).unwrap();
        // The read now sits right after the older write.
        assert!(matches!(
            log.get(SeqNum(2)).unwrap().contents,
            OpContents::KvGet { .. }
        ));
    }

    #[test]
    fn reorder_refuses_when_values_agree() {
        // Two writes with the same value: moving the read changes
        // nothing observable, so the helper must not claim success.
        let mut reports = reports_with_kv(vec![
            kv_entry(1, 1, set("inv:1", 7)),
            kv_entry(2, 1, set("inv:1", 7)),
            kv_entry(
                3,
                1,
                OpContents::KvGet {
                    key: "inv:1".into(),
                },
            ),
        ]);
        assert!(!reorder_kv_read(&mut reports, "inv:"));
    }

    #[test]
    fn drop_and_replay_target_kv_sets() {
        let mut reports = reports_with_kv(vec![
            kv_entry(1, 1, set("frag:1", 1)),
            kv_entry(2, 1, set("inv:1", 2)),
        ]);
        assert!(drop_kv_write(&mut reports, "inv:"));
        assert_eq!(reports.op_logs.log(0).unwrap().len(), 1);
        assert!(replay_kv_write(&mut reports, "frag:"));
        assert_eq!(reports.op_logs.log(0).unwrap().len(), 2);
        assert!(!drop_kv_write(&mut reports, "nope:"));
        assert!(!replay_kv_write(&mut reports, "nope:"));
    }

    #[test]
    fn replay_addresses_its_site_by_prefix() {
        // Two writes with distinct prefixes: the selector must pick the
        // requested one, not the last write overall.
        let mut reports = reports_with_kv(vec![
            kv_entry(1, 1, set("inv:1", 1)),
            kv_entry(2, 1, set("frag:9", 2)),
        ]);
        assert!(replay_kv_write(&mut reports, "inv:"));
        let log = reports.op_logs.log(0).unwrap();
        assert_eq!(log.len(), 3);
        // The duplicate landed right after the inv: write.
        assert!(matches!(&log.get(SeqNum(2)).unwrap().contents,
                OpContents::KvSet { key, .. } if key == "inv:1"));
    }

    #[test]
    fn forge_total_bumps_digits() {
        let rid = RequestId(1);
        let mut trace = Trace {
            events: vec![
                Event::Request(rid, HttpRequest::get("/checkout.php", &[])),
                Event::Response(
                    rid,
                    HttpResponse::ok(rid, "<p>order 3 placed by ada total=32</p>"),
                ),
            ],
        };
        assert!(forge_cart_total(&mut trace));
        let Event::Response(_, resp) = &trace.events[1] else {
            panic!("expected a response event");
        };
        assert!(resp.body.contains("total=33"));
        let mut empty = Trace::new();
        assert!(!forge_cart_total(&mut empty));
    }
}
