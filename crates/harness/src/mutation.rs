//! The generative tamper-mutation engine behind the adversarial
//! campaign (DESIGN.md, "The adversarial campaign").
//!
//! A [`MutationOp`] is one seed-deterministic way a cheating executor
//! could doctor what it hands the verifier: a trace event forged, a
//! sub-log entry dropped/duplicated/reordered/retargeted, an op count
//! inflated, a nondeterminism record tampered with. Each operator
//! enumerates its candidate sites in a deterministic order, picks one
//! with the caller's [`SplitMix64`], applies the edit, and returns a
//! structured [`MutationSite`] naming exactly what it touched — so any
//! surviving mutant is a reproducible one-liner (operator, site, seed).
//!
//! Every operator is *individually sufficient*: the edit it makes is
//! guaranteed to be rejected by the audit (the table in DESIGN.md maps
//! each operator to the check that catches it). A [`MutationPlan`]
//! composes k operators while keeping their touched objects disjoint,
//! so stacked mutations cannot cancel each other back to an accepting
//! run (e.g. a replayed write followed by a drop of the same entry).
//!
//! The deterministic single-site wrappers in [`crate::tamper`] are
//! front-ends over the same site primitives (`*_positions` +
//! `apply_*`): the soundness battery pins exact sites, the campaign
//! draws them from a seed.

use orochi_common::ids::RequestId;
use orochi_common::rng::SplitMix64;
use orochi_core::nondet::{NondetLog, NondetValue};
use orochi_core::reports::Reports;
use orochi_state::object::{ObjectName, OpContents};
use orochi_state::oplog::{OpLog, OpLogEntry};
use orochi_trace::{Event, Trace};
use std::collections::HashSet;
use std::fmt;

/// What a mutation operator touched: the operator's name, the object it
/// edited (a log name, `"trace"`, `"op_counts"`, or `"nondet"`), the
/// 0-based index of the edited entry/event within that object, and a
/// human-readable detail. The `Debug` rendering is the replay contract:
/// for a pinned (seed, k) pair it must be byte-stable across runs and
/// builds (`tests/campaign.rs` pins one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationSite {
    /// Operator name, e.g. `"drop_kv_write"`.
    pub operator: &'static str,
    /// The object the edit landed on.
    pub object: String,
    /// 0-based index of the edited entry within the object.
    pub index: usize,
    /// What changed, in words.
    pub detail: String,
}

impl fmt::Display for MutationSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {}[{}]: {}",
            self.operator, self.object, self.index, self.detail
        )
    }
}

/// The operator library. Operators are grouped by the report surface
/// they attack; every one is caught by a specific audit check (see the
/// operator table in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOp {
    /// Remove a `KvSet` from the KV log (a write the server "forgot").
    DropKvWrite,
    /// Duplicate a `KvSet` in place (the recorder reported it twice).
    ReplayKvWrite,
    /// Move a `KvGet` behind an older write of a different value.
    ReorderKvRead,
    /// Rename a `KvSet`'s key (the write lands on the wrong cell).
    RetargetKvWrite,
    /// Flip one bit of a `KvSet` payload.
    BitflipKvValue,
    /// Remove a `RegisterWrite` from a session-register log.
    DropRegisterWrite,
    /// Duplicate a `RegisterWrite` in place.
    ReplayRegisterWrite,
    /// Flip one bit of a `RegisterWrite` payload.
    BitflipRegisterWrite,
    /// Reverse a sub-log extent spanning two same-request entries.
    SpliceSublog,
    /// Drop a suffix of one op log.
    TruncateOpLog,
    /// Off-by-one a single entry's opnum.
    ShiftOpnum,
    /// Move an entry from one object's log into another's.
    MoveOpAcrossLogs,
    /// Inflate one request's claimed op count `M` by one.
    ForgeOpCount,
    /// Append a space to one logged SQL statement.
    RewriteDbQuery,
    /// Flip a transaction's logged commit/abort flag.
    FlipDbCommit,
    /// Bump a logged write result (affected rows / insert id).
    ForgeDbWriteResult,
    /// Change a delivered response's status code.
    ForgeResponseStatus,
    /// Append a byte to a delivered response body.
    ForgeResponseBody,
    /// Inject a header the program never set.
    InjectResponseHeader,
    /// Swap the requestID labels of two responses.
    SwapRidLabels,
    /// Delete a response event from the trace.
    DropResponse,
    /// Drop the last recorded nondet value of one request.
    TruncateNondet,
    /// Append an extra nondet value to one request.
    AppendNondet,
    /// Make a request's recorded time sequence regress.
    RegressNondetTime,
}

impl MutationOp {
    /// Every operator, in a fixed order (the plan's draw space).
    pub const ALL: [MutationOp; 24] = [
        MutationOp::DropKvWrite,
        MutationOp::ReplayKvWrite,
        MutationOp::ReorderKvRead,
        MutationOp::RetargetKvWrite,
        MutationOp::BitflipKvValue,
        MutationOp::DropRegisterWrite,
        MutationOp::ReplayRegisterWrite,
        MutationOp::BitflipRegisterWrite,
        MutationOp::SpliceSublog,
        MutationOp::TruncateOpLog,
        MutationOp::ShiftOpnum,
        MutationOp::MoveOpAcrossLogs,
        MutationOp::ForgeOpCount,
        MutationOp::RewriteDbQuery,
        MutationOp::FlipDbCommit,
        MutationOp::ForgeDbWriteResult,
        MutationOp::ForgeResponseStatus,
        MutationOp::ForgeResponseBody,
        MutationOp::InjectResponseHeader,
        MutationOp::SwapRidLabels,
        MutationOp::DropResponse,
        MutationOp::TruncateNondet,
        MutationOp::AppendNondet,
        MutationOp::RegressNondetTime,
    ];

    /// The operator's stable name (used in sites, BENCH rows, and
    /// escape reports).
    pub fn name(&self) -> &'static str {
        match self {
            MutationOp::DropKvWrite => "drop_kv_write",
            MutationOp::ReplayKvWrite => "replay_kv_write",
            MutationOp::ReorderKvRead => "reorder_kv_read",
            MutationOp::RetargetKvWrite => "retarget_kv_write",
            MutationOp::BitflipKvValue => "bitflip_kv_value",
            MutationOp::DropRegisterWrite => "drop_register_write",
            MutationOp::ReplayRegisterWrite => "replay_register_write",
            MutationOp::BitflipRegisterWrite => "bitflip_register_write",
            MutationOp::SpliceSublog => "splice_sublog",
            MutationOp::TruncateOpLog => "truncate_op_log",
            MutationOp::ShiftOpnum => "shift_opnum",
            MutationOp::MoveOpAcrossLogs => "move_op_across_logs",
            MutationOp::ForgeOpCount => "forge_op_count",
            MutationOp::RewriteDbQuery => "rewrite_db_query",
            MutationOp::FlipDbCommit => "flip_db_commit",
            MutationOp::ForgeDbWriteResult => "forge_db_write_result",
            MutationOp::ForgeResponseStatus => "forge_response_status",
            MutationOp::ForgeResponseBody => "forge_response_body",
            MutationOp::InjectResponseHeader => "inject_response_header",
            MutationOp::SwapRidLabels => "swap_rid_labels",
            MutationOp::DropResponse => "drop_response",
            MutationOp::TruncateNondet => "truncate_nondet",
            MutationOp::AppendNondet => "append_nondet",
            MutationOp::RegressNondetTime => "regress_nondet_time",
        }
    }

    /// Applies the operator to one rng-chosen site not already claimed
    /// by `touched`. Returns `None` when no eligible site exists (the
    /// plan then draws another operator); on success the touched
    /// object(s) are recorded so later operators in the same plan
    /// cannot edit — and possibly cancel — the same object.
    pub fn apply(
        &self,
        trace: &mut Trace,
        reports: &mut Reports,
        rng: &mut SplitMix64,
        touched: &mut HashSet<String>,
    ) -> Option<MutationSite> {
        match self {
            MutationOp::DropKvWrite => kv_op(reports, rng, touched, self.name(), |log, pos| {
                let key = entry_key(&log.entries()[pos]);
                apply_drop(log, pos);
                format!("dropped KvSet {key}")
            }),
            MutationOp::ReplayKvWrite => kv_op(reports, rng, touched, self.name(), |log, pos| {
                let key = entry_key(&log.entries()[pos]);
                apply_duplicate(log, pos);
                format!("replayed KvSet {key}")
            }),
            MutationOp::ReorderKvRead => {
                let name = ObjectName::kv("apc").0;
                if touched.contains(&name) {
                    return None;
                }
                let i = reports.op_logs.index_of(&ObjectName::kv("apc"))?;
                let log = reports.op_logs.log_mut(i).expect("index from lookup");
                let pairs = stale_read_pairs(log, "");
                let &(read, write) = pick(rng, &pairs)?;
                let key = entry_key(&log.entries()[read]);
                apply_move_read(log, read, write);
                touched.insert(name.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object: name,
                    index: read,
                    detail: format!("moved KvGet {key} behind the write at {write}"),
                })
            }
            MutationOp::RetargetKvWrite => kv_op(reports, rng, touched, self.name(), |log, pos| {
                let mut entries = log.entries().to_vec();
                let detail;
                if let OpContents::KvSet { key, .. } = &mut entries[pos].contents {
                    detail = format!("retargeted KvSet {key} -> {key}~");
                    key.push('~');
                } else {
                    unreachable!("candidate positions are KvSet");
                }
                *log = OpLog::from_entries(entries);
                detail
            }),
            MutationOp::BitflipKvValue => {
                let name = ObjectName::kv("apc").0;
                if touched.contains(&name) {
                    return None;
                }
                let i = reports.op_logs.index_of(&ObjectName::kv("apc"))?;
                let log = reports.op_logs.log_mut(i).expect("index from lookup");
                let candidates: Vec<usize> = log
                    .entries()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| {
                        matches!(&e.contents,
                            OpContents::KvSet { value: Some(v), .. } if !v.is_empty())
                    })
                    .map(|(p, _)| p)
                    .collect();
                let &pos = pick(rng, &candidates)?;
                let mut entries = log.entries().to_vec();
                let key = entry_key(&entries[pos]);
                if let OpContents::KvSet { value: Some(v), .. } = &mut entries[pos].contents {
                    v[0] ^= 1;
                }
                *log = OpLog::from_entries(entries);
                touched.insert(name.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object: name,
                    index: pos,
                    detail: format!("flipped bit 0 of KvSet {key}"),
                })
            }
            MutationOp::DropRegisterWrite => {
                register_op(reports, rng, touched, self.name(), |log, pos| {
                    apply_drop(log, pos);
                    "dropped RegisterWrite".to_string()
                })
            }
            MutationOp::ReplayRegisterWrite => {
                register_op(reports, rng, touched, self.name(), |log, pos| {
                    apply_duplicate(log, pos);
                    "replayed RegisterWrite".to_string()
                })
            }
            MutationOp::BitflipRegisterWrite => {
                // Same shape as the generic register op but restricted
                // to non-empty payloads.
                let candidates: Vec<(usize, usize)> = reports
                    .op_logs
                    .iter()
                    .filter(|(_, name, _)| name.0.starts_with("reg:") && !touched.contains(&name.0))
                    .flat_map(|(i, _, log)| {
                        log.entries()
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| {
                                matches!(&e.contents,
                                    OpContents::RegisterWrite { value } if !value.is_empty())
                            })
                            .map(move |(p, _)| (i, p))
                    })
                    .collect();
                let &(i, pos) = pick(rng, &candidates)?;
                let name = reports.op_logs.name(i).expect("index from scan").0.clone();
                let log = reports.op_logs.log_mut(i).expect("index from scan");
                let mut entries = log.entries().to_vec();
                if let OpContents::RegisterWrite { value } = &mut entries[pos].contents {
                    value[0] ^= 1;
                }
                *log = OpLog::from_entries(entries);
                touched.insert(name.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object: name,
                    index: pos,
                    detail: "flipped bit 0 of RegisterWrite".to_string(),
                })
            }
            MutationOp::SpliceSublog => {
                // Reverse the extent between a request's first two
                // entries in one log: those entries then carry
                // descending opnums, which the consistent-ordering
                // check refuses regardless of what sits between them.
                let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
                for (i, name, log) in reports.op_logs.iter() {
                    if touched.contains(&name.0) {
                        continue;
                    }
                    let entries = log.entries();
                    let mut seen: Vec<(RequestId, usize)> = Vec::new();
                    for (q, e) in entries.iter().enumerate() {
                        if let Some(&(_, p)) = seen.iter().find(|(rid, _)| *rid == e.rid) {
                            if entries[p].opnum != e.opnum {
                                candidates.push((i, p, q));
                            }
                        } else {
                            seen.push((e.rid, q));
                        }
                    }
                }
                let &(i, p, q) = pick(rng, &candidates)?;
                let name = reports.op_logs.name(i).expect("index from scan").0.clone();
                let log = reports.op_logs.log_mut(i).expect("index from scan");
                let rid = log.entries()[p].rid;
                let mut entries = log.entries().to_vec();
                entries[p..=q].reverse();
                *log = OpLog::from_entries(entries);
                touched.insert(name.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object: name,
                    index: p,
                    detail: format!("reversed extent [{p}..={q}] spanning {rid:?}"),
                })
            }
            MutationOp::TruncateOpLog => {
                let candidates = nonempty_logs(reports, touched);
                let &i = pick(rng, &candidates)?;
                let name = reports.op_logs.name(i).expect("index from scan").0.clone();
                let log = reports.op_logs.log_mut(i).expect("index from scan");
                let len = log.len();
                // Keep at least the first entry empty-proof: cut
                // anywhere in 0..len, dropping len-cut entries.
                let cut = rng.next_below(len as u64) as usize;
                let mut entries = log.entries().to_vec();
                entries.truncate(cut);
                *log = OpLog::from_entries(entries);
                touched.insert(name.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object: name,
                    index: cut,
                    detail: format!("truncated {len} entries to {cut}"),
                })
            }
            MutationOp::ShiftOpnum => {
                let candidates = nonempty_logs(reports, touched);
                let &i = pick(rng, &candidates)?;
                let name = reports.op_logs.name(i).expect("index from scan").0.clone();
                let log = reports.op_logs.log_mut(i).expect("index from scan");
                let pos = rng.next_below(log.len() as u64) as usize;
                let mut entries = log.entries().to_vec();
                let rid = entries[pos].rid;
                let old = entries[pos].opnum.0;
                entries[pos].opnum.0 = old + 1;
                *log = OpLog::from_entries(entries);
                touched.insert(name.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object: name,
                    index: pos,
                    detail: format!("shifted {rid:?} opnum {old} -> {}", old + 1),
                })
            }
            MutationOp::MoveOpAcrossLogs => {
                let candidates = nonempty_logs(reports, touched);
                if candidates.len() < 2 {
                    return None;
                }
                let from_pick = rng.next_below(candidates.len() as u64) as usize;
                let from = candidates[from_pick];
                let to = candidates[(from_pick + 1) % candidates.len()];
                let from_name = reports.op_logs.name(from).expect("scan").0.clone();
                let to_name = reports.op_logs.name(to).expect("scan").0.clone();
                let from_log = reports.op_logs.log_mut(from).expect("scan");
                let pos = rng.next_below(from_log.len() as u64) as usize;
                let moved = apply_drop(from_log, pos);
                let rid = moved.rid;
                let opnum = moved.opnum.0;
                let to_log = reports.op_logs.log_mut(to).expect("scan");
                to_log.push(moved);
                touched.insert(from_name.clone());
                touched.insert(to_name.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object: from_name.clone(),
                    index: pos,
                    detail: format!("moved {rid:?} op {opnum} from {from_name} to {to_name}"),
                })
            }
            MutationOp::ForgeOpCount => {
                let object = "op_counts".to_string();
                if touched.contains(&object) {
                    return None;
                }
                let mut rids: Vec<RequestId> = reports.op_counts.keys().copied().collect();
                rids.sort();
                let &rid = pick(rng, &rids)?;
                let count = reports.op_counts.get_mut(&rid).expect("key from scan");
                let old = *count;
                *count = old + 1;
                touched.insert(object.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object,
                    index: rid.0 as usize,
                    detail: format!("forged M({rid:?}) {old} -> {}", old + 1),
                })
            }
            MutationOp::RewriteDbQuery => db_op(
                reports,
                rng,
                touched,
                self.name(),
                |e| matches!(&e.contents, OpContents::DbOp { queries, .. } if !queries.is_empty()),
                |entries, pos, rng| {
                    let OpContents::DbOp { queries, .. } = &mut entries[pos].contents else {
                        unreachable!("candidates are DbOps");
                    };
                    let q = rng.next_below(queries.len() as u64) as usize;
                    queries[q].push(' ');
                    format!("appended a space to query {q}")
                },
            ),
            MutationOp::FlipDbCommit => db_op(
                reports,
                rng,
                touched,
                self.name(),
                |e| matches!(&e.contents, OpContents::DbOp { .. }),
                |entries, pos, _| {
                    let OpContents::DbOp { succeeded, .. } = &mut entries[pos].contents else {
                        unreachable!("candidates are DbOps");
                    };
                    *succeeded = !*succeeded;
                    format!("flipped commit flag to {}", *succeeded)
                },
            ),
            MutationOp::ForgeDbWriteResult => db_op(
                reports,
                rng,
                touched,
                self.name(),
                |e| {
                    matches!(&e.contents,
                        OpContents::DbOp { succeeded: true, write_results, .. }
                            if write_results.iter().any(|r| r.is_some()))
                },
                |entries, pos, _| {
                    let OpContents::DbOp { write_results, .. } = &mut entries[pos].contents else {
                        unreachable!("candidates are DbOps");
                    };
                    let q = write_results
                        .iter()
                        .position(|r| r.is_some())
                        .expect("candidate has a write result");
                    let r = write_results[q].as_mut().expect("position of Some");
                    r.affected += 1;
                    format!("bumped affected rows of write {q}")
                },
            ),
            MutationOp::ForgeResponseStatus => {
                trace_op(trace, rng, touched, self.name(), |events, pos| {
                    let Event::Response(_, resp) = &mut events[pos] else {
                        unreachable!("candidates are responses");
                    };
                    resp.status += 1;
                    format!("status {} -> {}", resp.status - 1, resp.status)
                })
            }
            MutationOp::ForgeResponseBody => {
                trace_op(trace, rng, touched, self.name(), |events, pos| {
                    let Event::Response(_, resp) = &mut events[pos] else {
                        unreachable!("candidates are responses");
                    };
                    resp.body.push('!');
                    "appended '!' to the body".to_string()
                })
            }
            MutationOp::InjectResponseHeader => {
                trace_op(trace, rng, touched, self.name(), |events, pos| {
                    let Event::Response(_, resp) = &mut events[pos] else {
                        unreachable!("candidates are responses");
                    };
                    resp.headers
                        .push(("x-mutated".to_string(), "1".to_string()));
                    "injected header x-mutated: 1".to_string()
                })
            }
            MutationOp::SwapRidLabels => {
                let object = "trace".to_string();
                if touched.contains(&object) {
                    return None;
                }
                let responses = response_positions(trace);
                if responses.len() < 2 {
                    return None;
                }
                let a_pick = rng.next_below(responses.len() as u64) as usize;
                let a = responses[a_pick];
                let b = responses[(a_pick + 1) % responses.len()];
                let label_b = match &trace.events[b] {
                    Event::Response(_, resp) => resp.rid_label,
                    _ => unreachable!("candidates are responses"),
                };
                let label_a = match &mut trace.events[a] {
                    Event::Response(_, resp) => {
                        let l = resp.rid_label;
                        resp.rid_label = label_b;
                        l
                    }
                    _ => unreachable!("candidates are responses"),
                };
                if let Event::Response(_, resp) = &mut trace.events[b] {
                    resp.rid_label = label_a;
                }
                touched.insert(object.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object,
                    index: a,
                    detail: format!("swapped labels {label_a:?} <-> {label_b:?}"),
                })
            }
            MutationOp::DropResponse => {
                let object = "trace".to_string();
                if touched.contains(&object) {
                    return None;
                }
                let responses = response_positions(trace);
                let &pos = pick(rng, &responses)?;
                let rid = trace.events[pos].rid();
                trace.events.remove(pos);
                touched.insert(object.clone());
                Some(MutationSite {
                    operator: self.name(),
                    object,
                    index: pos,
                    detail: format!("dropped the response to {rid:?}"),
                })
            }
            MutationOp::TruncateNondet => nondet_op(
                trace,
                reports,
                rng,
                touched,
                self.name(),
                |values| !values.is_empty(),
                |values| {
                    let last = values.pop().expect("candidate is non-empty");
                    format!("dropped the last value ({})", last.kind())
                },
            ),
            MutationOp::AppendNondet => nondet_op(
                trace,
                reports,
                rng,
                touched,
                self.name(),
                |values| !values.is_empty(),
                |values| {
                    values.push(NondetValue::Rand(0x5EED));
                    "appended an extra rand value".to_string()
                },
            ),
            MutationOp::RegressNondetTime => nondet_op(
                trace,
                reports,
                rng,
                touched,
                self.name(),
                |values| {
                    values
                        .iter()
                        .filter(|v| matches!(v, NondetValue::Time(_)))
                        .count()
                        >= 2
                },
                |values| {
                    let first = values
                        .iter()
                        .find_map(|v| match v {
                            NondetValue::Time(t) => Some(*t),
                            _ => None,
                        })
                        .expect("candidate has times");
                    let last = values
                        .iter_mut()
                        .rev()
                        .find_map(|v| match v {
                            NondetValue::Time(t) => Some(t),
                            _ => None,
                        })
                        .expect("candidate has times");
                    *last = first - 1;
                    format!("regressed the last time to {}", first - 1)
                },
            ),
        }
    }
}

/// A seeded plan: draw operators from [`MutationOp::ALL`] until `k`
/// have landed on distinct objects (or the attempt budget runs out —
/// tiny fixtures may not offer k disjoint sites). The returned sites
/// are the full record of what changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationPlan {
    /// Seed for operator and site selection.
    pub seed: u64,
    /// Number of distinct-object mutations to apply.
    pub k: usize,
}

impl MutationPlan {
    /// Applies the plan, returning the sites actually mutated (at most
    /// `k`; fewer only when the bundle lacks enough disjoint sites).
    pub fn apply(&self, trace: &mut Trace, reports: &mut Reports) -> Vec<MutationSite> {
        let mut rng = SplitMix64::new(self.seed);
        let mut touched = HashSet::new();
        let mut sites = Vec::new();
        let mut attempts = 0usize;
        while sites.len() < self.k && attempts < 64 {
            attempts += 1;
            let op = MutationOp::ALL[rng.next_below(MutationOp::ALL.len() as u64) as usize];
            if let Some(site) = op.apply(trace, reports, &mut rng, &mut touched) {
                sites.push(site);
            }
        }
        sites
    }
}

// ---- site primitives (shared with `crate::tamper`) ------------------

/// Positions of `KvSet` entries whose key starts with `key_prefix`.
pub fn kv_set_positions(log: &OpLog, key_prefix: &str) -> Vec<usize> {
    log.entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            matches!(&e.contents, OpContents::KvSet { key, .. } if key.starts_with(key_prefix))
        })
        .map(|(p, _)| p)
        .collect()
}

/// `(read, older_write)` pairs where moving the read to just after the
/// older write changes the value it observes: the write visible to the
/// read and the older write hold different values, so the reorder is
/// guaranteed to diverge re-execution (the refusal-when-values-agree
/// contract of the original hand-written tamper).
pub fn stale_read_pairs(log: &OpLog, key_prefix: &str) -> Vec<(usize, usize)> {
    let entries = log.entries();
    let mut pairs = Vec::new();
    for (g, e) in entries.iter().enumerate() {
        let OpContents::KvGet { key } = &e.contents else {
            continue;
        };
        if !key.starts_with(key_prefix) {
            continue;
        }
        let mut visible: Option<&Option<Vec<u8>>> = None;
        for (w, we) in entries.iter().enumerate().take(g).rev() {
            let OpContents::KvSet { key: wk, value } = &we.contents else {
                continue;
            };
            if wk != key {
                continue;
            }
            match visible {
                None => visible = Some(value),
                Some(v) => {
                    if v != value {
                        pairs.push((g, w));
                        break;
                    }
                }
            }
        }
    }
    pairs
}

/// Removes and returns the entry at `pos`.
pub fn apply_drop(log: &mut OpLog, pos: usize) -> OpLogEntry {
    let mut entries = log.entries().to_vec();
    let removed = entries.remove(pos);
    *log = OpLog::from_entries(entries);
    removed
}

/// Duplicates the entry at `pos` in place (the copy lands at `pos+1`).
pub fn apply_duplicate(log: &mut OpLog, pos: usize) {
    let mut entries = log.entries().to_vec();
    let dup = entries[pos].clone();
    entries.insert(pos + 1, dup);
    *log = OpLog::from_entries(entries);
}

/// Moves the read at `read` to just after the write at `write < read`.
pub fn apply_move_read(log: &mut OpLog, read: usize, write: usize) {
    let mut entries = log.entries().to_vec();
    let moved = entries.remove(read);
    entries.insert(write + 1, moved);
    *log = OpLog::from_entries(entries);
}

// ---- internal helpers ----------------------------------------------

fn pick<'a, T>(rng: &mut SplitMix64, candidates: &'a [T]) -> Option<&'a T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[rng.next_below(candidates.len() as u64) as usize])
    }
}

fn entry_key(entry: &OpLogEntry) -> String {
    match &entry.contents {
        OpContents::KvSet { key, .. } | OpContents::KvGet { key } => key.clone(),
        _ => String::new(),
    }
}

/// Indexes of non-empty logs not yet claimed by the plan.
fn nonempty_logs(reports: &Reports, touched: &HashSet<String>) -> Vec<usize> {
    reports
        .op_logs
        .iter()
        .filter(|(_, name, log)| !log.is_empty() && !touched.contains(&name.0))
        .map(|(i, _, _)| i)
        .collect()
}

/// An edit to one rng-chosen `KvSet` of the APC log.
fn kv_op(
    reports: &mut Reports,
    rng: &mut SplitMix64,
    touched: &mut HashSet<String>,
    operator: &'static str,
    edit: impl FnOnce(&mut OpLog, usize) -> String,
) -> Option<MutationSite> {
    let name = ObjectName::kv("apc");
    if touched.contains(&name.0) {
        return None;
    }
    let i = reports.op_logs.index_of(&name)?;
    let log = reports.op_logs.log_mut(i).expect("index from lookup");
    let positions = kv_set_positions(log, "");
    let &pos = pick(rng, &positions)?;
    let detail = edit(log, pos);
    touched.insert(name.0.clone());
    Some(MutationSite {
        operator,
        object: name.0,
        index: pos,
        detail,
    })
}

/// An edit to one rng-chosen `RegisterWrite` across all register logs.
fn register_op(
    reports: &mut Reports,
    rng: &mut SplitMix64,
    touched: &mut HashSet<String>,
    operator: &'static str,
    edit: impl FnOnce(&mut OpLog, usize) -> String,
) -> Option<MutationSite> {
    let candidates: Vec<(usize, usize)> = reports
        .op_logs
        .iter()
        .filter(|(_, name, _)| name.0.starts_with("reg:") && !touched.contains(&name.0))
        .flat_map(|(i, _, log)| {
            log.entries()
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(&e.contents, OpContents::RegisterWrite { .. }))
                .map(move |(p, _)| (i, p))
        })
        .collect();
    let &(i, pos) = pick(rng, &candidates)?;
    let name = reports.op_logs.name(i).expect("index from scan").0.clone();
    let log = reports.op_logs.log_mut(i).expect("index from scan");
    let detail = edit(log, pos);
    touched.insert(name.clone());
    Some(MutationSite {
        operator,
        object: name,
        index: pos,
        detail,
    })
}

/// An edit to one rng-chosen entry of the main DB log.
fn db_op(
    reports: &mut Reports,
    rng: &mut SplitMix64,
    touched: &mut HashSet<String>,
    operator: &'static str,
    eligible: impl Fn(&OpLogEntry) -> bool,
    edit: impl FnOnce(&mut Vec<OpLogEntry>, usize, &mut SplitMix64) -> String,
) -> Option<MutationSite> {
    let name = ObjectName::db("main");
    if touched.contains(&name.0) {
        return None;
    }
    let i = reports.op_logs.index_of(&name)?;
    let log = reports.op_logs.log_mut(i).expect("index from lookup");
    let candidates: Vec<usize> = log
        .entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| eligible(e))
        .map(|(p, _)| p)
        .collect();
    let &pos = pick(rng, &candidates)?;
    let mut entries = log.entries().to_vec();
    let detail = edit(&mut entries, pos, rng);
    *log = OpLog::from_entries(entries);
    touched.insert(name.0.clone());
    Some(MutationSite {
        operator,
        object: name.0,
        index: pos,
        detail,
    })
}

/// Positions of `Response` events in the trace.
fn response_positions(trace: &Trace) -> Vec<usize> {
    trace
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::Response(..)))
        .map(|(p, _)| p)
        .collect()
}

/// An edit to one rng-chosen response event.
fn trace_op(
    trace: &mut Trace,
    rng: &mut SplitMix64,
    touched: &mut HashSet<String>,
    operator: &'static str,
    edit: impl FnOnce(&mut Vec<Event>, usize) -> String,
) -> Option<MutationSite> {
    let object = "trace".to_string();
    if touched.contains(&object) {
        return None;
    }
    let positions = response_positions(trace);
    let &pos = pick(rng, &positions)?;
    let detail = edit(&mut trace.events, pos);
    touched.insert(object.clone());
    Some(MutationSite {
        operator,
        object,
        index: pos,
        detail,
    })
}

/// An edit to one rng-chosen request's nondeterminism record. The log
/// is rebuilt from the trace's request order (stable under every other
/// operator: none of them remove `Request` events), so candidate
/// enumeration never depends on `HashMap` iteration order.
fn nondet_op(
    trace: &Trace,
    reports: &mut Reports,
    rng: &mut SplitMix64,
    touched: &mut HashSet<String>,
    operator: &'static str,
    eligible: impl Fn(&[NondetValue]) -> bool,
    edit: impl FnOnce(&mut Vec<NondetValue>) -> String,
) -> Option<MutationSite> {
    let object = "nondet".to_string();
    if touched.contains(&object) {
        return None;
    }
    let rids: Vec<RequestId> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Request(rid, _) => Some(*rid),
            Event::Response(..) => None,
        })
        .collect();
    let candidates: Vec<(usize, RequestId)> = rids
        .iter()
        .enumerate()
        .filter(|(_, rid)| eligible(reports.nondet.for_request(**rid)))
        .map(|(i, rid)| (i, *rid))
        .collect();
    let &(index, target) = pick(rng, &candidates)?;
    let mut rebuilt = NondetLog::new();
    let mut detail = String::new();
    let mut edit = Some(edit);
    for rid in &rids {
        let mut values = reports.nondet.for_request(*rid).to_vec();
        if *rid == target {
            let apply = edit.take().expect("request ids are unique in a trace");
            detail = format!("{:?}: {}", target, apply(&mut values));
        }
        for v in values {
            rebuilt.push(*rid, v);
        }
    }
    reports.nondet = rebuilt;
    touched.insert(object.clone());
    Some(MutationSite {
        operator,
        object,
        index,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_common::ids::{CtlFlowTag, OpNum};
    use orochi_state::oplog::OpLogs;
    use orochi_trace::{HttpRequest, HttpResponse};

    fn entry(rid: u64, opnum: u32, contents: OpContents) -> OpLogEntry {
        OpLogEntry {
            rid: RequestId(rid),
            opnum: OpNum(opnum),
            contents,
        }
    }

    fn set(key: &str, v: u8) -> OpContents {
        OpContents::KvSet {
            key: key.into(),
            value: Some(vec![v]),
        }
    }

    /// A small synthetic bundle exercising every operator's surface:
    /// a KV log with a stale-read candidate, a register log, a DB log
    /// with a committed write, three requests with responses, and a
    /// nondet record with two times.
    fn fixture() -> (Trace, Reports) {
        let r1 = RequestId(1);
        let r2 = RequestId(2);
        let r3 = RequestId(3);
        let trace = Trace {
            events: vec![
                Event::Request(r1, HttpRequest::get("/a.php", &[])),
                Event::Response(r1, HttpResponse::ok(r1, "one")),
                Event::Request(r2, HttpRequest::get("/b.php", &[])),
                Event::Response(r2, HttpResponse::ok(r2, "two")),
                Event::Request(r3, HttpRequest::get("/c.php", &[])),
                Event::Response(r3, HttpResponse::ok(r3, "three")),
            ],
        };
        let mut kv = OpLog::new();
        kv.push(entry(1, 1, set("inv:1", 10)));
        kv.push(entry(1, 2, set("inv:1", 9)));
        kv.push(entry(
            2,
            1,
            OpContents::KvGet {
                key: "inv:1".into(),
            },
        ));
        let mut reg = OpLog::new();
        reg.push(entry(2, 2, OpContents::RegisterRead));
        reg.push(entry(2, 3, OpContents::RegisterWrite { value: vec![7, 8] }));
        let mut db = OpLog::new();
        db.push(entry(
            3,
            1,
            OpContents::DbOp {
                queries: vec!["INSERT INTO t (v) VALUES (1)".into()],
                succeeded: true,
                write_results: vec![Some(orochi_state::object::DbWriteResult {
                    affected: 1,
                    last_insert_id: Some(1),
                })],
            },
        ));
        let mut op_logs = OpLogs::new();
        op_logs.push(ObjectName::kv("apc"), kv);
        op_logs.push(ObjectName::session("alice"), reg);
        op_logs.push(ObjectName::db("main"), db);
        let mut nondet = NondetLog::new();
        nondet.push(r1, NondetValue::Time(100));
        nondet.push(r1, NondetValue::Time(101));
        nondet.push(r2, NondetValue::Rand(5));
        let reports = Reports {
            groupings: vec![(CtlFlowTag(1), vec![r1, r2, r3])],
            op_logs,
            op_counts: [(r1, 2), (r2, 3), (r3, 1)].into_iter().collect(),
            nondet,
        };
        (trace, reports)
    }

    #[test]
    fn every_operator_finds_a_site_on_the_fixture() {
        for op in MutationOp::ALL {
            // Several seeds, because some operators draw a site first
            // and check eligibility second only via the candidate list.
            let mut landed = false;
            for seed in 0..8u64 {
                let (mut trace, mut reports) = fixture();
                let mut rng = SplitMix64::new(seed);
                let mut touched = HashSet::new();
                if let Some(site) = op.apply(&mut trace, &mut reports, &mut rng, &mut touched) {
                    assert_eq!(site.operator, op.name());
                    assert!(!touched.is_empty(), "{}", op.name());
                    // The edit must have actually changed the bundle.
                    let (t0, r0) = fixture();
                    assert!(
                        trace != t0 || reports != r0,
                        "{} claimed a site but changed nothing",
                        op.name()
                    );
                    landed = true;
                    break;
                }
            }
            assert!(landed, "{} never found a site on the fixture", op.name());
        }
    }

    #[test]
    fn operators_are_seed_deterministic() {
        for op in MutationOp::ALL {
            let (mut ta, mut ra) = fixture();
            let (mut tb, mut rb) = fixture();
            let sa = op.apply(
                &mut ta,
                &mut ra,
                &mut SplitMix64::new(9),
                &mut HashSet::new(),
            );
            let sb = op.apply(
                &mut tb,
                &mut rb,
                &mut SplitMix64::new(9),
                &mut HashSet::new(),
            );
            assert_eq!(sa, sb, "{}", op.name());
            assert_eq!(ta, tb, "{}", op.name());
            assert_eq!(ra, rb, "{}", op.name());
        }
    }

    #[test]
    fn operators_respect_the_touched_set() {
        for op in MutationOp::ALL {
            let (mut trace, mut reports) = fixture();
            let mut rng = SplitMix64::new(3);
            let mut touched: HashSet<String> = [
                "kv:apc",
                "reg:sess:alice",
                "db:main",
                "trace",
                "op_counts",
                "nondet",
            ]
            .into_iter()
            .map(String::from)
            .collect();
            assert_eq!(
                op.apply(&mut trace, &mut reports, &mut rng, &mut touched),
                None,
                "{} mutated a claimed object",
                op.name()
            );
        }
    }

    #[test]
    fn plan_applies_distinct_objects() {
        for seed in 0..32u64 {
            let (mut trace, mut reports) = fixture();
            let sites = MutationPlan { seed, k: 3 }.apply(&mut trace, &mut reports);
            assert!(!sites.is_empty(), "seed {seed} produced no mutations");
            let mut objects: Vec<&String> = sites.iter().map(|s| &s.object).collect();
            objects.sort();
            objects.dedup();
            assert_eq!(
                objects.len(),
                sites.len(),
                "seed {seed} reused an object: {sites:?}"
            );
        }
    }

    #[test]
    fn plan_is_replayable_from_its_seed() {
        let (mut ta, mut ra) = fixture();
        let (mut tb, mut rb) = fixture();
        let plan = MutationPlan {
            seed: 0xC0FFEE,
            k: 2,
        };
        assert_eq!(plan.apply(&mut ta, &mut ra), plan.apply(&mut tb, &mut rb));
        assert_eq!(ta, tb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn stale_read_pairs_refuse_agreeing_values() {
        let mut log = OpLog::new();
        log.push(entry(1, 1, set("inv:1", 7)));
        log.push(entry(2, 1, set("inv:1", 7)));
        log.push(entry(
            3,
            1,
            OpContents::KvGet {
                key: "inv:1".into(),
            },
        ));
        assert!(stale_read_pairs(&log, "inv:").is_empty());
    }
}
