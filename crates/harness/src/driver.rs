//! Serving and auditing drivers shared by every experiment.
//!
//! All three serving modes — closed-loop ([`serve`]/[`serve_drained`]),
//! and open-loop ([`serve_open_loop`]/[`serve_open_loop_with`]) — are
//! drivers over one abstraction, the [`Frontend`]: a bounded admission
//! queue feeding a fixed worker pool. `OROCHI_SERVE_THREADS` and
//! `OROCHI_SERVE_QUEUE` configure the pool and queue depth everywhere.

use orochi_accphp::executor::{ExecutorStats, VmEngine};
use orochi_accphp::AccPhpExecutor;
use orochi_apps::AppDefinition;
use orochi_core::audit::{
    audit, audit_parallel, audit_parallel_source, audit_source, AuditConfig, AuditOutcome,
    Rejection,
};
use orochi_core::coldstore;
use orochi_core::streaming::{audit_streaming_source, StreamingAudit};
use orochi_obs::HistogramSnapshot;
use orochi_server::server::AuditBundle;
use orochi_server::{Frontend, FrontendConfig, Server, ServerConfig, ShedPolicy};
use orochi_trace::{TraceStoreError, TraceStoreReader, TraceStoreSummary, TraceStoreWriter};
use orochi_workload::Workload;
use std::path::Path;
use std::time::{Duration, Instant};

/// An application together with its workload and database seed.
pub struct AppWorkload {
    /// The application.
    pub app: AppDefinition,
    /// The request stream.
    pub workload: Workload,
    /// SQL to seed the initial database (also applied at the verifier).
    pub seed_sql: Vec<String>,
}

impl AppWorkload {
    /// The initial database both sides start from.
    pub fn initial_db(&self) -> orochi_sqldb::Database {
        let mut db = self.app.initial_db();
        for sql in &self.seed_sql {
            db.execute_autocommit(sql)
                .0
                .unwrap_or_else(|e| panic!("seed statement failed: {e}"));
        }
        db
    }

    /// The audit configuration with the matching initial state.
    pub fn audit_config(&self) -> AuditConfig {
        let mut config = AuditConfig::new();
        config
            .initial_dbs
            .insert("db:main".to_string(), self.initial_db());
        config
    }
}

/// Resolves a requested serving worker count: `0` means "auto" (the
/// available parallelism); explicit values are honored as-is (serving
/// workers may deliberately oversubscribe the cores — they block on the
/// global DB lock), floored at 1.
pub fn resolve_serve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Serving worker count from `OROCHI_SERVE_THREADS`: unset keeps the
/// historical default of 4 closed-loop workers; `0` or `auto` mean the
/// available parallelism; explicit values are honored.
pub fn serve_threads_from_env() -> usize {
    match std::env::var("OROCHI_SERVE_THREADS") {
        Ok(v) if v.eq_ignore_ascii_case("auto") || v.is_empty() => resolve_serve_threads(0),
        Ok(v) => resolve_serve_threads(v.parse::<usize>().unwrap_or_else(|_| {
            panic!("OROCHI_SERVE_THREADS must be a number or 'auto', got {v:?}")
        })),
        Err(_) => 4,
    }
}

/// Admission-queue depth from `OROCHI_SERVE_QUEUE`: unset or `0` means
/// unbounded (no backpressure, no shedding).
pub fn serve_queue_from_env() -> usize {
    match std::env::var("OROCHI_SERVE_QUEUE") {
        Ok(v) if v.is_empty() => 0,
        Ok(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("OROCHI_SERVE_QUEUE must be a queue depth, got {v:?}")),
        Err(_) => 0,
    }
}

/// Serving options.
pub struct ServeOptions {
    /// Front-end worker threads for the measured phase.
    pub threads: usize,
    /// Admission-queue depth; `0` = unbounded.
    pub queue_depth: usize,
    /// Record reports (OROCHI) or run the baseline server.
    pub recording: bool,
    /// Server randomness seed.
    pub seed: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: serve_threads_from_env(),
            queue_depth: serve_queue_from_env(),
            recording: true,
            seed: 42,
        }
    }
}

/// Result of serving a workload.
pub struct ServeResult {
    /// Trace, reports, and final state.
    pub bundle: AuditBundle,
    /// Wall time of the measured phase.
    pub wall: Duration,
    /// Server busy time (CPU-cost proxy).
    pub busy: Duration,
    /// Requests served.
    pub requests: u64,
    /// Requests refused at admission (only under a shedding open-loop
    /// front-end; always 0 for closed-loop backpressure serving).
    pub shed: u64,
    /// Scheduled-submission latency distribution in microseconds (log2
    /// buckets, merged across workers; empty for closed-loop serving).
    pub latency: HistogramSnapshot,
}

fn build_server(work: &AppWorkload, recording: bool, seed: u64) -> Server {
    let scripts = work.app.compile().expect("application compiles");
    let server = Server::new(ServerConfig {
        scripts,
        initial_db: work.initial_db(),
        recording,
        seed,
        ..Default::default()
    });
    for req in &work.workload.setup {
        server.handle(req.clone());
    }
    server
}

/// Serves a workload and returns the *drained* server (worker pool
/// joined) plus the measured-phase wall time. Callers that only need
/// the bundle should use [`serve`]; this variant exists so experiments
/// can measure report assembly itself (e.g. the sequential vs
/// object-sharded stitch) before consuming the server.
///
/// The measured requests are fed straight off the borrowed workload
/// into the front-end's admission queue (one clone per request as it is
/// submitted — the request vector itself is never copied) with
/// backpressure, so every request is served.
pub fn serve_drained(work: &AppWorkload, opts: &ServeOptions) -> (Server, Duration) {
    let server = build_server(work, opts.recording, opts.seed);
    let frontend = Frontend::start(
        server,
        FrontendConfig {
            workers: opts.threads.max(1),
            queue_depth: opts.queue_depth,
            shed: ShedPolicy::Block,
        },
    );
    let t0 = Instant::now();
    for req in &work.workload.requests {
        frontend.submit(req.clone());
    }
    let report = frontend.drain();
    let wall = t0.elapsed();
    (report.server, wall)
}

/// Serves a workload: the setup phase runs sequentially (logins and
/// seeding), the measured phase goes through a [`Frontend`] pool of
/// `threads` workers.
pub fn serve(work: &AppWorkload, opts: &ServeOptions) -> ServeResult {
    let (server, wall) = serve_drained(work, opts);
    let busy = server.busy();
    let requests = server.requests_handled();
    ServeResult {
        bundle: server.into_bundle(),
        wall,
        busy,
        requests,
        shed: 0,
        latency: HistogramSnapshot::new(),
    }
}

/// Open-loop serving knobs beyond the arrival rate.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOptions {
    /// Front-end worker threads.
    pub pool: usize,
    /// Admission-queue depth; `0` = unbounded.
    pub queue_depth: usize,
    /// Refuse arrivals when the bounded queue is full (load shedding)
    /// instead of blocking the dispatcher (backpressure).
    pub shed: bool,
    /// Record reports (OROCHI) or run the baseline server.
    pub recording: bool,
    /// Server randomness and arrival-schedule seed.
    pub seed: u64,
}

/// Serves with an open-loop Poisson arrival schedule (Fig. 8 right):
/// the dispatcher releases each *batch* of due arrivals into the
/// front-end at its scheduled time (one sleep per batch, not per
/// request); workers record per-request latencies (queueing included)
/// into per-worker buffers merged at drain.
pub fn serve_open_loop(
    work: &AppWorkload,
    rate_per_sec: f64,
    pool: usize,
    recording: bool,
    seed: u64,
) -> (Vec<f64>, ServeResult) {
    serve_open_loop_with(
        work,
        rate_per_sec,
        &OpenLoopOptions {
            pool,
            queue_depth: 0,
            shed: false,
            recording,
            seed,
        },
    )
}

/// [`serve_open_loop`] with explicit queue and shedding knobs (the
/// saturation sweep bounds the queue and sheds so overload measures
/// sustained capacity instead of queue growth).
pub fn serve_open_loop_with(
    work: &AppWorkload,
    rate_per_sec: f64,
    opts: &OpenLoopOptions,
) -> (Vec<f64>, ServeResult) {
    let server = build_server(work, opts.recording, opts.seed);
    let frontend = Frontend::start(
        server,
        FrontendConfig {
            workers: opts.pool.max(1),
            queue_depth: opts.queue_depth,
            shed: if opts.shed {
                ShedPolicy::Shed
            } else {
                ShedPolicy::Block
            },
        },
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(opts.seed);
    let arrivals =
        orochi_workload::poisson_arrivals(rate_per_sec, work.workload.requests.len(), &mut rng);
    let requests = &work.workload.requests;
    let t0 = Instant::now();
    let mut i = 0;
    while i < requests.len() {
        let due = t0 + arrivals[i];
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        // Release everything that has become due as one batch.
        let now = Instant::now();
        while i < requests.len() {
            let scheduled = t0 + arrivals[i];
            if scheduled > now {
                break;
            }
            frontend.submit_at(requests[i].clone(), scheduled);
            i += 1;
        }
    }
    let report = frontend.drain();
    let wall = t0.elapsed();
    let busy = report.server.busy();
    let requests = report.server.requests_handled();
    (
        report.latencies,
        ServeResult {
            bundle: report.server.into_bundle(),
            wall,
            busy,
            requests,
            shed: report.shed,
            latency: report.latency,
        },
    )
}

/// One audit run's measurements.
pub struct AuditRun {
    /// Audit statistics (phase timings, dedup counters, redo stats).
    pub outcome: AuditOutcome,
    /// Executor statistics (groups, fallbacks, Fig. 11 triples), merged
    /// across workers for parallel runs.
    pub exec_stats: ExecutorStats,
    /// Total audit wall time.
    pub wall: Duration,
}

/// Audit knobs: execution mode, deduplication, and the worker count.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// SIMD-on-demand grouped re-execution vs the scalar baseline.
    pub grouped: bool,
    /// Read-query deduplication (§4.5).
    pub dedup: bool,
    /// Re-execution worker threads; 1 = the sequential audit.
    pub threads: usize,
    /// Which PHP bytecode engine re-executes requests.
    pub engine: VmEngine,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            grouped: true,
            dedup: true,
            threads: 1,
            engine: vm_engine_from_env(),
        }
    }
}

/// VM engine from the `OROCHI_VM_ENGINE` environment variable: unset or
/// `register` selects the register bytecode engine; `stack` selects the
/// legacy stack interpreter (the differential baseline).
pub fn vm_engine_from_env() -> VmEngine {
    match std::env::var("OROCHI_VM_ENGINE") {
        Ok(v) if v.eq_ignore_ascii_case("stack") => VmEngine::Stack,
        Ok(v) if v.eq_ignore_ascii_case("register") || v.is_empty() => VmEngine::Register,
        Ok(v) => panic!("OROCHI_VM_ENGINE must be 'register' or 'stack', got {v:?}"),
        Err(_) => VmEngine::Register,
    }
}

/// Clamps a requested audit thread count to the machine: `0` means
/// "auto" (everything the OS advertises), anything else is capped at
/// the available parallelism so oversubscribed requests don't spawn
/// threads that only contend. Always at least 1.
pub fn resolve_audit_threads(requested: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if requested == 0 {
        hw
    } else {
        requested.min(hw).max(1)
    }
}

/// Audit worker count from the `OROCHI_AUDIT_THREADS` environment
/// variable: unset, `0`, or `auto` mean "use every available core";
/// explicit values are clamped by [`resolve_audit_threads`].
pub fn audit_threads_from_env() -> usize {
    match std::env::var("OROCHI_AUDIT_THREADS") {
        Ok(v) if v.eq_ignore_ascii_case("auto") || v.is_empty() => resolve_audit_threads(0),
        Ok(v) => resolve_audit_threads(v.parse::<usize>().unwrap_or_else(|_| {
            panic!("OROCHI_AUDIT_THREADS must be a number or 'auto', got {v:?}")
        })),
        Err(_) => resolve_audit_threads(0),
    }
}

/// Records audit-side telemetry once a verdict has landed: the
/// seal→verdict audit lag (the metric the streaming-epoch audit will
/// stream per epoch) and the per-engine VM dispatch split.
fn record_audit_obs(outcome: &AuditOutcome, engine: VmEngine) {
    orochi_obs::lag::record_verdict();
    let engine = match engine {
        VmEngine::Register => "register",
        VmEngine::Stack => "stack",
    };
    orochi_obs::registry::counter_owned(&format!("vm_dispatch_executed_{engine}_total"))
        .add(outcome.stats.vm_dispatch_executed);
    orochi_obs::registry::counter_owned(&format!("vm_dispatch_represented_{engine}_total"))
        .add(outcome.stats.vm_dispatch_total);
}

/// Audits a bundle. `grouped` selects SIMD-on-demand vs the scalar
/// baseline; `dedup` toggles read-query deduplication (§4.5). Runs the
/// sequential audit; use [`run_audit_with`] for the pooled variant.
pub fn run_audit(
    bundle: &AuditBundle,
    work: &AppWorkload,
    grouped: bool,
    dedup: bool,
) -> Result<AuditRun, Rejection> {
    run_audit_with(
        bundle,
        work,
        &AuditOptions {
            grouped,
            dedup,
            ..Default::default()
        },
    )
}

/// Audits a bundle with explicit [`AuditOptions`]. With `threads >= 2`
/// the control-flow groups re-execute across a worker pool
/// (`audit_parallel`); verdicts and diagnostics are identical to the
/// sequential audit at any thread count.
pub fn run_audit_with(
    bundle: &AuditBundle,
    work: &AppWorkload,
    opts: &AuditOptions,
) -> Result<AuditRun, Rejection> {
    let scripts = work.app.compile().expect("application compiles");
    let mut config = work.audit_config();
    config.query_dedup = opts.dedup;
    let threads = opts.threads.max(1);
    let mut executors: Vec<AccPhpExecutor> = (0..threads)
        .map(|_| {
            let mut e = AccPhpExecutor::new(scripts.clone());
            e.force_scalar = !opts.grouped;
            e.engine = opts.engine;
            e
        })
        .collect();
    let t0 = Instant::now();
    let outcome = if threads == 1 {
        audit(&bundle.trace, &bundle.reports, &mut executors[0], &config)?
    } else {
        audit_parallel(&bundle.trace, &bundle.reports, &mut executors, &config)?
    };
    let wall = t0.elapsed();
    record_audit_obs(&outcome, opts.engine);
    let mut exec_stats = ExecutorStats::default();
    for e in &executors {
        exec_stats.merge(&e.stats);
    }
    Ok(AuditRun {
        outcome,
        exec_stats,
        wall,
    })
}

/// Spills a served bundle's trace and reports into a segmented trace
/// store at `dir` (created if missing; refuses a dirty directory). The
/// bundle itself is untouched — callers wanting the cold-storage memory
/// profile drop `bundle.trace` after spilling.
pub fn spill_bundle(
    bundle: &AuditBundle,
    dir: impl AsRef<Path>,
    segment_bytes: usize,
) -> std::io::Result<TraceStoreSummary> {
    let mut writer = TraceStoreWriter::create(dir.as_ref(), segment_bytes)?;
    writer.append_trace(&bundle.trace)?;
    coldstore::spill_reports(&mut writer, &bundle.reports)?;
    writer.finish()
}

/// Audits straight from a segmented trace store: the trace streams out
/// of the sealed segments one at a time ([`audit_source`]) and the
/// reports load from the sidecar blob. Verdicts and diagnostics are
/// byte-identical to [`run_audit_with`] over the in-RAM bundle.
pub fn run_audit_cold(
    reader: &TraceStoreReader,
    work: &AppWorkload,
    opts: &AuditOptions,
) -> Result<AuditRun, Rejection> {
    let reports = coldstore::load_reports(reader).map_err(Rejection::TraceStore)?;
    let scripts = work.app.compile().expect("application compiles");
    let mut config = work.audit_config();
    config.query_dedup = opts.dedup;
    let threads = opts.threads.max(1);
    let mut executors: Vec<AccPhpExecutor> = (0..threads)
        .map(|_| {
            let mut e = AccPhpExecutor::new(scripts.clone());
            e.force_scalar = !opts.grouped;
            e.engine = opts.engine;
            e
        })
        .collect();
    let t0 = Instant::now();
    let outcome = if threads == 1 {
        audit_source(reader, &reports, &mut executors[0], &config)?
    } else {
        audit_parallel_source(reader, &reports, &mut executors, &config)?
    };
    let wall = t0.elapsed();
    record_audit_obs(&outcome, opts.engine);
    let mut exec_stats = ExecutorStats::default();
    for e in &executors {
        exec_stats.merge(&e.stats);
    }
    Ok(AuditRun {
        outcome,
        exec_stats,
        wall,
    })
}

/// Builds the audit worker pool shared by every audit entry point.
fn build_executors(work: &AppWorkload, opts: &AuditOptions) -> Vec<AccPhpExecutor> {
    let scripts = work.app.compile().expect("application compiles");
    (0..opts.threads.max(1))
        .map(|_| {
            let mut e = AccPhpExecutor::new(scripts.clone());
            e.force_scalar = !opts.grouped;
            e.engine = opts.engine;
            e
        })
        .collect()
}

/// Audits a segmented trace store through the streaming epoch driver
/// ([`audit_streaming_source`]): the trace is pulled in epochs of
/// `epoch_events` events (`0` = one epoch, i.e. batch) and re-executed
/// incrementally with bounded carry. Verdicts and diagnostics are
/// byte-identical to [`run_audit_cold`] at any epoch budget.
pub fn run_audit_streaming(
    reader: &TraceStoreReader,
    work: &AppWorkload,
    opts: &AuditOptions,
    epoch_events: usize,
) -> Result<AuditRun, Rejection> {
    let reports = coldstore::load_reports(reader).map_err(Rejection::TraceStore)?;
    let mut config = work.audit_config();
    config.query_dedup = opts.dedup;
    let mut executors = build_executors(work, opts);
    let t0 = Instant::now();
    let outcome = audit_streaming_source(reader, &reports, &mut executors, &config, epoch_events)?;
    let wall = t0.elapsed();
    record_audit_obs(&outcome, opts.engine);
    let mut exec_stats = ExecutorStats::default();
    for e in &executors {
        exec_stats.merge(&e.stats);
    }
    Ok(AuditRun {
        outcome,
        exec_stats,
        wall,
    })
}

/// Result of [`serve_and_audit`].
pub struct ServeAudit {
    /// The streaming audit's measurements.
    pub run: AuditRun,
    /// Wall time of the serving phase.
    pub serve_wall: Duration,
    /// Epochs the audit consumed.
    pub epochs: u64,
    /// The trace store the epochs were sealed into.
    pub store: TraceStoreSummary,
}

/// Audit-while-serving: serves the workload, then interleaves trace
/// persistence and auditing at epoch granularity — each epoch of events
/// is appended to the segmented store, sealed (stamping the lag clock),
/// and immediately fed to the [`StreamingAudit`], so the verifier's
/// working set never holds the whole trace. The reports only exist once
/// the server drains, so the overlap is between store ingest and audit,
/// not with serving itself.
pub fn serve_and_audit(
    work: &AppWorkload,
    serve_opts: &ServeOptions,
    audit_opts: &AuditOptions,
    dir: impl AsRef<Path>,
    segment_bytes: usize,
    epoch_events: usize,
) -> Result<ServeAudit, Rejection> {
    let dir = dir.as_ref();
    let io_err = |e: std::io::Error| {
        Rejection::TraceStore(TraceStoreError::io(dir.display().to_string(), &e))
    };
    let (server, serve_wall) = serve_drained(work, serve_opts);
    let bundle = server.into_bundle();
    let mut config = work.audit_config();
    config.query_dedup = audit_opts.dedup;
    let mut executors = build_executors(work, audit_opts);
    let mut writer = TraceStoreWriter::create(dir, segment_bytes).map_err(io_err)?;
    let t0 = Instant::now();
    let mut audit = StreamingAudit::new(&bundle.reports, &config, executors.len());
    let budget = if epoch_events == 0 {
        bundle.trace.events.len().max(1)
    } else {
        epoch_events
    };
    let mut feeding = true;
    for epoch in bundle.trace.events.chunks(budget) {
        for event in epoch {
            writer.append(event.clone()).map_err(io_err)?;
        }
        // Seal the epoch: durable on disk and stamped on the lag clock
        // before the verifier touches it.
        writer.seal().map_err(io_err)?;
        if feeding {
            feeding = audit.feed_epoch(epoch, &mut executors);
        }
    }
    coldstore::spill_reports(&mut writer, &bundle.reports).map_err(io_err)?;
    let store = writer.finish().map_err(io_err)?;
    let reader = TraceStoreReader::open(dir).map_err(Rejection::TraceStore)?;
    let epochs = audit.epochs();
    let outcome = audit.finish(&reader, &mut executors)?;
    let wall = t0.elapsed();
    record_audit_obs(&outcome, audit_opts.engine);
    let mut exec_stats = ExecutorStats::default();
    for e in &executors {
        exec_stats.merge(&e.stats);
    }
    Ok(ServeAudit {
        run: AuditRun {
            outcome,
            exec_stats,
            wall,
        },
        serve_wall,
        epochs,
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_workload::wiki;

    fn tiny_wiki() -> AppWorkload {
        AppWorkload {
            app: orochi_apps::wiki::app(),
            workload: wiki::generate(&wiki::Params::scaled(0.01), 1),
            seed_sql: Vec::new(),
        }
    }

    #[test]
    fn serve_then_audit_roundtrip() {
        let work = tiny_wiki();
        let served = serve(&work, &ServeOptions::default());
        assert_eq!(served.requests as usize, work.workload.len());
        let run = run_audit(&served.bundle, &work, true, true)
            .unwrap_or_else(|r| panic!("audit rejected: {r}"));
        assert!(run.outcome.stats.requests_reexecuted > 0);
        // Grouped mode must engage on a Zipf wiki workload.
        assert!(run.exec_stats.grouped > 0);
    }

    #[test]
    fn scalar_baseline_also_accepts_and_is_slower_conceptually() {
        let work = tiny_wiki();
        let served = serve(&work, &ServeOptions::default());
        let grouped = run_audit(&served.bundle, &work, true, true).unwrap();
        let scalar = run_audit(&served.bundle, &work, false, false).unwrap();
        assert_eq!(
            grouped.outcome.stats.requests_reexecuted,
            scalar.outcome.stats.requests_reexecuted
        );
        assert_eq!(scalar.exec_stats.grouped, 0);
    }

    #[test]
    fn cold_audit_matches_in_ram() {
        let work = tiny_wiki();
        let served = serve(&work, &ServeOptions::default());
        let dir = std::env::temp_dir().join(format!("orochi-driver-cold-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = spill_bundle(&served.bundle, &dir, 64 * 1024).unwrap();
        assert_eq!(summary.events as usize, served.bundle.trace.len());
        let ram = run_audit(&served.bundle, &work, true, true).unwrap();
        drop(served); // the in-RAM trace is gone; only the segments remain
        let reader = TraceStoreReader::open(&dir).unwrap();
        let cold = run_audit_cold(&reader, &work, &AuditOptions::default()).unwrap();
        assert_eq!(
            cold.outcome.stats.requests_reexecuted,
            ram.outcome.stats.requests_reexecuted
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_and_audit_matches_batch() {
        let work = tiny_wiki();
        let dir = std::env::temp_dir().join(format!("orochi-serve-audit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sa = serve_and_audit(
            &work,
            &ServeOptions::default(),
            &AuditOptions::default(),
            &dir,
            64 * 1024,
            32,
        )
        .unwrap_or_else(|r| panic!("streaming audit rejected: {r}"));
        assert!(sa.epochs > 1, "a 32-event budget must yield many epochs");
        assert_eq!(sa.store.events as usize, work.workload.len() * 2);
        // The batch oracle must audit the *same* sealed store the
        // streaming audit consumed: group structure depends on the
        // serve interleaving (check-then-act branches shift control-
        // flow digests), so a second serve is not a valid oracle.
        let reader = TraceStoreReader::open(&dir).unwrap();
        let batch = run_audit_cold(&reader, &work, &AuditOptions::default()).unwrap();
        assert_eq!(
            sa.run.outcome.stats.requests_reexecuted,
            batch.outcome.stats.requests_reexecuted
        );
        assert_eq!(
            sa.run.outcome.stats.groups_executed,
            batch.outcome.stats.groups_executed
        );
        // The sealed store must also replay cold through the streaming
        // driver with a different epoch budget, to the same verdict.
        let cold = run_audit_streaming(&reader, &work, &AuditOptions::default(), 7).unwrap();
        assert_eq!(
            cold.outcome.stats.requests_reexecuted,
            batch.outcome.stats.requests_reexecuted
        );
        assert_eq!(
            cold.outcome.stats.groups_executed,
            batch.outcome.stats.groups_executed
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_loop_latencies_collected() {
        let mut work = tiny_wiki();
        work.workload.requests.truncate(60);
        let (latencies, served) = serve_open_loop(&work, 300.0, 4, true, 3);
        assert_eq!(latencies.len(), 60);
        assert!(latencies.iter().all(|&l| l >= 0.0));
        run_audit(&served.bundle, &work, true, true)
            .unwrap_or_else(|r| panic!("open-loop audit rejected: {r}"));
    }
}
