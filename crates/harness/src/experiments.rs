//! One function per paper table/figure (the per-experiment index in
//! DESIGN.md maps each to its bench target).

use crate::driver::{
    run_audit, run_audit_cold, run_audit_streaming, run_audit_with, serve, serve_drained,
    serve_open_loop, serve_open_loop_with, spill_bundle, vm_engine_from_env, AppWorkload,
    AuditOptions, OpenLoopOptions, ServeOptions,
};
use crate::mutation::{MutationPlan, MutationSite};
use crate::tamper;
use orochi_accphp::{AccPhpExecutor, VmEngine};
use orochi_common::metrics::percentile;
use orochi_core::audit::{audit, audit_parallel};
use orochi_core::streaming::audit_streaming_source;
use orochi_server::server::AuditBundle;
use orochi_trace::{Event, TraceStoreReader};
use orochi_workload::{forum, hotcrp, mixed, shop, skew, wiki};
use std::collections::{BTreeMap, HashSet};
use std::time::{Duration, Instant};

/// Workload scale: the paper's full counts with `OROCHI_FULL=1`,
/// otherwise a CI-friendly fraction.
pub fn scale_from_env() -> f64 {
    match std::env::var("OROCHI_FULL") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => 1.0,
        _ => 0.05,
    }
}

/// Builds the shop workload at `scale` (the `OROCHI_WORKLOAD_SKEW` knob
/// applies, like the paper workloads).
pub fn shop_workload(scale: f64, seed: u64) -> AppWorkload {
    let params = shop::Params::scaled(scale).with_skew(&skew::from_env());
    AppWorkload {
        app: orochi_apps::shop::app(),
        workload: shop::generate(&params, seed),
        seed_sql: shop::seed_sql(&params),
    }
}

/// Builds the three paper workloads plus the shop at `scale`. The
/// shared `OROCHI_WORKLOAD_SKEW` knob (Zipf theta, session length)
/// applies to all four.
pub fn paper_workloads(scale: f64, seed: u64) -> Vec<AppWorkload> {
    let sk = skew::from_env();
    let forum_params = forum::Params::scaled(scale).with_skew(&sk);
    vec![
        AppWorkload {
            app: orochi_apps::wiki::app(),
            workload: wiki::generate(&wiki::Params::scaled(scale).with_skew(&sk), seed),
            seed_sql: Vec::new(),
        },
        AppWorkload {
            app: orochi_apps::forum::app(),
            workload: forum::generate(&forum_params, seed),
            seed_sql: forum::seed_sql(&forum_params),
        },
        AppWorkload {
            app: orochi_apps::hotcrp::app(),
            workload: hotcrp::generate(&hotcrp::Params::scaled(scale).with_skew(&sk), seed),
            seed_sql: Vec::new(),
        },
        shop_workload(scale, seed),
    ]
}

/// One row of the Fig. 8 (left) table.
#[derive(Debug)]
pub struct Fig8Row {
    /// Application name.
    pub app: &'static str,
    /// Requests in the audited window.
    pub requests: u64,
    /// Baseline audit time / OROCHI audit time.
    pub audit_speedup: f64,
    /// (recording server busy − baseline server busy) / baseline busy.
    pub server_cpu_overhead: f64,
    /// Average request-response pair size, bytes.
    pub avg_request_bytes: f64,
    /// Baseline per-request report bytes (nondeterminism only, §5.1).
    pub baseline_report_bytes: f64,
    /// OROCHI per-request report bytes.
    pub orochi_report_bytes: f64,
    /// (trace + OROCHI reports) / (trace + baseline reports).
    pub report_overhead: f64,
    /// Versioned-DB bytes / final-DB bytes during the audit ("temp").
    pub db_temp_overhead: f64,
    /// Post-audit DB overhead (always 1×: only the latest state kept).
    pub db_permanent_overhead: f64,
}

/// Experiment E1: the Fig. 8 (left) main-results table.
pub fn fig8_table(scale: f64, seed: u64) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for work in paper_workloads(scale, seed) {
        let name = work.app.name;
        // The audited bundle comes from a concurrent serve with
        // recording on (realistic trace concurrency).
        let orochi = serve(
            &work,
            &ServeOptions {
                recording: true,
                ..Default::default()
            },
        );
        // Server CPU overhead compares contention-free busy time
        // (single client thread). One discarded warm-up run, then the
        // arms alternate; min-of-3 per arm suppresses noise.
        let serve_once = |recording: bool| {
            serve(
                &work,
                &ServeOptions {
                    threads: 1,
                    recording,
                    seed: 42,
                    ..Default::default()
                },
            )
            .busy
        };
        let _ = serve_once(true);
        let mut base_runs = Vec::new();
        let mut rec_runs = Vec::new();
        for _ in 0..3 {
            base_runs.push(serve_once(false));
            rec_runs.push(serve_once(true));
        }
        let busy_baseline = base_runs.into_iter().min().expect("three runs");
        let busy_recording = rec_runs.into_iter().min().expect("three runs");
        // Audits: grouped+dedup (OROCHI) vs scalar+no-dedup ("simple
        // re-execution").
        let orochi_audit = run_audit(&orochi.bundle, &work, true, true)
            .unwrap_or_else(|r| panic!("{name}: OROCHI audit rejected: {r}"));
        let simple_audit = run_audit(&orochi.bundle, &work, false, false)
            .unwrap_or_else(|r| panic!("{name}: baseline audit rejected: {r}"));

        let trace_bytes = orochi.bundle.trace.wire_size() as f64;
        let report_bytes = orochi.bundle.reports.wire_size() as f64;
        let nondet_bytes = orochi.bundle.reports.nondet_wire_size() as f64;
        let n = orochi.requests as f64;
        let stats = &orochi_audit.outcome.stats;
        rows.push(Fig8Row {
            app: name,
            requests: orochi.requests,
            audit_speedup: simple_audit.wall.as_secs_f64() / orochi_audit.wall.as_secs_f64(),
            server_cpu_overhead: (busy_recording.as_secs_f64() - busy_baseline.as_secs_f64())
                / busy_baseline.as_secs_f64(),
            avg_request_bytes: trace_bytes / n,
            baseline_report_bytes: nondet_bytes / n,
            orochi_report_bytes: report_bytes / n,
            report_overhead: (trace_bytes + report_bytes) / (trace_bytes + nondet_bytes),
            db_temp_overhead: if stats.db_final_bytes > 0 {
                stats.db_versioned_bytes as f64 / stats.db_final_bytes as f64
            } else {
                1.0
            },
            db_permanent_overhead: 1.0,
        });
    }
    rows
}

/// Renders the Fig. 8 table like the paper's.
pub fn print_fig8(rows: &[Fig8Row]) {
    println!(
        "{:<10} {:>8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>8} {:>6} {:>6}",
        "app",
        "requests",
        "speedup",
        "srv-ovhd",
        "req-bytes",
        "base-rep",
        "oro-rep",
        "rep-ovhd",
        "temp",
        "perm"
    );
    for r in rows {
        println!(
            "{:<10} {:>8} {:>8.1}x {:>8.1}% {:>9.1}B {:>9.1}B {:>9.1}B {:>7.1}% {:>5.1}x {:>5.1}x",
            r.app,
            r.requests,
            r.audit_speedup,
            r.server_cpu_overhead * 100.0,
            r.avg_request_bytes,
            r.baseline_report_bytes,
            r.orochi_report_bytes,
            (r.report_overhead - 1.0) * 100.0,
            r.db_temp_overhead,
            r.db_permanent_overhead,
        );
    }
}

/// One point of the Fig. 8 (right) latency/throughput plot.
#[derive(Debug)]
pub struct LatencyPoint {
    /// Offered rate, requests/second.
    pub offered_rate: f64,
    /// Achieved throughput, requests/second.
    pub throughput: f64,
    /// 50th percentile latency, ms.
    pub p50_ms: f64,
    /// 90th percentile latency, ms.
    pub p90_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
}

/// Experiment E2: latency vs throughput for the forum app, recording on
/// vs off (Fig. 8 right).
pub fn fig8_latency(scale: f64, seed: u64, rates: &[f64], recording: bool) -> Vec<LatencyPoint> {
    let params = forum::Params::scaled(scale);
    let mut out = Vec::new();
    for &rate in rates {
        let work = AppWorkload {
            app: orochi_apps::forum::app(),
            workload: forum::generate(&params, seed),
            seed_sql: forum::seed_sql(&params),
        };
        let (latencies, served) = serve_open_loop(&work, rate, 8, recording, seed);
        let throughput = served.requests as f64 / served.wall.as_secs_f64();
        out.push(LatencyPoint {
            offered_rate: rate,
            throughput,
            p50_ms: percentile(&latencies, 50.0).unwrap_or(0.0),
            p90_ms: percentile(&latencies, 90.0).unwrap_or(0.0),
            p99_ms: percentile(&latencies, 99.0).unwrap_or(0.0),
        });
    }
    out
}

/// One measured point of the saturation sweep.
#[derive(Debug)]
pub struct SaturationPoint {
    /// Offered rate, requests/second.
    pub offered_rate: f64,
    /// Achieved throughput, requests/second.
    pub throughput: f64,
    /// Median latency, ms (queueing included).
    pub p50_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// Requests refused at admission (bounded queue, shedding).
    pub shed: u64,
    /// Requests actually served.
    pub requests: u64,
}

/// One (app × worker-count) arm of the saturation sweep.
#[derive(Debug)]
pub struct SaturationRow {
    /// Application name.
    pub app: &'static str,
    /// Front-end workers.
    pub workers: usize,
    /// Admission-queue depth used by the sweep.
    pub queue_depth: usize,
    /// Peak sustained throughput, requests/second: the saturating-burst
    /// probe (every arrival due immediately, backpressure admission) —
    /// the pool's capacity, with every request served.
    pub peak_sustained: f64,
    /// Offered rate at the p99 knee: the first swept rate whose p99
    /// blew past the unloaded p99 (or that had to shed); the last swept
    /// rate if the knee was never reached.
    pub knee_rate: f64,
    /// The swept open-loop points, in offered-rate order.
    pub points: Vec<SaturationPoint>,
}

/// Experiment E10: saturation sweep. For each paper workload and each
/// worker count, measure the pool's capacity with a saturating burst
/// probe, then sweep offered rates around that capacity (bounded queue,
/// load shedding) up to the p99 knee. The measured request stream is
/// truncated to `max_requests` per point so the sweep stays CI-sized;
/// the full-scale nightly run raises it.
pub fn saturation(
    scale: f64,
    seed: u64,
    worker_counts: &[usize],
    queue_depth: usize,
    max_requests: usize,
) -> Vec<SaturationRow> {
    let mut rows = Vec::new();
    for mut work in paper_workloads(scale, seed) {
        if max_requests > 0 {
            work.workload.requests.truncate(max_requests);
        }
        let n = work.workload.requests.len().max(1);
        for &workers in worker_counts {
            let workers = workers.max(1);
            let depth = if queue_depth == 0 {
                workers * 8
            } else {
                queue_depth
            };
            // Capacity probe: everything due at t=0, backpressure
            // admission, so the pool runs flat out and serves all n.
            let burst = OpenLoopOptions {
                pool: workers,
                queue_depth: depth,
                shed: false,
                recording: true,
                seed,
            };
            let (_, probe) = serve_open_loop_with(&work, 1e9, &burst);
            probe
                .bundle
                .trace
                .ensure_balanced()
                .expect("saturation probe produced an unbalanced trace");
            assert_eq!(probe.shed, 0, "backpressure admission never sheds");
            // Measured-phase count (ServeResult::requests also counts
            // the sequential setup phase).
            let peak_sustained = n as f64 / probe.wall.as_secs_f64().max(1e-9);

            // Sweep offered rates around the measured capacity with a
            // shedding front-end; stop one point past the p99 knee.
            let shed_opts = OpenLoopOptions {
                shed: true,
                ..burst
            };
            let mut points = Vec::new();
            let mut knee_rate = None;
            let mut unloaded_p99 = None;
            for mult in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
                let rate = (peak_sustained * mult).max(1.0);
                let (_latencies, served) = serve_open_loop_with(&work, rate, &shed_opts);
                // Percentiles come from the log2 latency histogram the
                // front-end merged per run (the telemetry layer's
                // representation) instead of re-sorting the raw vector;
                // knee detection compares estimates against estimates,
                // so the bucket granularity cancels out of the ratio.
                let p99 = served
                    .latency
                    .quantile_est(99.0)
                    .map_or(0.0, |us| us / 1000.0);
                let handled = n as u64 - served.shed;
                let point = SaturationPoint {
                    offered_rate: rate,
                    throughput: handled as f64 / served.wall.as_secs_f64().max(1e-9),
                    p50_ms: served
                        .latency
                        .quantile_est(50.0)
                        .map_or(0.0, |us| us / 1000.0),
                    p99_ms: p99,
                    shed: served.shed,
                    requests: handled,
                };
                let base = *unloaded_p99.get_or_insert(p99.max(1e-3));
                let at_knee = point.shed > 0 || p99 > base * 10.0;
                let past_knee = knee_rate.is_some();
                if at_knee && knee_rate.is_none() {
                    knee_rate = Some(rate);
                }
                points.push(point);
                if past_knee {
                    break;
                }
            }
            let knee_rate = knee_rate
                .or_else(|| points.last().map(|p| p.offered_rate))
                .unwrap_or(0.0);
            // Surface the knee in the registry so downstream consumers
            // (exports, the obs snapshot) see it beside the shed
            // counters the front-end already published.
            orochi_obs::registry::gauge_owned(&format!(
                "saturation_knee_rate_{}_w{workers}",
                work.app.name
            ))
            .set(knee_rate.round() as i64);
            rows.push(SaturationRow {
                app: work.app.name,
                workers,
                queue_depth: depth,
                peak_sustained,
                knee_rate,
                points,
            });
        }
    }
    rows
}

/// Renders the saturation rows.
pub fn print_saturation(rows: &[SaturationRow]) {
    println!(
        "{:<10} {:>7} {:>6} {:>10} {:>10}",
        "app", "workers", "queue", "peak", "knee"
    );
    for r in rows {
        println!(
            "{:<10} {:>7} {:>6} {:>8.1}/s {:>8.1}/s",
            r.app, r.workers, r.queue_depth, r.peak_sustained, r.knee_rate
        );
        for p in &r.points {
            println!(
                "  rate {:>8.1}/s -> {:>8.1}/s  p50 {:>7.2}ms  p99 {:>7.2}ms  shed {}",
                p.offered_rate, p.throughput, p.p50_ms, p.p99_ms, p.shed
            );
        }
    }
}

/// One bar of the Fig. 9 decomposition.
#[derive(Debug)]
pub struct Fig9Row {
    /// Application name.
    pub app: &'static str,
    /// "ProcOpRep": Figs. 5/6 processing.
    pub proc_op_rep: Duration,
    /// The slice of "ProcOpRep" spent in the streamed two-pass CSR
    /// graph build (the graph-layer cost the `timeprec` ablation
    /// isolates).
    pub graph_build: Duration,
    /// Nodes in the audit graph (`2X + Y`).
    pub graph_nodes: usize,
    /// Edges in the audit graph.
    pub graph_edges: usize,
    /// "DB redo": versioned store construction.
    pub db_redo: Duration,
    /// "DB query": simulated reads during re-execution.
    pub db_query: Duration,
    /// "PHP": SIMD-on-demand + simulate-and-check execution.
    pub php: Duration,
    /// "Other": balance check, output comparison, initialization.
    pub other: Duration,
    /// Baseline (simple re-execution) total for the same bundle.
    pub baseline_total: Duration,
    /// VM dispatches the trace represents: Σ over groups of
    /// `n_c × ℓ_c` (what scalar re-execution would run).
    pub vm_dispatch_total: u64,
    /// VM dispatches actually executed after deduplication: univalent
    /// instructions once per group, multivalent ones per lane.
    pub vm_dispatch_executed: u64,
}

impl Fig9Row {
    /// The Fig. 10 dedup ratio: represented over executed dispatches
    /// (≥ 1; higher means grouping saved more work).
    pub fn dispatch_dedup(&self) -> f64 {
        self.vm_dispatch_total as f64 / (self.vm_dispatch_executed as f64).max(1.0)
    }
}

/// Experiment E3: audit-time CPU decomposition (Fig. 9).
pub fn fig9_decomposition(scale: f64, seed: u64) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for work in paper_workloads(scale, seed) {
        let name = work.app.name;
        let served = serve(&work, &ServeOptions::default());
        let orochi = run_audit(&served.bundle, &work, true, true)
            .unwrap_or_else(|r| panic!("{name}: audit rejected: {r}"));
        let simple = run_audit(&served.bundle, &work, false, false)
            .unwrap_or_else(|r| panic!("{name}: baseline audit rejected: {r}"));
        let stats = &orochi.outcome.stats;
        let phases = &stats.phases;
        rows.push(Fig9Row {
            app: name,
            proc_op_rep: phases.get("ProcOpRep"),
            graph_build: stats.graph_build,
            graph_nodes: stats.graph_nodes,
            graph_edges: stats.graph_edges,
            db_redo: phases.get("DB redo"),
            db_query: phases.get("DB query"),
            php: phases.get("ReExec"),
            other: phases.get("Balance") + phases.get("Output"),
            baseline_total: simple.wall,
            vm_dispatch_total: stats.vm_dispatch_total,
            vm_dispatch_executed: stats.vm_dispatch_executed,
        });
    }
    rows
}

/// Renders Fig. 9 (the "graph" column is the CSR-build slice of
/// "ProcOpRep", with the graph's node/edge counts alongside).
pub fn print_fig9(rows: &[Fig9Row]) {
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>18}",
        "app",
        "ProcOpRep",
        "graph",
        "DB redo",
        "DB query",
        "PHP",
        "Other",
        "baseline",
        "graph nodes/edges"
    );
    for r in rows {
        println!(
            "{:<10} {:>9.2}s {:>8.2}ms {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s {:>11.2}s {:>8}/{}",
            r.app,
            r.proc_op_rep.as_secs_f64(),
            r.graph_build.as_secs_f64() * 1000.0,
            r.db_redo.as_secs_f64(),
            r.db_query.as_secs_f64(),
            r.php.as_secs_f64(),
            r.other.as_secs_f64(),
            r.baseline_total.as_secs_f64(),
            r.graph_nodes,
            r.graph_edges,
        );
    }
    for r in rows {
        println!(
            "{:<10} vm dispatches: {} represented, {} executed ({:.2}x dedup)",
            r.app,
            r.vm_dispatch_total,
            r.vm_dispatch_executed,
            r.dispatch_dedup(),
        );
    }
}

/// One row of the parallel-audit speedup experiment: the same bundle
/// audited sequentially and across a worker pool.
#[derive(Debug)]
pub struct ParallelRow {
    /// Application name.
    pub app: &'static str,
    /// Requests in the audited window.
    pub requests: u64,
    /// Worker threads used by the parallel arm.
    pub threads: usize,
    /// Sequential audit wall time.
    pub seq_wall: Duration,
    /// Parallel audit wall time.
    pub par_wall: Duration,
}

impl ParallelRow {
    /// Sequential / parallel wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.seq_wall.as_secs_f64() / self.par_wall.as_secs_f64().max(1e-9)
    }
}

/// Experiment E8: audit wall time, sequential vs `threads`-worker
/// parallel, per paper workload. Both arms must accept and agree on
/// every determinism-relevant counter — a scheduling bug shows up here
/// before it shows up in CI numbers. Each arm is the min of two runs
/// (the same noise suppression the Fig. 8 serve arms use): CI-scale
/// audits finish in tens of milliseconds, where one scheduler hiccup on
/// a shared runner would otherwise swamp the ratio the CI job guards.
pub fn parallel_speedup(scale: f64, seed: u64, threads: usize) -> Vec<ParallelRow> {
    let mut rows = Vec::new();
    for work in paper_workloads(scale, seed) {
        let name = work.app.name;
        let served = serve(&work, &ServeOptions::default());
        let min_of_two = |opts: &AuditOptions, arm: &str| {
            let a = run_audit_with(&served.bundle, &work, opts)
                .unwrap_or_else(|r| panic!("{name}: {arm} audit rejected: {r}"));
            let b = run_audit_with(&served.bundle, &work, opts)
                .unwrap_or_else(|r| panic!("{name}: {arm} audit rejected: {r}"));
            if a.wall <= b.wall {
                a
            } else {
                b
            }
        };
        let seq = min_of_two(&AuditOptions::default(), "sequential");
        let par = min_of_two(
            &AuditOptions {
                threads,
                ..Default::default()
            },
            "parallel",
        );
        let (s, p) = (&seq.outcome.stats, &par.outcome.stats);
        assert_eq!(
            (
                s.requests_reexecuted,
                s.register_ops,
                s.kv_ops,
                s.db_txns,
                s.db_queries
            ),
            (
                p.requests_reexecuted,
                p.register_ops,
                p.kv_ops,
                p.db_txns,
                p.db_queries
            ),
            "{name}: parallel audit drifted from the sequential counters"
        );
        rows.push(ParallelRow {
            app: name,
            requests: served.requests,
            threads,
            seq_wall: seq.wall,
            par_wall: par.wall,
        });
    }
    rows
}

/// Renders the parallel speedup rows.
pub fn print_parallel(rows: &[ParallelRow]) {
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "app", "requests", "threads", "seq", "par", "speedup"
    );
    for r in rows {
        println!(
            "{:<10} {:>8} {:>8} {:>9.3}s {:>9.3}s {:>7.2}x",
            r.app,
            r.requests,
            r.threads,
            r.seq_wall.as_secs_f64(),
            r.par_wall.as_secs_f64(),
            r.speedup(),
        );
    }
}

/// Fig. 11 summary for the wiki workload.
#[derive(Debug)]
pub struct Fig11Summary {
    /// Total control-flow groups re-executed (grouped + scalar).
    pub total_groups: usize,
    /// Groups with more than one request.
    pub groups_gt1: usize,
    /// Distinct request URLs in the trace.
    pub unique_urls: usize,
    /// Per-group `(n, α, ℓ)` triples (grouped executions).
    pub triples: Vec<(usize, f64, u64)>,
}

/// Experiment E5: control-flow group characteristics (Fig. 11).
/// `threads` selects the audit worker pool (1 = sequential); the
/// triples are scheduling-independent either way.
pub fn fig11_groups(scale: f64, seed: u64, threads: usize) -> Fig11Summary {
    let work = AppWorkload {
        app: orochi_apps::wiki::app(),
        workload: wiki::generate(&wiki::Params::scaled(scale), seed),
        seed_sql: Vec::new(),
    };
    let served = serve(&work, &ServeOptions::default());
    let run = run_audit_with(
        &served.bundle,
        &work,
        &AuditOptions {
            threads: threads.max(1),
            ..Default::default()
        },
    )
    .unwrap_or_else(|r| panic!("fig11 audit rejected: {r}"));
    let mut urls = HashSet::new();
    for event in &served.bundle.trace.events {
        if let Event::Request(_, req) = event {
            urls.insert(req.url());
        }
    }
    let grouped = run.exec_stats.group_stats.len();
    // Scalar-executed requests are singleton groups by definition.
    let singleton = run.exec_stats.scalar_requests;
    let triples: Vec<(usize, f64, u64)> = run
        .exec_stats
        .group_stats
        .iter()
        .map(|g| (g.n, g.alpha(), g.len()))
        .collect();
    Fig11Summary {
        total_groups: grouped + singleton,
        groups_gt1: triples.iter().filter(|(n, _, _)| *n > 1).count(),
        unique_urls: urls.len(),
        triples,
    }
}

/// Renders the Fig. 11 summary.
pub fn print_fig11(s: &Fig11Summary) {
    println!(
        "groups={} groups(n>1)={} unique_urls={}",
        s.total_groups, s.groups_gt1, s.unique_urls
    );
    let min_alpha = s
        .triples
        .iter()
        .map(|(_, a, _)| *a)
        .fold(f64::INFINITY, f64::min);
    println!("min alpha over grouped executions: {min_alpha:.4}");
    println!("{:>6} {:>8} {:>10}", "n", "alpha", "len");
    let mut sorted = s.triples.clone();
    // Sort on the full triple: the collection order of the triples is
    // scheduling-dependent under a parallel audit, so ties on `n` must
    // not decide the printed order.
    sorted.sort_by(|a, b| b.0.cmp(&a.0).then(b.2.cmp(&a.2)).then(b.1.total_cmp(&a.1)));
    for (n, alpha, len) in sorted.iter().take(20) {
        println!("{n:>6} {alpha:>8.4} {len:>10}");
    }
}

/// One arm of the §5.2 sources-of-acceleration ablation.
#[derive(Debug)]
pub struct AblationArm {
    /// Arm label.
    pub label: &'static str,
    /// Audit wall time.
    pub wall: Duration,
    /// SELECTs answered from the dedup cache.
    pub deduped: u64,
    /// SELECTs actually issued.
    pub issued: u64,
    /// VM dispatches the trace represents (Σ `n_c × ℓ_c`).
    pub vm_dispatch_total: u64,
    /// VM dispatches executed after grouping collapsed the univalent
    /// share.
    pub vm_dispatch_executed: u64,
}

/// Experiment E7: {SIMD on/off} × {query dedup on/off} on the wiki
/// workload, plus the stack-engine baseline of the best arm (the
/// engine axis: same grouping, different bytecode ISA — note ℓ_c
/// differs between ISAs, so dispatch counts are comparable within an
/// engine, not across).
pub fn ablation(scale: f64, seed: u64) -> Vec<AblationArm> {
    let work = AppWorkload {
        app: orochi_apps::wiki::app(),
        workload: wiki::generate(&wiki::Params::scaled(scale), seed),
        seed_sql: Vec::new(),
    };
    let served = serve(&work, &ServeOptions::default());
    let arms = [
        ("grouped+dedup", true, true, VmEngine::Register),
        ("grouped", true, false, VmEngine::Register),
        ("scalar+dedup", false, true, VmEngine::Register),
        ("scalar", false, false, VmEngine::Register),
        ("grouped+dedup/stack", true, true, VmEngine::Stack),
    ];
    arms.iter()
        .map(|(label, grouped, dedup, engine)| {
            let opts = AuditOptions {
                grouped: *grouped,
                dedup: *dedup,
                threads: 1,
                engine: *engine,
            };
            let run = run_audit_with(&served.bundle, &work, &opts)
                .unwrap_or_else(|r| panic!("{label}: audit rejected: {r}"));
            AblationArm {
                label,
                wall: run.wall,
                deduped: run.outcome.stats.db_queries_deduped,
                issued: run.outcome.stats.db_queries_issued,
                vm_dispatch_total: run.outcome.stats.vm_dispatch_total,
                vm_dispatch_executed: run.outcome.stats.vm_dispatch_executed,
            }
        })
        .collect()
}

/// One tampering variant's outcome in the shop experiment.
#[derive(Debug)]
pub struct ShopTamperRow {
    /// Variant label (`forged_cart_total`, `stale_inventory_read`,
    /// `replayed_kv_write`).
    pub variant: &'static str,
    /// Rejected by both the sequential and the pooled audit.
    pub rejected: bool,
    /// The rejection diagnostic (identical at both thread counts).
    pub diagnostic: String,
    /// Wall time of the (rejecting) pooled audit.
    pub wall: Duration,
}

/// The shop experiment's results: honest audit walls, the
/// register/KV-path share, report-assembly timings, and one row per
/// tampering variant.
#[derive(Debug)]
pub struct ShopReport {
    /// Requests in the audited window.
    pub requests: u64,
    /// Operations recorded in register or KV sub-logs / all operations.
    pub reg_kv_share: f64,
    /// Worker threads for the pooled arms.
    pub threads: usize,
    /// Honest sequential audit wall time.
    pub honest_seq_wall: Duration,
    /// Honest pooled audit wall time.
    pub honest_par_wall: Duration,
    /// Report assembly (sub-log stitch), sequential.
    pub assembly_seq: Duration,
    /// Report assembly sharded by object across `threads` workers.
    pub assembly_par: Duration,
    /// Tampering variants, every one rejected identically at 1 and
    /// `threads` workers.
    pub tampers: Vec<ShopTamperRow>,
}

impl ShopReport {
    /// Sequential / pooled honest-audit wall ratio.
    pub fn audit_speedup(&self) -> f64 {
        self.honest_seq_wall.as_secs_f64() / self.honest_par_wall.as_secs_f64().max(1e-9)
    }

    /// Sequential / sharded report-assembly wall ratio.
    pub fn assembly_speedup(&self) -> f64 {
        self.assembly_seq.as_secs_f64() / self.assembly_par.as_secs_f64().max(1e-9)
    }
}

/// Applies one named tampering variant to a served shop bundle.
fn apply_shop_tamper(bundle: &mut AuditBundle, variant: &str) -> bool {
    match variant {
        "forged_cart_total" => tamper::forge_cart_total(&mut bundle.trace),
        "stale_inventory_read" => tamper::reorder_kv_read(&mut bundle.reports, "inv:"),
        "replayed_kv_write" => tamper::replay_kv_write(&mut bundle.reports, "inv:"),
        other => panic!("unknown shop tamper {other:?}"),
    }
}

/// Experiment E9: the shop workload end-to-end — honest audit
/// (sequential and pooled, min-of-two like E8), the register/KV-path
/// share the workload exists to provide, the sequential-vs-sharded
/// report assembly comparison, and one rejected audit per tampering
/// variant with the sequential and pooled diagnostics required to
/// agree.
///
/// # Panics
///
/// Panics if the honest audit rejects, a tampering variant finds no
/// site to tamper with, a variant is *accepted*, or the sequential and
/// pooled audits disagree — all of which mean the system (or the
/// workload) broke.
pub fn shop_experiment(scale: f64, seed: u64, threads: usize) -> ShopReport {
    let work = shop_workload(scale, seed);
    let (server, _wall) = serve_drained(&work, &ServeOptions::default());
    let requests = server.requests_handled();
    // Report assembly: min-of-3 alternating arms on the drained
    // recorder, then consume the server through the sharded stitch.
    let recorder = server.recorder();
    let time_stitch = |n: usize| {
        let t0 = Instant::now();
        let logs = recorder.stitch_with(n);
        let elapsed = t0.elapsed();
        (logs, elapsed)
    };
    // Each arm is a batch of stitches (min over 3 alternating batches):
    // a single CI-scale stitch is sub-millisecond, where timer and
    // scheduler noise would swamp the ratio the CI job guards.
    let batch = 8;
    let mut assembly_seq = Duration::MAX;
    let mut assembly_par = Duration::MAX;
    for _ in 0..3 {
        let mut seq_t = Duration::ZERO;
        let mut par_t = Duration::ZERO;
        for _ in 0..batch {
            let (seq_logs, t) = time_stitch(1);
            seq_t += t;
            let (par_logs, t) = time_stitch(threads);
            par_t += t;
            assert_eq!(
                seq_logs, par_logs,
                "sharded report assembly diverged from sequential"
            );
        }
        assembly_seq = assembly_seq.min(seq_t / batch);
        assembly_par = assembly_par.min(par_t / batch);
    }
    let bundle = server.into_bundle_with(threads);

    let mut reg_kv = 0usize;
    let mut total_ops = 0usize;
    for (_, name, log) in bundle.reports.op_logs.iter() {
        total_ops += log.len();
        if name.as_str().starts_with("reg:") || name.as_str().starts_with("kv:") {
            reg_kv += log.len();
        }
    }

    let audit_at = |bundle: &AuditBundle, threads: usize| {
        run_audit_with(
            bundle,
            &work,
            &AuditOptions {
                threads,
                ..Default::default()
            },
        )
    };
    let min_of_two = |threads: usize, arm: &str| {
        let a = audit_at(&bundle, threads)
            .unwrap_or_else(|r| panic!("shop: honest {arm} audit rejected: {r}"));
        let b = audit_at(&bundle, threads)
            .unwrap_or_else(|r| panic!("shop: honest {arm} audit rejected: {r}"));
        if a.wall <= b.wall {
            a
        } else {
            b
        }
    };
    let seq = min_of_two(1, "sequential");
    let par = min_of_two(threads, "pooled");
    let (s, p) = (&seq.outcome.stats, &par.outcome.stats);
    assert_eq!(
        (s.requests_reexecuted, s.register_ops, s.kv_ops, s.db_txns),
        (p.requests_reexecuted, p.register_ops, p.kv_ops, p.db_txns),
        "shop: pooled audit drifted from the sequential counters"
    );

    let mut tampers = Vec::new();
    for variant in [
        "forged_cart_total",
        "stale_inventory_read",
        "replayed_kv_write",
    ] {
        // Each variant tampers a fresh serve (of the same workload the
        // verifier holds) so mutations don't stack.
        let mut served = serve(&work, &ServeOptions::default());
        assert!(
            apply_shop_tamper(&mut served.bundle, variant),
            "shop workload offers no site for {variant} — grow the workload"
        );
        let seq_verdict = audit_at(&served.bundle, 1);
        let t0 = Instant::now();
        let par_verdict = audit_at(&served.bundle, threads);
        let wall = t0.elapsed();
        let (seq_err, par_err) = match (seq_verdict, par_verdict) {
            (Err(s), Err(p)) => (s, p),
            (s, p) => panic!(
                "shop: {variant} must be rejected at both thread counts, got {:?} / {:?}",
                s.map(|_| "accept").map_err(|e| e.to_string()),
                p.map(|_| "accept").map_err(|e| e.to_string()),
            ),
        };
        assert_eq!(
            seq_err.to_string(),
            par_err.to_string(),
            "shop: {variant} diagnostics diverged between thread counts"
        );
        tampers.push(ShopTamperRow {
            variant,
            rejected: true,
            diagnostic: seq_err.to_string(),
            wall,
        });
    }

    ShopReport {
        requests,
        reg_kv_share: if total_ops == 0 {
            0.0
        } else {
            reg_kv as f64 / total_ops as f64
        },
        threads,
        honest_seq_wall: seq.wall,
        honest_par_wall: par.wall,
        assembly_seq,
        assembly_par,
        tampers,
    }
}

/// Renders the shop experiment report.
pub fn print_shop(r: &ShopReport) {
    println!(
        "requests={} reg/kv share={:.1}% threads={}",
        r.requests,
        r.reg_kv_share * 100.0,
        r.threads
    );
    println!(
        "honest audit: seq {:.3}s, pooled {:.3}s ({:.2}x)",
        r.honest_seq_wall.as_secs_f64(),
        r.honest_par_wall.as_secs_f64(),
        r.audit_speedup(),
    );
    println!(
        "report assembly: seq {:.2}ms, sharded {:.2}ms ({:.2}x)",
        r.assembly_seq.as_secs_f64() * 1000.0,
        r.assembly_par.as_secs_f64() * 1000.0,
        r.assembly_speedup(),
    );
    for t in &r.tampers {
        println!(
            "tamper {:<22} rejected={} in {:.3}s: {}",
            t.variant,
            t.rejected,
            t.wall.as_secs_f64(),
            t.diagnostic
        );
    }
}

/// One arm of the streaming-equivalence experiment.
#[derive(Debug)]
pub struct StreamingRow {
    /// Variant label (`honest` or a shop tamper name).
    pub variant: &'static str,
    /// Whether every arm accepted.
    pub accepted: bool,
    /// The shared diagnostic (`accept` or the identical rejection).
    pub diagnostic: String,
    /// Batch (cold, pooled) audit wall time.
    pub batch_wall: Duration,
    /// Streaming (pooled) audit wall time.
    pub streaming_wall: Duration,
}

/// Experiment E11: streaming-epoch audit equivalence. Serves the shop
/// workload honestly and under every tampering variant, spills each
/// bundle to a segmented store, and audits it three ways — batch cold
/// (pooled), streaming sequential, streaming pooled at `epoch_events`
/// per epoch. Verdicts and diagnostics must be byte-identical across
/// all three arms, and the accepting arms must agree on every
/// determinism-relevant counter.
///
/// # Panics
///
/// Panics if any arm disagrees with the others, a tamper variant finds
/// no site, or a tampered run is accepted.
pub fn streaming_equivalence(
    scale: f64,
    seed: u64,
    threads: usize,
    epoch_events: usize,
) -> Vec<StreamingRow> {
    let work = shop_workload(scale, seed);
    let seq_opts = AuditOptions {
        threads: 1,
        ..Default::default()
    };
    let par_opts = AuditOptions {
        threads: threads.max(1),
        ..Default::default()
    };
    let mut rows = Vec::new();
    for variant in [
        "honest",
        "forged_cart_total",
        "stale_inventory_read",
        "replayed_kv_write",
    ] {
        let mut served = serve(&work, &ServeOptions::default());
        if variant != "honest" {
            assert!(
                apply_shop_tamper(&mut served.bundle, variant),
                "shop workload offers no site for {variant} — grow the workload"
            );
        }
        let dir = std::env::temp_dir().join(format!(
            "orochi-streamdiff-{variant}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        spill_bundle(&served.bundle, &dir, 64 * 1024).expect("spill for streaming equivalence");
        drop(served);
        let reader = TraceStoreReader::open(&dir).expect("reopen spilled store");
        let t0 = Instant::now();
        let batch = run_audit_cold(&reader, &work, &par_opts);
        let batch_wall = t0.elapsed();
        let stream_seq = run_audit_streaming(&reader, &work, &seq_opts, epoch_events);
        let t0 = Instant::now();
        let stream_par = run_audit_streaming(&reader, &work, &par_opts, epoch_events);
        let streaming_wall = t0.elapsed();
        let row = match (batch, stream_seq, stream_par) {
            (Ok(b), Ok(s1), Ok(sp)) => {
                assert_eq!(
                    variant, "honest",
                    "tampered {variant} run accepted by every arm"
                );
                for (arm, s) in [("sequential", &s1), ("pooled", &sp)] {
                    assert_eq!(
                        (
                            b.outcome.stats.requests_reexecuted,
                            b.outcome.stats.groups_executed,
                            b.outcome.stats.register_ops,
                            b.outcome.stats.kv_ops,
                            b.outcome.stats.db_txns,
                            b.outcome.stats.db_queries,
                        ),
                        (
                            s.outcome.stats.requests_reexecuted,
                            s.outcome.stats.groups_executed,
                            s.outcome.stats.register_ops,
                            s.outcome.stats.kv_ops,
                            s.outcome.stats.db_txns,
                            s.outcome.stats.db_queries,
                        ),
                        "streaming {arm} audit drifted from the batch counters"
                    );
                }
                StreamingRow {
                    variant,
                    accepted: true,
                    diagnostic: "accept".to_string(),
                    batch_wall,
                    streaming_wall,
                }
            }
            (Err(b), Err(s1), Err(sp)) => {
                let (b, s1, sp) = (b.to_string(), s1.to_string(), sp.to_string());
                assert_eq!(b, s1, "{variant}: streaming sequential diagnostic diverged");
                assert_eq!(b, sp, "{variant}: streaming pooled diagnostic diverged");
                StreamingRow {
                    variant,
                    accepted: false,
                    diagnostic: b,
                    batch_wall,
                    streaming_wall,
                }
            }
            (b, s1, sp) => panic!(
                "{variant}: arms disagree on the verdict: batch {:?}, streaming-seq {:?}, \
                 streaming-par {:?}",
                b.map(|_| "accept").map_err(|e| e.to_string()),
                s1.map(|_| "accept").map_err(|e| e.to_string()),
                sp.map(|_| "accept").map_err(|e| e.to_string()),
            ),
        };
        rows.push(row);
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

/// Renders the streaming-equivalence rows.
pub fn print_streaming(rows: &[StreamingRow]) {
    for r in rows {
        println!(
            "{:<22} accepted={} batch {:.3}s streaming {:.3}s: {}",
            r.variant,
            r.accepted,
            r.batch_wall.as_secs_f64(),
            r.streaming_wall.as_secs_f64(),
            r.diagnostic
        );
    }
}

/// Builds the mixed four-app workload at `scale`: all tenants behind
/// one front-end (`orochi_apps::mixed`), requests interleaved by
/// `orochi_workload::mixed`. The shared skew knob applies to every
/// tenant.
pub fn mixed_workload(scale: f64, seed: u64) -> AppWorkload {
    let params = mixed::Params::scaled(scale).with_skew(&skew::from_env());
    AppWorkload {
        app: orochi_apps::mixed::app(),
        workload: mixed::generate(&params, seed),
        seed_sql: mixed::seed_sql(&params),
    }
}

/// A mutant the campaign could not catch — or caught with diverging
/// diagnostics. Everything needed to replay it is here verbatim.
#[derive(Debug, Clone)]
pub struct CampaignSurvivor {
    /// The plan seed that produced the mutant.
    pub seed: u64,
    /// The sites the plan mutated.
    pub sites: Vec<MutationSite>,
    /// Verdict of the sequential batch audit (`accept` or the
    /// rejection diagnostic).
    pub batch_seq: String,
    /// Verdict of the pooled batch audit.
    pub batch_par: String,
    /// Verdict of the pooled streaming audit.
    pub streaming: String,
}

/// The adversarial campaign's results.
#[derive(Debug)]
pub struct CampaignReport {
    /// Requests in the honest audited window.
    pub requests: u64,
    /// Mutated runs attempted.
    pub campaigns: usize,
    /// Individual mutation sites applied across all runs.
    pub sites: usize,
    /// Mutated runs rejected with byte-identical diagnostics on every
    /// arm.
    pub caught: usize,
    /// Per-operator application counts (deterministic order).
    pub operators: BTreeMap<&'static str, usize>,
    /// Mutants that escaped or produced diverging diagnostics.
    pub survivors: Vec<CampaignSurvivor>,
    /// The honest control accepted on every arm (batch cold 1/N and
    /// streaming, through the trace store).
    pub honest_ok: bool,
    /// Worker threads for the pooled arms.
    pub threads: usize,
    /// Wall time of the mutate-and-audit loop. The loop is CPU-bound
    /// in one process, so this is the report's CPU-second proxy for
    /// the mutations-caught-per-CPU-second figure.
    pub fuzz_wall: Duration,
}

impl CampaignReport {
    /// Caught mutants / attempted mutants.
    pub fn catch_rate(&self) -> f64 {
        if self.campaigns == 0 {
            return 1.0;
        }
        self.caught as f64 / self.campaigns as f64
    }

    /// Mutations caught per CPU-second of fuzzing (wall proxy).
    pub fn caught_per_cpu_s(&self) -> f64 {
        self.caught as f64 / self.fuzz_wall.as_secs_f64().max(1e-9)
    }
}

/// The verdict of one audit arm as a comparable string.
fn campaign_verdict<T>(run: &Result<T, orochi_core::Rejection>) -> String {
    match run {
        Ok(_) => "accept".to_string(),
        Err(r) => format!("reject:{r}"),
    }
}

/// Experiment E12: the adversarial campaign. Serves the mixed four-app
/// workload once, spills it to a segmented trace store, and verifies
/// the honest control accepts through every path (batch cold at 1 and
/// `threads` workers, streaming at `threads`). Then, for `campaigns`
/// seeded runs, clones the honest trace+reports, applies a
/// [`MutationPlan`] of `k` operators on distinct objects (`k == 0`
/// cycles 1..=3), and audits the mutant three ways — batch sequential,
/// batch pooled, streaming pooled at `epoch_events` per epoch. A
/// mutant counts as *caught* only if all three arms reject with
/// byte-identical diagnostics; anything else lands in `survivors`
/// verbatim (seed, operator, site) so an escape is a reproducible
/// one-liner. The experiment records, it does not panic: the CI guard
/// on the `campaign` bench row enforces `catch_rate == 1.0`.
///
/// # Panics
///
/// Panics only on harness misuse: a plan that finds no site to mutate
/// (the workload is too small) or an honest serve that cannot spill.
pub fn campaign(
    scale: f64,
    seed: u64,
    campaigns: usize,
    k: usize,
    threads: usize,
    epoch_events: usize,
) -> CampaignReport {
    let work = mixed_workload(scale, seed);
    let threads = threads.max(1);
    let served = serve(&work, &ServeOptions::default());
    let requests = served.requests;
    let honest_trace = served.bundle.trace.clone();
    let honest_reports = served.bundle.reports.clone();

    // Honest control through the trace store: spill once, audit batch
    // cold at both thread counts and streaming; all must accept and
    // agree on the re-execution counters.
    let dir = std::env::temp_dir().join(format!("orochi-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    spill_bundle(&served.bundle, &dir, 64 * 1024).expect("spill campaign control");
    drop(served);
    let reader = TraceStoreReader::open(&dir).expect("reopen campaign store");
    let seq_opts = AuditOptions {
        threads: 1,
        ..Default::default()
    };
    let par_opts = AuditOptions {
        threads,
        ..Default::default()
    };
    let control = [
        run_audit_cold(&reader, &work, &seq_opts),
        run_audit_cold(&reader, &work, &par_opts),
        run_audit_streaming(&reader, &work, &par_opts, epoch_events),
    ];
    let honest_ok = control.iter().all(|r| r.is_ok())
        && control
            .iter()
            .flatten()
            .map(|r| r.outcome.stats.requests_reexecuted)
            .collect::<HashSet<_>>()
            .len()
            == 1;
    drop(reader);
    let _ = std::fs::remove_dir_all(&dir);

    // The mutation loop shares one compiled script table; executors
    // are rebuilt per arm (they carry per-audit caches and stats).
    let scripts = work.app.compile().expect("application compiles");
    let engine = vm_engine_from_env();
    let executors = |n: usize| -> Vec<AccPhpExecutor> {
        (0..n)
            .map(|_| {
                let mut e = AccPhpExecutor::new(scripts.clone());
                e.engine = engine;
                e
            })
            .collect()
    };
    let mut config = work.audit_config();
    config.query_dedup = true;

    let mut caught = 0usize;
    let mut sites_applied = 0usize;
    let mut operators: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut survivors = Vec::new();
    let t0 = Instant::now();
    for c in 0..campaigns {
        let plan_seed = seed
            .wrapping_add(c as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plan_k = if k == 0 { 1 + c % 3 } else { k };
        let mut trace = honest_trace.clone();
        let mut reports = honest_reports.clone();
        let plan = MutationPlan {
            seed: plan_seed,
            k: plan_k,
        };
        let sites = plan.apply(&mut trace, &mut reports);
        assert!(
            !sites.is_empty(),
            "campaign {c}: no mutable site at scale {scale} — grow the workload"
        );
        sites_applied += sites.len();
        for s in &sites {
            *operators.entry(s.operator).or_insert(0) += 1;
        }
        let batch_seq = campaign_verdict(&audit(&trace, &reports, &mut executors(1)[0], &config));
        let batch_par = campaign_verdict(&audit_parallel(
            &trace,
            &reports,
            &mut executors(threads),
            &config,
        ));
        let streaming = campaign_verdict(&audit_streaming_source(
            &trace,
            &reports,
            &mut executors(threads),
            &config,
            epoch_events,
        ));
        let rejected = batch_seq.starts_with("reject:");
        if rejected && batch_seq == batch_par && batch_seq == streaming {
            caught += 1;
        } else {
            survivors.push(CampaignSurvivor {
                seed: plan_seed,
                sites,
                batch_seq,
                batch_par,
                streaming,
            });
        }
    }
    let fuzz_wall = t0.elapsed();

    CampaignReport {
        requests,
        campaigns,
        sites: sites_applied,
        caught,
        operators,
        survivors,
        honest_ok,
        threads,
        fuzz_wall,
    }
}

/// Renders the campaign report, any survivor verbatim.
pub fn print_campaign(r: &CampaignReport) {
    println!(
        "campaigns={} sites={} caught={} catch_rate={:.3} honest_ok={} threads={} \
         caught/cpu-s={:.1}",
        r.campaigns,
        r.sites,
        r.caught,
        r.catch_rate(),
        r.honest_ok,
        r.threads,
        r.caught_per_cpu_s()
    );
    let ops: Vec<String> = r
        .operators
        .iter()
        .map(|(name, n)| format!("{name}:{n}"))
        .collect();
    println!("operators [{}]: {}", r.operators.len(), ops.join(" "));
    for s in &r.survivors {
        println!(
            "SURVIVOR seed={:#x} batch_seq={} batch_par={} streaming={}",
            s.seed, s.batch_seq, s.batch_par, s.streaming
        );
        for site in &s.sites {
            println!("  {site}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_rows_have_sane_shapes() {
        let rows = fig8_table(0.01, 7);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.audit_speedup > 0.0,
                "{}: speedup {}",
                r.app,
                r.audit_speedup
            );
            assert!(r.orochi_report_bytes >= r.baseline_report_bytes);
            assert!(r.db_temp_overhead >= 0.99, "{}", r.db_temp_overhead);
            assert!((r.db_permanent_overhead - 1.0).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn fig11_summary_shapes() {
        let s = fig11_groups(0.02, 3, 1);
        assert!(s.total_groups > 0);
        assert!(s.groups_gt1 > 0, "Zipf traffic must produce real groups");
        assert!(s.unique_urls > 0);
        for (n, alpha, len) in &s.triples {
            assert!(*n >= 1);
            assert!((0.0..=1.0).contains(alpha));
            assert!(*len > 0);
        }
    }

    #[test]
    fn parallel_speedup_rows_have_sane_shapes() {
        // parallel_speedup itself asserts the parallel counters match
        // the sequential ones; this exercises it at CI scale.
        let rows = parallel_speedup(0.01, 7, 2);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.threads, 2);
            assert!(r.seq_wall.as_nanos() > 0);
            assert!(r.par_wall.as_nanos() > 0);
            assert!(r.speedup() > 0.0);
        }
    }

    #[test]
    fn saturation_rows_have_sane_shapes() {
        let rows = saturation(0.01, 7, &[1, 2], 4, 60);
        assert_eq!(rows.len(), 8, "4 apps x 2 worker counts");
        for r in &rows {
            assert!(r.peak_sustained > 0.0, "{}: no capacity measured", r.app);
            assert!(r.knee_rate > 0.0);
            assert!(!r.points.is_empty());
            for p in &r.points {
                assert!(p.offered_rate > 0.0);
                assert!(p.throughput > 0.0);
                assert!(p.requests as usize <= 60);
                assert_eq!(p.requests + p.shed, r.points[0].requests + r.points[0].shed);
            }
        }
    }

    #[test]
    fn serve_thread_resolution() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(crate::driver::resolve_serve_threads(0), hw);
        // Serving workers may oversubscribe (they block on the DB
        // lock), so explicit requests are honored, not clamped.
        assert_eq!(crate::driver::resolve_serve_threads(64), 64);
    }

    #[test]
    fn audit_thread_resolution_clamps() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(crate::driver::resolve_audit_threads(0), hw);
        assert_eq!(crate::driver::resolve_audit_threads(1), 1);
        assert_eq!(crate::driver::resolve_audit_threads(usize::MAX), hw);
    }

    #[test]
    fn streaming_equivalence_rows() {
        let rows = streaming_equivalence(0.01, 7, 2, 16);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].accepted, "honest run must accept");
        for r in &rows[1..] {
            assert!(!r.accepted, "{} must reject", r.variant);
            assert!(!r.diagnostic.is_empty());
        }
    }

    #[test]
    fn campaign_catches_every_mutant_at_test_scale() {
        let r = campaign(0.01, 7, 6, 0, 2, 64);
        assert!(r.honest_ok, "honest mixed control must accept on every arm");
        assert_eq!(r.campaigns, 6);
        assert_eq!(r.caught, 6, "survivors: {:?}", r.survivors);
        assert!(r.sites >= 6, "k cycles 1..=3, so sites >= campaigns");
        assert!(r.survivors.is_empty());
        assert!(!r.operators.is_empty());
        assert!((r.catch_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn mixed_workload_serves_all_tenants() {
        let work = mixed_workload(0.01, 3);
        assert_eq!(work.app.name, "mixed");
        for t in ["/wiki/", "/forum/", "/hotcrp/", "/shop/"] {
            assert!(
                work.workload.requests.iter().any(|r| r.path.starts_with(t)),
                "missing tenant {t}"
            );
        }
        assert!(!work.seed_sql.is_empty(), "forum+shop seed SQL expected");
    }

    #[test]
    fn ablation_runs_all_arms() {
        let arms = ablation(0.01, 5);
        assert_eq!(arms.len(), 5);
        // Dedup arms must answer some SELECTs from cache.
        assert!(arms[0].deduped > 0);
        // No-dedup arms must not.
        assert_eq!(arms[1].deduped, 0);
        // Grouping must execute fewer dispatches than it represents;
        // the scalar arms run everything.
        assert!(arms[0].vm_dispatch_executed < arms[0].vm_dispatch_total);
        assert_eq!(arms[3].vm_dispatch_executed, arms[3].vm_dispatch_total);
        // The stack baseline groups just as well (its ℓ_c differs, so
        // only the ratio is comparable).
        assert!(arms[4].vm_dispatch_executed < arms[4].vm_dispatch_total);
    }
}
