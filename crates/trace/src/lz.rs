//! A small, dependency-free LZ77 codec for segment payloads.
//!
//! The segment dictionary (see [`crate::segment`]) dedups *exact*
//! string repeats, but real workload bodies are templated HTML — every
//! page unique, yet overwhelmingly similar to earlier pages rendered
//! from the same template. LZ77 with a whole-payload window turns that
//! cross-body redundancy into short back-references, which is what gets
//! the store under its bytes-per-event budget.
//!
//! Encoded form: `varint uncompressed_len`, then a token stream; each
//! token is `length-prefixed literal bytes` + `varint match_len` +
//! (`varint match_dist` when `match_len > 0`). `match_len == 0`
//! terminates the stream. Matches may overlap their own output (the
//! classic RLE trick). [`decompress`] validates every length and
//! distance and the final size, so hostile inputs fail cleanly instead
//! of overrunning.

use orochi_common::codec::{Decoder, Encoder};

/// Matches shorter than this cost more to encode than to store literal.
const MIN_MATCH: usize = 4;
/// Hash-table size for the 4-byte match index.
const HASH_BITS: u32 = 15;
/// Chain-walk budget per position: compression effort vs speed.
const MAX_CHAIN: usize = 128;
/// Upper bound accepted for a declared uncompressed length (hostile
/// inputs could otherwise demand gigabytes before any data is read).
const MAX_OUTPUT: usize = 1 << 31;

fn hash4(w: &[u8]) -> usize {
    let v = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain index over every byte position seen so far.
struct Matcher<'a> {
    input: &'a [u8],
    head: Vec<u32>,
    prev: Vec<u32>,
}

impl<'a> Matcher<'a> {
    fn new(input: &'a [u8]) -> Self {
        Matcher {
            input,
            head: vec![u32::MAX; 1 << HASH_BITS],
            prev: vec![u32::MAX; input.len()],
        }
    }

    /// Records position `i` so later positions can match against it.
    fn insert(&mut self, i: usize) {
        let h = hash4(&self.input[i..]);
        self.prev[i] = self.head[h];
        self.head[h] = i as u32;
    }

    /// Longest earlier occurrence of the bytes at `i`, as (len, dist).
    fn longest(&self, i: usize) -> (usize, usize) {
        let input = self.input;
        let max = input.len() - i;
        let (mut best_len, mut best_dist) = (0usize, 0usize);
        let mut cand = self.head[hash4(&input[i..])];
        let mut steps = 0;
        while cand != u32::MAX && steps < MAX_CHAIN {
            let c = cand as usize;
            let mut l = 0;
            while l < max && input[c + l] == input[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - c;
            }
            cand = self.prev[c];
            steps += 1;
        }
        (best_len, best_dist)
    }
}

/// Compresses `input`; always succeeds (worst case a few bytes of
/// framing over incompressible data).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut enc = Encoder::new();
    enc.u64(n as u64);

    let mut m = Matcher::new(input);
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= n {
        let (mut best_len, mut best_dist) = m.longest(i);
        if best_len < MIN_MATCH {
            m.insert(i);
            i += 1;
            continue;
        }
        // Lazy step: if the position one byte later starts a strictly
        // longer match, demote this byte to a literal and retry there.
        loop {
            m.insert(i);
            if i + 1 + MIN_MATCH > n {
                break;
            }
            let (len, dist) = m.longest(i + 1);
            if len > best_len {
                i += 1;
                best_len = len;
                best_dist = dist;
            } else {
                break;
            }
        }
        enc.bytes(&input[lit_start..i]);
        enc.u64(best_len as u64);
        enc.u64(best_dist as u64);
        // Index every position the match covers so later data can
        // reference into it (i itself was inserted above).
        let end = i + best_len;
        i += 1;
        while i < end && i + MIN_MATCH <= n {
            m.insert(i);
            i += 1;
        }
        i = end;
        lit_start = i;
    }
    enc.bytes(&input[lit_start..]);
    enc.u64(0); // terminator
    enc.into_bytes()
}

/// Decompresses `bytes`, validating lengths, distances, and the final
/// size. The error is a stable diagnostic fragment.
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>, &'static str> {
    let mut dec = Decoder::new(bytes);
    let err = "payload decompression failed";
    let out_len = dec.u64().map_err(|_| err)? as usize;
    if out_len > MAX_OUTPUT {
        return Err(err);
    }
    let mut out: Vec<u8> = Vec::with_capacity(out_len.min(1 << 22));
    loop {
        let lit = dec.bytes().map_err(|_| err)?;
        if out.len() + lit.len() > out_len {
            return Err(err);
        }
        out.extend_from_slice(&lit);
        let match_len = dec.u64().map_err(|_| err)? as usize;
        if match_len == 0 {
            break;
        }
        let dist = dec.u64().map_err(|_| err)? as usize;
        if dist == 0 || dist > out.len() || out.len() + match_len > out_len {
            return Err(err);
        }
        let start = out.len() - dist;
        for k in 0..match_len {
            // Overlapping copies are legal and must go byte-by-byte.
            let b = out[start + k];
            out.push(b);
        }
    }
    if !dec.is_done() || out.len() != out_len {
        return Err(err);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"abc");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(b"the quick brown fox jumps over the lazy dog");
        // Pseudo-random bytes (incompressible path).
        let mut x = 0x9e3779b97f4a7c15u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&noise);
    }

    #[test]
    fn templated_text_compresses_hard() {
        let mut doc = Vec::new();
        for i in 0..200 {
            doc.extend_from_slice(
                format!(
                    "<html><head><title>product {i}</title></head>\
                     <body><h1>product {i}</h1><p>in stock: yes</p>\
                     <p>price: {}</p></body></html>\n",
                    i * 3
                )
                .as_bytes(),
            );
        }
        let packed = compress(&doc);
        assert!(
            packed.len() * 6 < doc.len(),
            "expected >6x on templated text, got {} -> {}",
            doc.len(),
            packed.len()
        );
        assert_eq!(decompress(&packed).unwrap(), doc);
    }

    #[test]
    fn overlapping_match_roundtrips() {
        // Period-1 and period-3 repetitions force overlapping copies.
        let data = [b"x".repeat(100), b"abc".repeat(40)].concat();
        roundtrip(&data);
    }

    #[test]
    fn hostile_inputs_are_rejected() {
        // Declared length never arrives.
        let mut enc = Encoder::new();
        enc.u64(100);
        enc.bytes(b"ab");
        enc.u64(0);
        assert!(decompress(&enc.into_bytes()).is_err());
        // Match distance beyond the output produced so far.
        let mut enc = Encoder::new();
        enc.u64(50);
        enc.bytes(b"ab");
        enc.u64(8);
        enc.u64(99);
        enc.u64(0);
        assert!(decompress(&enc.into_bytes()).is_err());
        // Truncated stream.
        let good = compress(b"hello hello hello hello hello");
        assert!(decompress(&good[..good.len() - 2]).is_err());
        // Trailing garbage.
        let mut padded = compress(b"abc").to_vec();
        padded.push(7);
        assert!(decompress(&padded).is_err());
    }
}
