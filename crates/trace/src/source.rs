//! [`TraceSource`]: one ingestion API for every place a trace can live.
//!
//! The audit historically consumed a fully materialized in-memory
//! [`Trace`]. With the segmented binary store (see [`crate::store`]) a
//! trace may instead live in sealed on-disk segments that are decoded
//! one at a time. `TraceSource` abstracts over both: a pull-based,
//! ordered event stream plus an exact event count for preallocation.
//! [`BalancedTrace::from_source`] is the single funnel that turns any
//! source into the audit's materialized replay — batch-from-RAM and
//! replay-from-cold-storage share every instruction downstream of it.
//!
//! The contract:
//!
//! * `stream_events` yields events **in trace (collector) order**,
//!   exactly `event_count()` of them unless the sink stops early;
//! * the stream is repeatable — a source may be streamed any number of
//!   times and yields the same events each time;
//! * storage-level failures (I/O, corrupt segments) surface as
//!   [`TraceStoreError`]; *semantic* failures (an unbalanced trace) are
//!   not the source's business and are reported by the consumer.

use crate::record::{BalanceError, BalancedBuilder, BalancedTrace, Event, Trace};
use std::fmt;

/// A storage-level failure while reading a persisted trace.
///
/// Carries the offending path and a stable human-readable detail; the
/// corruption tests assert on these strings, so treat them as part of
/// the API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStoreError {
    /// The filesystem said no (open/read/write/create failures).
    Io {
        /// Path of the file or directory involved.
        path: String,
        /// The OS error rendered as text.
        detail: String,
    },
    /// A segment or blob failed structural validation.
    Corrupt {
        /// Path of the offending file.
        path: String,
        /// What check failed (stable diagnostic).
        detail: String,
    },
}

impl TraceStoreError {
    /// Builds an [`TraceStoreError::Io`] from an OS error.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        TraceStoreError::Io {
            path: path.into(),
            detail: err.to_string(),
        }
    }

    /// Builds a [`TraceStoreError::Corrupt`] with a stable detail string.
    pub fn corrupt(path: impl Into<String>, detail: impl Into<String>) -> Self {
        TraceStoreError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for TraceStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStoreError::Io { path, detail } => {
                write!(f, "trace store I/O error at {path}: {detail}")
            }
            TraceStoreError::Corrupt { path, detail } => {
                write!(f, "corrupt trace store file {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceStoreError {}

/// Why replaying a [`TraceSource`] failed to produce a [`BalancedTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceReadError {
    /// The events streamed fine but violate the §3 balance conditions.
    Balance(BalanceError),
    /// The storage layer failed before the stream finished.
    Store(TraceStoreError),
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Balance(e) => write!(f, "{e}"),
            TraceReadError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<BalanceError> for TraceReadError {
    fn from(e: BalanceError) -> Self {
        TraceReadError::Balance(e)
    }
}

impl From<TraceStoreError> for TraceReadError {
    fn from(e: TraceStoreError) -> Self {
        TraceReadError::Store(e)
    }
}

/// A pull-based, ordered stream of trace events — the audit's one
/// ingestion API.
///
/// Implemented by the in-memory [`Trace`], by the already-materialized
/// [`BalancedTrace`] (so repeated audits of one replay are free), and by
/// [`crate::store::TraceStoreReader`], which decodes sealed on-disk
/// segments one at a time so the resident ingest buffer is bounded by
/// the segment size rather than the trace length.
pub trait TraceSource {
    /// Exact number of events `stream_events` will yield.
    fn event_count(&self) -> usize;

    /// Streams every event in trace order into `sink`. The sink returns
    /// `false` to stop the stream early (not an error — used when a
    /// balance violation makes further decoding pointless).
    fn stream_events(&self, sink: &mut dyn FnMut(Event) -> bool) -> Result<(), TraceStoreError>;

    /// Streams events in trace order starting at event position
    /// `start` (0-based). The epoch-bounded variant the streaming
    /// audit pulls: each epoch resumes where the previous one stopped,
    /// and the sink stops the stream once the epoch budget fills.
    ///
    /// The default implementation replays from the top and discards
    /// the prefix; sources with random access (an in-memory event
    /// list, a segment store with per-segment event counts) override
    /// it to skip the prefix without decoding it.
    fn stream_events_from(
        &self,
        start: usize,
        sink: &mut dyn FnMut(Event) -> bool,
    ) -> Result<(), TraceStoreError> {
        let mut pos = 0usize;
        self.stream_events(&mut |event| {
            let keep = if pos < start { true } else { sink(event) };
            pos += 1;
            keep
        })
    }

    /// If this source already holds a materialized balanced replay,
    /// exposes it so consumers can borrow instead of rebuilding.
    fn as_balanced(&self) -> Option<&BalancedTrace> {
        None
    }
}

impl TraceSource for Trace {
    fn event_count(&self) -> usize {
        self.events.len()
    }

    fn stream_events(&self, sink: &mut dyn FnMut(Event) -> bool) -> Result<(), TraceStoreError> {
        self.stream_events_from(0, sink)
    }

    fn stream_events_from(
        &self,
        start: usize,
        sink: &mut dyn FnMut(Event) -> bool,
    ) -> Result<(), TraceStoreError> {
        for event in &self.events[start.min(self.events.len())..] {
            if !sink(event.clone()) {
                break;
            }
        }
        Ok(())
    }
}

impl TraceSource for BalancedTrace {
    fn event_count(&self) -> usize {
        self.as_trace().events.len()
    }

    fn stream_events(&self, sink: &mut dyn FnMut(Event) -> bool) -> Result<(), TraceStoreError> {
        self.as_trace().stream_events(sink)
    }

    fn stream_events_from(
        &self,
        start: usize,
        sink: &mut dyn FnMut(Event) -> bool,
    ) -> Result<(), TraceStoreError> {
        self.as_trace().stream_events_from(start, sink)
    }

    fn as_balanced(&self) -> Option<&BalancedTrace> {
        Some(self)
    }
}

impl BalancedTrace {
    /// Replays `source` into the audit's materialized form: one pass
    /// that validates the §3 balance conditions, interns requestIDs, and
    /// indexes event positions. This is the single ingestion funnel for
    /// both the in-RAM and the cold-storage audit paths.
    pub fn from_source<S: TraceSource + ?Sized>(
        source: &S,
    ) -> Result<BalancedTrace, TraceReadError> {
        let mut builder = BalancedBuilder::with_capacity(source.event_count());
        source.stream_events(&mut |event| builder.push(event))?;
        builder.finish().map_err(TraceReadError::Balance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{HttpRequest, HttpResponse};
    use orochi_common::ids::RequestId;

    fn pair(rid: u64) -> [Event; 2] {
        let rid = RequestId(rid);
        [
            Event::Request(rid, HttpRequest::get("/x.php", &[])),
            Event::Response(rid, HttpResponse::ok(rid, "ok")),
        ]
    }

    #[test]
    fn trace_streams_all_events_in_order() {
        let mut events = Vec::new();
        events.extend(pair(1));
        events.extend(pair(2));
        let trace = Trace {
            events: events.clone(),
        };
        assert_eq!(trace.event_count(), 4);
        let mut seen = Vec::new();
        trace
            .stream_events(&mut |e| {
                seen.push(e);
                true
            })
            .unwrap();
        assert_eq!(seen, events);
    }

    #[test]
    fn sink_can_stop_early() {
        let mut events = Vec::new();
        events.extend(pair(1));
        events.extend(pair(2));
        let trace = Trace { events };
        let mut seen = 0;
        trace
            .stream_events(&mut |_| {
                seen += 1;
                false
            })
            .unwrap();
        assert_eq!(seen, 1);
    }

    #[test]
    fn from_source_matches_ensure_balanced() {
        let mut events = Vec::new();
        events.extend(pair(7));
        events.extend(pair(3));
        let trace = Trace { events };
        let via_source = BalancedTrace::from_source(&trace).unwrap();
        let via_direct = trace.ensure_balanced().unwrap();
        assert_eq!(
            via_source.request_ids().collect::<Vec<_>>(),
            via_direct.request_ids().collect::<Vec<_>>()
        );
        assert_eq!(via_source.as_trace(), via_direct.as_trace());
    }

    #[test]
    fn from_source_reports_balance_errors() {
        let rid = RequestId(1);
        let trace = Trace {
            events: vec![Event::Response(rid, HttpResponse::ok(rid, "x"))],
        };
        assert_eq!(
            BalancedTrace::from_source(&trace).unwrap_err(),
            TraceReadError::Balance(BalanceError::ResponseWithoutRequest(rid))
        );
    }

    #[test]
    fn stream_events_from_skips_prefix() {
        let mut events = Vec::new();
        events.extend(pair(1));
        events.extend(pair(2));
        events.extend(pair(3));
        let trace = Trace {
            events: events.clone(),
        };
        for start in 0..=events.len() + 1 {
            let mut seen = Vec::new();
            trace
                .stream_events_from(start, &mut |e| {
                    seen.push(e);
                    true
                })
                .unwrap();
            assert_eq!(seen, events[start.min(events.len())..]);
        }
        // The sink's stop signal still works mid-stream.
        let mut taken = Vec::new();
        trace
            .stream_events_from(2, &mut |e| {
                taken.push(e);
                taken.len() < 2
            })
            .unwrap();
        assert_eq!(taken, events[2..4]);
    }

    #[test]
    fn balanced_trace_is_its_own_source() {
        let trace = Trace {
            events: pair(5).to_vec(),
        };
        let balanced = trace.ensure_balanced().unwrap();
        assert!(balanced.as_balanced().is_some());
        assert_eq!(balanced.event_count(), 2);
    }
}
