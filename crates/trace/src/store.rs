//! The on-disk trace store: a directory of sealed segments plus
//! checksummed sidecar blobs.
//!
//! # Layout
//!
//! ```text
//! <dir>/seg-00000.ots     sealed event segment (see crate::segment)
//! <dir>/seg-00001.ots     ...
//! <dir>/<name>.blob       sidecar blob: "OTB1" magic, varint checksum,
//!                         length-prefixed bytes (op reports live here)
//! ```
//!
//! # Seal protocol
//!
//! [`TraceStoreWriter`] buffers appended events and estimates their
//! encoded size; once the estimate crosses the configured segment
//! budget the pending run is encoded ([`crate::segment::encode_segment`]),
//! written to the next `seg-NNNNN.ots` file, and the buffer is reset.
//! A sealed segment is never reopened or rewritten. [`TraceStoreWriter::finish`]
//! seals the final partial segment and returns the store summary.
//!
//! [`TraceStoreReader`] validates every segment header at open time
//! (magic, version, and that the file length matches the header's
//! payload length — a torn tail fails here) and streams events by
//! decoding one segment at a time, so the resident ingest buffer is
//! bounded by the largest segment, not the trace length. Payload
//! checksums are verified as each segment is decoded.

use crate::record::{Event, Trace};
use crate::segment::{decode_segment, encode_segment, read_header};
use crate::source::{TraceSource, TraceStoreError};
use orochi_common::codec::{Decoder, Encoder};
use orochi_common::hash::fnv1a;
use orochi_obs::{LazyCounter, LazyHistogram};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Segments sealed across all writers.
static SEAL_TOTAL: LazyCounter = LazyCounter::new("tracestore_seal_total");
/// Events sealed into segments.
static EVENTS_TOTAL: LazyCounter = LazyCounter::new("tracestore_events_total");
/// Encoded segment bytes written to disk (bytes/event = this over
/// `tracestore_events_total`).
static BYTES_TOTAL: LazyCounter = LazyCounter::new("tracestore_bytes_total");
/// Wall time spent encoding (dictionary-compressing) a segment;
/// clock-bearing, so only recorded when telemetry is enabled.
static COMPRESS_NS: LazyHistogram = LazyHistogram::new("tracestore_compress_ns");

/// Default segment budget: 1 MiB of estimated encoded events.
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

/// File-name prefix/suffix for sealed segments.
const SEGMENT_PREFIX: &str = "seg-";
const SEGMENT_SUFFIX: &str = ".ots";
const BLOB_SUFFIX: &str = ".blob";
const BLOB_MAGIC: [u8; 4] = *b"OTB1";

fn segment_file_name(seq: usize) -> String {
    format!("{SEGMENT_PREFIX}{seq:05}{SEGMENT_SUFFIX}")
}

/// Cheap upper-bound estimate of an event's encoded size, used only to
/// decide when to seal (the real encoding is dictionary-compressed and
/// almost always much smaller).
fn estimate(event: &Event) -> usize {
    fn pairs(p: &[(String, String)]) -> usize {
        p.iter().map(|(k, v)| k.len() + v.len() + 4).sum::<usize>() + 2
    }
    match event {
        Event::Request(_, req) => {
            12 + req.method.len()
                + req.path.len()
                + pairs(&req.query)
                + pairs(&req.post)
                + pairs(&req.cookies)
        }
        Event::Response(_, resp) => 16 + resp.body.len() + pairs(&resp.headers),
    }
}

/// Summary statistics a finished [`TraceStoreWriter`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStoreSummary {
    /// Number of sealed segments.
    pub segments: usize,
    /// Total events across all segments.
    pub events: u64,
    /// Total bytes of segment files on disk (blobs excluded).
    pub segment_bytes: u64,
    /// Size of the largest sealed segment file.
    pub max_segment_bytes: usize,
    /// Total bytes of sidecar blobs on disk.
    pub blob_bytes: u64,
}

/// Appends trace events into sealed, size-bounded segment files.
#[derive(Debug)]
pub struct TraceStoreWriter {
    dir: PathBuf,
    segment_budget: usize,
    pending: Vec<Event>,
    pending_estimate: usize,
    seq: usize,
    events: u64,
    segment_bytes: u64,
    max_segment_bytes: usize,
    blob_bytes: u64,
    /// Journal lane for seal spans; resolved at create only when
    /// telemetry is enabled so disabled runs export no lane.
    lane: Option<orochi_obs::LaneId>,
}

impl TraceStoreWriter {
    /// Creates a store at `dir` (created if missing, which must not
    /// already contain segments) sealing segments at roughly
    /// `segment_budget` bytes of events. A zero budget means one
    /// segment per [`TraceStoreWriter::finish`].
    pub fn create(dir: impl Into<PathBuf>, segment_budget: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(SEGMENT_PREFIX) && name.ends_with(SEGMENT_SUFFIX) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "trace store directory {} already holds segments",
                        dir.display()
                    ),
                ));
            }
        }
        Ok(TraceStoreWriter {
            dir,
            segment_budget,
            pending: Vec::new(),
            pending_estimate: 0,
            seq: 0,
            events: 0,
            segment_bytes: 0,
            max_segment_bytes: 0,
            blob_bytes: 0,
            lane: orochi_obs::enabled().then(|| orochi_obs::journal::lane("trace-store")),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one event, sealing a segment when the budget fills.
    pub fn append(&mut self, event: Event) -> io::Result<()> {
        self.pending_estimate += estimate(&event);
        self.pending.push(event);
        if self.segment_budget > 0 && self.pending_estimate >= self.segment_budget {
            self.seal()?;
        }
        Ok(())
    }

    /// Appends every event of `trace` in order.
    pub fn append_trace(&mut self, trace: &Trace) -> io::Result<()> {
        for event in &trace.events {
            self.append(event.clone())?;
        }
        Ok(())
    }

    /// Seals the pending events into the next segment file. A no-op when
    /// nothing is pending.
    pub fn seal(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let span = self
            .lane
            .and_then(|l| orochi_obs::span_timed(l, "seal", COMPRESS_NS.get()));
        let blob = encode_segment(&self.pending);
        let path = self.dir.join(segment_file_name(self.seq));
        fs::write(&path, &blob)?;
        drop(span);
        SEAL_TOTAL.inc();
        EVENTS_TOTAL.add(self.pending.len() as u64);
        BYTES_TOTAL.add(blob.len() as u64);
        // Every sealed segment is an epoch boundary the streaming
        // audit can pick up, so the audit-lag clock restarts here —
        // not only at finish().
        orochi_obs::lag::mark_sealed();
        self.seq += 1;
        self.events += self.pending.len() as u64;
        self.segment_bytes += blob.len() as u64;
        self.max_segment_bytes = self.max_segment_bytes.max(blob.len());
        self.pending.clear();
        self.pending_estimate = 0;
        Ok(())
    }

    /// Writes a checksummed sidecar blob named `<name>.blob`.
    pub fn write_blob(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut enc = Encoder::new();
        for b in BLOB_MAGIC {
            enc.byte(b);
        }
        enc.u64(fnv1a(bytes));
        enc.bytes(bytes);
        let out = enc.into_bytes();
        self.blob_bytes += out.len() as u64;
        fs::write(self.dir.join(format!("{name}{BLOB_SUFFIX}")), out)
    }

    /// Seals any pending events and returns the store summary.
    pub fn finish(mut self) -> io::Result<TraceStoreSummary> {
        self.seal()?;
        // The trace is durably sealed: from here the clock runs on the
        // auditor (audit lag = seal→verdict).
        orochi_obs::lag::mark_sealed();
        Ok(TraceStoreSummary {
            segments: self.seq,
            events: self.events,
            segment_bytes: self.segment_bytes,
            max_segment_bytes: self.max_segment_bytes,
            blob_bytes: self.blob_bytes,
        })
    }
}

/// Reads a sealed trace store; implements [`TraceSource`] by decoding
/// one segment at a time.
#[derive(Debug)]
pub struct TraceStoreReader {
    dir: PathBuf,
    /// Per segment: path and its header event count.
    segments: Vec<(PathBuf, u64)>,
    events: u64,
    segment_bytes: u64,
    max_segment_bytes: usize,
}

impl TraceStoreReader {
    /// Opens the store at `dir`, validating every segment's header and
    /// that each file's length matches the header (torn tails fail
    /// here; payload checksums are verified during streaming).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, TraceStoreError> {
        let dir = dir.into();
        let dir_label = dir.display().to_string();
        let entries = fs::read_dir(&dir).map_err(|e| TraceStoreError::io(dir_label.clone(), &e))?;
        let mut names: Vec<String> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| TraceStoreError::io(dir_label.clone(), &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(SEGMENT_PREFIX) && name.ends_with(SEGMENT_SUFFIX) {
                names.push(name);
            }
        }
        names.sort();
        for (i, name) in names.iter().enumerate() {
            if name != &segment_file_name(i) {
                return Err(TraceStoreError::corrupt(
                    dir_label.clone(),
                    format!(
                        "missing or misnumbered segment (expected {})",
                        segment_file_name(i)
                    ),
                ));
            }
        }
        let mut segments = Vec::with_capacity(names.len());
        let mut events = 0u64;
        let mut segment_bytes = 0u64;
        let mut max_segment_bytes = 0usize;
        for name in &names {
            let path = dir.join(name);
            let label = path.display().to_string();
            let bytes = fs::read(&path).map_err(|e| TraceStoreError::io(label.clone(), &e))?;
            let header = read_header(&bytes, &label)?;
            // The header is self-delimiting; everything after it must be
            // exactly the declared payload.
            let header_len = header_len(&bytes);
            if bytes.len() as u64 != header_len as u64 + header.payload_len {
                return Err(TraceStoreError::corrupt(label, "segment truncated"));
            }
            events += header.event_count;
            segment_bytes += bytes.len() as u64;
            max_segment_bytes = max_segment_bytes.max(bytes.len());
            segments.push((path, header.event_count));
        }
        Ok(TraceStoreReader {
            dir,
            segments,
            events,
            segment_bytes,
            max_segment_bytes,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total segment bytes on disk (blobs excluded).
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Size of the largest segment file — the bound on the resident
    /// ingest buffer while streaming.
    pub fn max_segment_bytes(&self) -> usize {
        self.max_segment_bytes
    }

    /// Reads and verifies the sidecar blob named `<name>.blob`.
    pub fn read_blob(&self, name: &str) -> Result<Vec<u8>, TraceStoreError> {
        let path = self.dir.join(format!("{name}{BLOB_SUFFIX}"));
        let label = path.display().to_string();
        let bytes = fs::read(&path).map_err(|e| TraceStoreError::io(label.clone(), &e))?;
        let mut dec = Decoder::new(&bytes);
        let mut magic = [0u8; 4];
        for slot in &mut magic {
            *slot = dec
                .byte()
                .map_err(|_| TraceStoreError::corrupt(label.clone(), "blob truncated"))?;
        }
        if magic != BLOB_MAGIC {
            return Err(TraceStoreError::corrupt(label, "bad blob magic"));
        }
        let checksum = dec
            .u64()
            .map_err(|_| TraceStoreError::corrupt(label.clone(), "blob truncated"))?;
        let body = dec
            .bytes()
            .map_err(|_| TraceStoreError::corrupt(label.clone(), "blob truncated"))?;
        if !dec.is_done() {
            return Err(TraceStoreError::corrupt(label, "trailing bytes after blob"));
        }
        if fnv1a(&body) != checksum {
            return Err(TraceStoreError::corrupt(label, "blob checksum mismatch"));
        }
        Ok(body)
    }
}

/// Length of the self-delimiting segment header in `bytes` (magic +
/// version + three varints). Assumes `read_header` already succeeded.
fn header_len(bytes: &[u8]) -> usize {
    let mut dec = Decoder::new(bytes);
    for _ in 0..5 {
        let _ = dec.byte();
    }
    let _ = dec.u64();
    let _ = dec.u64();
    let _ = dec.u64();
    bytes.len() - dec.remaining()
}

impl TraceSource for TraceStoreReader {
    fn event_count(&self) -> usize {
        self.events as usize
    }

    fn stream_events(&self, sink: &mut dyn FnMut(Event) -> bool) -> Result<(), TraceStoreError> {
        for (path, expected) in &self.segments {
            let label = path.display().to_string();
            let bytes = fs::read(path).map_err(|e| TraceStoreError::io(label.clone(), &e))?;
            let events = decode_segment(&bytes, &label)?;
            if events.len() as u64 != *expected {
                return Err(TraceStoreError::corrupt(
                    label,
                    "payload event count disagrees with header",
                ));
            }
            for event in events {
                if !sink(event) {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn stream_events_from(
        &self,
        start: usize,
        sink: &mut dyn FnMut(Event) -> bool,
    ) -> Result<(), TraceStoreError> {
        let start = start as u64;
        let mut pos = 0u64;
        for (path, expected) in &self.segments {
            // Whole segments before the start position are skipped
            // without reading them — the header event counts recorded
            // at open time are enough to locate the resume point.
            if pos + expected <= start {
                pos += expected;
                continue;
            }
            let label = path.display().to_string();
            let bytes = fs::read(path).map_err(|e| TraceStoreError::io(label.clone(), &e))?;
            let events = decode_segment(&bytes, &label)?;
            if events.len() as u64 != *expected {
                return Err(TraceStoreError::corrupt(
                    label,
                    "payload event count disagrees with header",
                ));
            }
            for event in events {
                if pos >= start && !sink(event) {
                    return Ok(());
                }
                pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{HttpRequest, HttpResponse};
    use orochi_common::ids::RequestId;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "orochi-store-test-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn sample_trace(pairs: u64) -> Trace {
        let mut events = Vec::new();
        for i in 0..pairs {
            let rid = RequestId(i + 1);
            events.push(Event::Request(
                rid,
                HttpRequest::get("/wiki.php", &[("page", "Main")]),
            ));
            events.push(Event::Response(rid, HttpResponse::ok(rid, "body")));
        }
        Trace { events }
    }

    #[test]
    fn roundtrip_through_store() {
        let dir = temp_dir("roundtrip");
        let trace = sample_trace(50);
        let mut writer = TraceStoreWriter::create(&dir, 512).unwrap();
        writer.append_trace(&trace).unwrap();
        let summary = writer.finish().unwrap();
        assert!(summary.segments > 1, "expected multiple segments");
        assert_eq!(summary.events, 100);

        let reader = TraceStoreReader::open(&dir).unwrap();
        assert_eq!(reader.event_count(), 100);
        assert_eq!(reader.segment_count(), summary.segments);
        let mut replayed = Vec::new();
        reader
            .stream_events(&mut |e| {
                replayed.push(e);
                true
            })
            .unwrap();
        assert_eq!(replayed, trace.events);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_events_from_matches_slice_across_segments() {
        let dir = temp_dir("from");
        let trace = sample_trace(40);
        let mut writer = TraceStoreWriter::create(&dir, 256).unwrap();
        writer.append_trace(&trace).unwrap();
        let summary = writer.finish().unwrap();
        assert!(summary.segments > 2, "need several segments to skip");
        let reader = TraceStoreReader::open(&dir).unwrap();
        for start in [0usize, 1, 7, 39, 79, 80, 200] {
            let mut seen = Vec::new();
            reader
                .stream_events_from(start, &mut |e| {
                    seen.push(e);
                    true
                })
                .unwrap();
            assert_eq!(seen, trace.events[start.min(trace.events.len())..]);
        }
        // Early stop inside a resumed segment.
        let mut taken = 0;
        reader
            .stream_events_from(10, &mut |_| {
                taken += 1;
                taken < 3
            })
            .unwrap();
        assert_eq!(taken, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_roundtrip_and_checksum() {
        let dir = temp_dir("blob");
        let mut writer = TraceStoreWriter::create(&dir, 0).unwrap();
        writer.write_blob("reports", b"hello reports").unwrap();
        writer.finish().unwrap();
        let reader = TraceStoreReader::open(&dir).unwrap();
        assert_eq!(reader.read_blob("reports").unwrap(), b"hello reports");

        // Flip a body byte: checksum must catch it.
        let path = dir.join("reports.blob");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).unwrap();
        let err = reader.read_blob("reports").unwrap_err();
        assert!(matches!(err, TraceStoreError::Corrupt { detail, .. }
            if detail == "blob checksum mismatch"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_truncated_segment() {
        let dir = temp_dir("trunc");
        let mut writer = TraceStoreWriter::create(&dir, 0).unwrap();
        writer.append_trace(&sample_trace(5)).unwrap();
        writer.finish().unwrap();
        let path = dir.join(segment_file_name(0));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = TraceStoreReader::open(&dir).unwrap_err();
        assert!(matches!(err, TraceStoreError::Corrupt { detail, .. }
            if detail == "segment truncated"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_segment() {
        let dir = temp_dir("gap");
        let mut writer = TraceStoreWriter::create(&dir, 64).unwrap();
        writer.append_trace(&sample_trace(40)).unwrap();
        let summary = writer.finish().unwrap();
        assert!(summary.segments >= 2);
        fs::remove_file(dir.join(segment_file_name(0))).unwrap();
        let err = TraceStoreReader::open(&dir).unwrap_err();
        assert!(matches!(err, TraceStoreError::Corrupt { detail, .. }
            if detail.starts_with("missing or misnumbered segment")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_dirty_directory() {
        let dir = temp_dir("dirty");
        let mut writer = TraceStoreWriter::create(&dir, 0).unwrap();
        writer.append_trace(&sample_trace(1)).unwrap();
        writer.finish().unwrap();
        assert!(TraceStoreWriter::create(&dir, 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
