//! The trusted collector (middlebox).
//!
//! In Dana's scenario (§1) the collector is a middlebox at the network
//! border that captures end-clients' traffic to and from the application.
//! Here it is an in-process object the load generator and server share:
//! the client side calls [`Collector::record_request`] as a request enters
//! the executor and [`Collector::record_response`] as the response leaves.
//! Events are appended under a lock, so the trace order is exactly the
//! order in which the collector observed the events — the property the
//! model calls "accurate" (§2).
//!
//! The collector also assigns requestIDs. The paper has the well-behaved
//! executor label responses; our collector hands the server the rid along
//! with the request (as a middlebox-injected header would) and the server
//! is expected to echo it on the response. A misbehaving server that
//! mislabels is caught by the balanced-trace check.

use crate::event::{HttpRequest, HttpResponse};
use crate::record::{Event, Trace};
use orochi_common::ids::RequestId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe trace collector.
///
/// # Examples
///
/// ```
/// use orochi_trace::{Collector, HttpRequest, HttpResponse};
///
/// let collector = Collector::new();
/// let rid = collector.record_request(HttpRequest::get("/a.php", &[]));
/// collector.record_response(rid, HttpResponse::ok(rid, "hello"));
/// let trace = collector.into_trace();
/// assert_eq!(trace.events.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Collector {
    next_rid: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl Collector {
    /// Creates an empty collector; requestIDs start at 1.
    pub fn new() -> Self {
        Self {
            next_rid: AtomicU64::new(1),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Records an arriving request, assigning it a fresh requestID.
    pub fn record_request(&self, req: HttpRequest) -> RequestId {
        let rid = RequestId(self.next_rid.fetch_add(1, Ordering::Relaxed));
        self.events.lock().push(Event::Request(rid, req));
        rid
    }

    /// Records a departing response for `rid`.
    pub fn record_response(&self, rid: RequestId, resp: HttpResponse) {
        self.events.lock().push(Event::Response(rid, resp));
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the collector, yielding the trace in observation order.
    pub fn into_trace(self) -> Trace {
        Trace {
            events: self.events.into_inner(),
        }
    }

    /// Copies the events observed so far into a trace without consuming
    /// the collector.
    pub fn snapshot(&self) -> Trace {
        Trace {
            events: self.events.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn assigns_unique_rids() {
        let c = Collector::new();
        let a = c.record_request(HttpRequest::get("/a", &[]));
        let b = c.record_request(HttpRequest::get("/b", &[]));
        assert_ne!(a, b);
    }

    #[test]
    fn interleaved_events_keep_observation_order() {
        let c = Collector::new();
        let r1 = c.record_request(HttpRequest::get("/1", &[]));
        let r2 = c.record_request(HttpRequest::get("/2", &[]));
        c.record_response(r2, HttpResponse::ok(r2, "2"));
        c.record_response(r1, HttpResponse::ok(r1, "1"));
        let trace = c.into_trace();
        let rids: Vec<_> = trace.events.iter().map(|e| e.rid().0).collect();
        assert_eq!(rids, vec![r1.0, r2.0, r2.0, r1.0]);
        // This interleaving is balanced (concurrent requests).
        assert!(trace.ensure_balanced().is_ok());
    }

    #[test]
    fn concurrent_collection_is_balanced() {
        let c = Arc::new(Collector::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let rid = c.record_request(HttpRequest::get(
                        "/t.php",
                        &[("t", &t.to_string()), ("i", &i.to_string())],
                    ));
                    c.record_response(rid, HttpResponse::ok(rid, "done"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let trace = Arc::try_unwrap(c).unwrap().into_trace();
        let balanced = trace.ensure_balanced().unwrap();
        assert_eq!(balanced.num_requests(), 400);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let c = Collector::new();
        let rid = c.record_request(HttpRequest::get("/a", &[]));
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 1);
        c.record_response(rid, HttpResponse::ok(rid, "x"));
        assert_eq!(c.len(), 2);
    }
}
