//! The trusted collector (middlebox).
//!
//! In Dana's scenario (§1) the collector is a middlebox at the network
//! border that captures end-clients' traffic to and from the application.
//! Here it is an in-process object the load generator and server share:
//! the client side calls [`Collector::record_request`] as a request enters
//! the executor and [`Collector::record_response`] as the response leaves.
//!
//! Events land in **striped per-worker buffers** stamped by a global
//! atomic **ticket** drawn inside the stripe's critical section, and
//! [`Collector::into_trace`]/[`Collector::snapshot`] merge-sort the
//! buffers by ticket. The ticket counter is a single atomic whose
//! modification order is a total order consistent with real time: if one
//! `record_*` call returns before another begins, the first holds the
//! smaller ticket. The merged trace is therefore exactly an observation
//! order of the events — the property the model calls "accurate" (§2) —
//! while concurrent recorders only contend when they share a stripe,
//! never on one global event lock. Within a stripe, tickets are drawn
//! under the stripe lock, so each buffer is already ticket-sorted and
//! the merge is a k-way merge, not a sort.
//!
//! The collector also assigns requestIDs. The paper has the well-behaved
//! executor label responses; our collector hands the server the rid along
//! with the request (as a middlebox-injected header would) and the server
//! is expected to echo it on the response. A misbehaving server that
//! mislabels is caught by the balanced-trace check.

use crate::event::{HttpRequest, HttpResponse};
use crate::record::{Event, Trace};
use orochi_common::ids::RequestId;
use orochi_obs::LazyCounter;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Stripe-lock acquisitions on the collector's record path, a
/// contention proxy the telemetry layer exports.
static COLLECTOR_STRIPE_LOCKS: LazyCounter = LazyCounter::new("collector_stripe_lock_total");

/// Number of event buffers. A power of two comfortably above typical
/// worker-pool sizes: workers with distinct stripe hints never contend,
/// and thread-hash collisions only cost performance, never order.
pub const COLLECTOR_STRIPES: usize = 16;

/// One striped buffer: events paired with the tickets that order them.
type StampedBuffer = Vec<(u64, Event)>;

/// Thread-safe trace collector.
///
/// # Examples
///
/// ```
/// use orochi_trace::{Collector, HttpRequest, HttpResponse};
///
/// let collector = Collector::new();
/// let rid = collector.record_request(HttpRequest::get("/a.php", &[]));
/// collector.record_response(rid, HttpResponse::ok(rid, "hello"));
/// let trace = collector.into_trace();
/// assert_eq!(trace.events.len(), 2);
/// ```
#[derive(Debug)]
pub struct Collector {
    next_rid: AtomicU64,
    next_ticket: AtomicU64,
    /// Relaxed event count so `len`/`is_empty` never touch the buffers.
    recorded: AtomicUsize,
    stripes: Box<[Mutex<StampedBuffer>]>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

/// Stripe for callers without an explicit worker identity: hash of the
/// calling thread's id. Collisions are harmless (the ticket, not the
/// stripe, orders the trace).
fn thread_stripe() -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish() as usize % COLLECTOR_STRIPES
}

impl Collector {
    /// Creates an empty collector; requestIDs start at 1.
    pub fn new() -> Self {
        Self {
            next_rid: AtomicU64::new(1),
            next_ticket: AtomicU64::new(0),
            recorded: AtomicUsize::new(0),
            stripes: (0..COLLECTOR_STRIPES)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    fn push(&self, stripe: usize, event: Event) {
        COLLECTOR_STRIPE_LOCKS.inc();
        let mut buffer = self.stripes[stripe % COLLECTOR_STRIPES].lock();
        // Drawn inside the stripe lock, so each buffer is ticket-sorted.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        buffer.push((ticket, event));
        drop(buffer);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an arriving request, assigning it a fresh requestID.
    pub fn record_request(&self, req: HttpRequest) -> RequestId {
        self.record_request_in(thread_stripe(), req)
    }

    /// Records a departing response for `rid`.
    pub fn record_response(&self, rid: RequestId, resp: HttpResponse) {
        self.record_response_in(thread_stripe(), rid, resp);
    }

    /// [`Collector::record_request`] into an explicit stripe — serving
    /// workers pass their worker index so a fixed pool never collides;
    /// any `usize` is accepted (reduced modulo the stripe count).
    pub fn record_request_in(&self, stripe: usize, req: HttpRequest) -> RequestId {
        let rid = RequestId(self.next_rid.fetch_add(1, Ordering::Relaxed));
        self.push(stripe, Event::Request(rid, req));
        rid
    }

    /// [`Collector::record_response`] into an explicit stripe.
    pub fn record_response_in(&self, stripe: usize, rid: RequestId, resp: HttpResponse) {
        self.push(stripe, Event::Response(rid, resp));
    }

    /// Number of events recorded so far (relaxed: concurrent recorders
    /// may or may not be counted, exactly like the pre-striped lock
    /// version racing its callers).
    pub fn len(&self) -> usize {
        self.recorded.load(Ordering::Relaxed)
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the collector, yielding the trace in observation order.
    pub fn into_trace(self) -> Trace {
        let buffers: Vec<StampedBuffer> = self
            .stripes
            .into_vec()
            .into_iter()
            .map(|stripe| stripe.into_inner())
            .collect();
        Trace {
            events: merge_by_ticket(buffers),
        }
    }

    /// Consumes the collector, streaming the merged trace straight into
    /// a segmented store writer — the serve→spill path. No intermediate
    /// [`Trace`] is materialized beyond the buffers the collector
    /// already holds; the writer seals size-bounded segments as the
    /// merge proceeds. Returns the number of events spilled (the caller
    /// finishes the writer, which seals the last partial segment).
    pub fn into_store(self, writer: &mut crate::store::TraceStoreWriter) -> std::io::Result<usize> {
        let buffers: Vec<StampedBuffer> = self
            .stripes
            .into_vec()
            .into_iter()
            .map(|stripe| stripe.into_inner())
            .collect();
        let events = merge_by_ticket(buffers);
        let count = events.len();
        for event in events {
            writer.append(event)?;
        }
        Ok(count)
    }

    /// Copies the events observed so far into a trace without consuming
    /// the collector. All stripe locks are held simultaneously so the
    /// snapshot is an atomic cut: no response can appear without its
    /// request (recorders take one stripe lock at a time, so the fixed
    /// acquisition order cannot deadlock).
    pub fn snapshot(&self) -> Trace {
        let guards: Vec<_> = self.stripes.iter().map(|stripe| stripe.lock()).collect();
        let buffers: Vec<StampedBuffer> = guards.iter().map(|g| (*g).clone()).collect();
        drop(guards);
        Trace {
            events: merge_by_ticket(buffers),
        }
    }
}

/// K-way merge of ticket-sorted buffers into ticket order. Tickets are
/// unique (one atomic counter), so the order is total.
fn merge_by_ticket(buffers: Vec<StampedBuffer>) -> Vec<Event> {
    let total: usize = buffers.iter().map(Vec::len).sum();
    let mut iters: Vec<_> = buffers.into_iter().map(Vec::into_iter).collect();
    // Min-heap over (ticket, buffer index) via Reverse; the events stay
    // in their iterators (Event is not Ord and never needs to be).
    let mut heap = BinaryHeap::with_capacity(iters.len());
    let mut heads: Vec<Option<Event>> = Vec::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        match it.next() {
            Some((ticket, event)) => {
                heap.push(std::cmp::Reverse((ticket, i)));
                heads.push(Some(event));
            }
            None => heads.push(None),
        }
    }
    let mut events = Vec::with_capacity(total);
    while let Some(std::cmp::Reverse((_, i))) = heap.pop() {
        events.push(heads[i].take().expect("head present for queued buffer"));
        if let Some((ticket, next)) = iters[i].next() {
            heap.push(std::cmp::Reverse((ticket, i)));
            heads[i] = Some(next);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn assigns_unique_rids() {
        let c = Collector::new();
        let a = c.record_request(HttpRequest::get("/a", &[]));
        let b = c.record_request(HttpRequest::get("/b", &[]));
        assert_ne!(a, b);
    }

    #[test]
    fn interleaved_events_keep_observation_order() {
        let c = Collector::new();
        let r1 = c.record_request(HttpRequest::get("/1", &[]));
        let r2 = c.record_request(HttpRequest::get("/2", &[]));
        c.record_response(r2, HttpResponse::ok(r2, "2"));
        c.record_response(r1, HttpResponse::ok(r1, "1"));
        let trace = c.into_trace();
        let rids: Vec<_> = trace.events.iter().map(|e| e.rid().0).collect();
        assert_eq!(rids, vec![r1.0, r2.0, r2.0, r1.0]);
        // This interleaving is balanced (concurrent requests).
        assert!(trace.ensure_balanced().is_ok());
    }

    #[test]
    fn stripe_assignment_never_reorders_observations() {
        // Adversarial striping: events recorded in a fixed order but
        // scattered across stripes must merge back into exactly that
        // order — the ticket, not the buffer, carries the trace order.
        let c = Collector::new();
        let r1 = c.record_request_in(7, HttpRequest::get("/1", &[]));
        let r2 = c.record_request_in(0, HttpRequest::get("/2", &[]));
        c.record_response_in(3, r1, HttpResponse::ok(r1, "1"));
        let r3 = c.record_request_in(7, HttpRequest::get("/3", &[]));
        c.record_response_in(15, r3, HttpResponse::ok(r3, "3"));
        c.record_response_in(1, r2, HttpResponse::ok(r2, "2"));
        let trace = c.into_trace();
        let rids: Vec<_> = trace.events.iter().map(|e| e.rid().0).collect();
        assert_eq!(rids, vec![r1.0, r2.0, r1.0, r3.0, r3.0, r2.0]);
        trace.ensure_balanced().unwrap();
    }

    #[test]
    fn concurrent_collection_is_balanced() {
        let c = Arc::new(Collector::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let rid = c.record_request_in(
                        t,
                        HttpRequest::get("/t.php", &[("t", &t.to_string()), ("i", &i.to_string())]),
                    );
                    c.record_response_in(t, rid, HttpResponse::ok(rid, "done"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let trace = Arc::try_unwrap(c).unwrap().into_trace();
        let balanced = trace.ensure_balanced().unwrap();
        assert_eq!(balanced.num_requests(), 400);
    }

    #[test]
    fn len_is_lock_free_and_counts_all_events() {
        let c = Arc::new(Collector::new());
        let mut handles = Vec::new();
        for t in 0..4usize {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let rid = c.record_request_in(t, HttpRequest::get("/x", &[]));
                    c.record_response_in(t, rid, HttpResponse::ok(rid, "ok"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 800);
        assert!(!c.is_empty());
    }

    #[test]
    fn into_store_spills_in_observation_order() {
        let dir =
            std::env::temp_dir().join(format!("orochi-collector-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Collector::new();
        let r1 = c.record_request_in(7, HttpRequest::get("/1", &[]));
        let r2 = c.record_request_in(0, HttpRequest::get("/2", &[]));
        c.record_response_in(3, r1, HttpResponse::ok(r1, "1"));
        c.record_response_in(1, r2, HttpResponse::ok(r2, "2"));
        let mut writer = crate::store::TraceStoreWriter::create(&dir, 0).unwrap();
        assert_eq!(c.into_store(&mut writer).unwrap(), 4);
        writer.finish().unwrap();
        let reader = crate::store::TraceStoreReader::open(&dir).unwrap();
        let mut rids = Vec::new();
        crate::TraceSource::stream_events(&reader, &mut |e| {
            rids.push(e.rid().0);
            true
        })
        .unwrap();
        assert_eq!(rids, vec![r1.0, r2.0, r1.0, r2.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_does_not_consume() {
        let c = Collector::new();
        let rid = c.record_request(HttpRequest::get("/a", &[]));
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 1);
        c.record_response(rid, HttpResponse::ok(rid, "x"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn snapshot_is_an_atomic_cut_in_ticket_order() {
        let c = Collector::new();
        let mut expected = Vec::new();
        for i in 0..40u64 {
            let rid = c.record_request_in(i as usize % 5, HttpRequest::get("/x", &[]));
            expected.push(rid.0);
            c.record_response_in((i as usize + 3) % 5, rid, HttpResponse::ok(rid, "ok"));
            expected.push(rid.0);
        }
        let snap = c.snapshot();
        let got: Vec<_> = snap.events.iter().map(|e| e.rid().0).collect();
        assert_eq!(got, expected);
        // Snapshotting again after more events extends the same prefix.
        let rid = c.record_request(HttpRequest::get("/y", &[]));
        expected.push(rid.0);
        let again = c.snapshot();
        let got: Vec<_> = again.events.iter().map(|e| e.rid().0).collect();
        assert_eq!(got, expected);
    }
}
