//! Traces of requests and responses, and the collector that records them.
//!
//! The Efficient Server Audit Problem (§2 of the paper) assumes an
//! *accurate* collector: a middlebox that captures an ordered list — the
//! **trace** — of exactly the requests that flowed into the executor and
//! the (possibly wrong) responses that flowed out. The verifier receives
//! this trace; everything else it receives (the reports) is untrusted.
//!
//! This crate provides:
//!
//! * [`HttpRequest`] / [`HttpResponse`]: the request/response payloads.
//!   We model the content of HTTP messages (path, query, form data,
//!   cookies, body) without the byte-level protocol, which is irrelevant
//!   to the audit problem.
//! * [`Event`] and [`Trace`]: the ordered event list.
//! * [`BalancedTrace`]: a validated trace, produced by
//!   [`Trace::ensure_balanced`] (§3: "the verifier begins the audit by
//!   checking that the trace is balanced").
//! * [`Collector`]: the thread-safe middlebox used by the online system.

pub mod collector;
pub mod event;
pub mod record;

pub use collector::{Collector, COLLECTOR_STRIPES};
pub use event::{HttpRequest, HttpResponse};
pub use record::{BalanceError, BalancedTrace, DenseEvent, Event, RidInterner, Trace};
