//! Traces of requests and responses, and the collector that records them.
//!
//! The Efficient Server Audit Problem (§2 of the paper) assumes an
//! *accurate* collector: a middlebox that captures an ordered list — the
//! **trace** — of exactly the requests that flowed into the executor and
//! the (possibly wrong) responses that flowed out. The verifier receives
//! this trace; everything else it receives (the reports) is untrusted.
//!
//! This crate provides:
//!
//! * [`HttpRequest`] / [`HttpResponse`]: the request/response payloads.
//!   We model the content of HTTP messages (path, query, form data,
//!   cookies, body) without the byte-level protocol, which is irrelevant
//!   to the audit problem.
//! * [`Event`] and [`Trace`]: the ordered event list.
//! * [`BalancedTrace`]: a validated trace, produced by
//!   [`Trace::ensure_balanced`] (§3: "the verifier begins the audit by
//!   checking that the trace is balanced").
//! * [`Collector`]: the thread-safe middlebox used by the online system.
//! * [`TraceSource`]: the unified ingestion API — a pull-based ordered
//!   event stream implemented by the in-memory [`Trace`], by
//!   [`BalancedTrace`] itself, and by the segmented on-disk store.
//! * [`segment`] / [`store`]: the persistent binary trace store —
//!   sealed, size-bounded, integrity-checked segment files with
//!   columnar, dictionary-compressed event lanes, which the audit
//!   replays one segment at a time instead of holding a second copy of
//!   the trace in RAM.

pub mod collector;
pub mod event;
pub mod lz;
pub mod record;
pub mod segment;
pub mod source;
pub mod store;

pub use collector::{Collector, COLLECTOR_STRIPES};
pub use event::{HttpRequest, HttpResponse};
pub use record::{
    BalanceError, BalancedTrace, DenseEvent, Event, RidInterner, StreamingBalance, Trace,
};
pub use source::{TraceReadError, TraceSource, TraceStoreError};
pub use store::{TraceStoreReader, TraceStoreSummary, TraceStoreWriter, DEFAULT_SEGMENT_BYTES};
