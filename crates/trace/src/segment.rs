//! The sealed-segment binary codec: a bounded run of trace events as
//! one integrity-checked byte blob.
//!
//! # Layout
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "OTS1" (4 bytes) | version u8 = 1                      |
//! | event_count varint | payload checksum varint (FNV-1a 64)     |
//! | compressed length varint | LZ-compressed payload bytes ...   |
//! +--------------------------------------------------------------+
//! payload (checksummed and LZ-compressed as one unit, see
//! [`crate::lz`]) :=
//!   string dictionary   varint n, then n length-prefixed strings
//!   rid dictionary      varint n, first rid varint, then zigzag deltas
//!   kinds lane          packed bits, 1 = response (length-prefixed)
//!   rid lane            per event: varint index into rid dictionary
//!   method lane         per request: varint string-dictionary index
//!   path lane           per request: varint string-dictionary index
//!   query lane          per request: varint npairs + (k idx, v idx)*
//!   post lane           per request: same shape
//!   cookie lane         per request: same shape
//!   label lane          per response: varint 0 = label matches rid,
//!                       else varint 1 + raw label varint
//!   status lane         per response: varint status
//!   header lane         per response: varint npairs + (k idx, v idx)*
//!   body lane           per response: varint string-dictionary index
//! ```
//!
//! Every string — method, path, query/post/cookie/header keys and
//! values, bodies — goes through one per-segment dictionary, so the
//! heavy repetition in real workloads (a handful of script paths,
//! templated bodies, recurring session cookies) is stored once per
//! segment. RequestIDs are dictionary-coded the same way, with the
//! dictionary itself delta-encoded (collector tickets make rids
//! near-ascending). The lanes are columnar: same-shaped values sit
//! adjacently, which keeps the varints short and the layout
//! self-describing. The assembled payload is then LZ-compressed as a
//! whole: the dictionary only dedups *exact* repeats, while templated
//! bodies are unique-but-similar — the LZ pass turns that cross-body
//! redundancy into back-references.
//!
//! Integrity: the header carries the event count and an FNV-1a 64
//! checksum over the *uncompressed* payload. [`decode_segment`] rejects
//! — with stable diagnostics — bad magic, unsupported versions,
//! truncated payloads, checksum mismatches, event-count mismatches, and
//! any lane that under- or over-runs its extent. Corruption inside the
//! compressed bytes surfaces either as a failed decompression or as a
//! wrong checksum; both report the single stable diagnostic
//! `segment checksum mismatch`.

use crate::event::{HttpRequest, HttpResponse};
use crate::record::Event;
use crate::source::TraceStoreError;
use orochi_common::codec::{Decoder, Encoder, WireError};
use orochi_common::hash::fnv1a;
use orochi_common::ids::RequestId;
use std::collections::HashMap;

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"OTS1";
/// Current segment format version.
pub const SEGMENT_VERSION: u8 = 1;

/// Writer-side string dictionary: first-use interning to dense indices.
#[derive(Default)]
struct Dict {
    index: HashMap<String, u64>,
    strings: Vec<String>,
}

impl Dict {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&idx) = self.index.get(s) {
            return idx;
        }
        let idx = self.strings.len() as u64;
        self.index.insert(s.to_string(), idx);
        self.strings.push(s.to_string());
        idx
    }
}

fn encode_pairs(lane: &mut Encoder, dict: &mut Dict, pairs: &[(String, String)]) {
    lane.u64(pairs.len() as u64);
    for (k, v) in pairs {
        let k = dict.intern(k);
        let v = dict.intern(v);
        lane.u64(k);
        lane.u64(v);
    }
}

/// Encodes `events` into one sealed segment blob.
pub fn encode_segment(events: &[Event]) -> Vec<u8> {
    let mut dict = Dict::default();
    let mut rid_index: HashMap<RequestId, u64> = HashMap::new();
    let mut rid_dict: Vec<RequestId> = Vec::new();

    let mut kinds = vec![0u8; events.len().div_ceil(8)];
    let mut rid_lane = Encoder::new();
    let mut method_lane = Encoder::new();
    let mut path_lane = Encoder::new();
    let mut query_lane = Encoder::new();
    let mut post_lane = Encoder::new();
    let mut cookie_lane = Encoder::new();
    let mut label_lane = Encoder::new();
    let mut status_lane = Encoder::new();
    let mut header_lane = Encoder::new();
    let mut body_lane = Encoder::new();

    for (i, event) in events.iter().enumerate() {
        let rid = event.rid();
        let rid_idx = *rid_index.entry(rid).or_insert_with(|| {
            rid_dict.push(rid);
            rid_dict.len() as u64 - 1
        });
        rid_lane.u64(rid_idx);
        match event {
            Event::Request(_, req) => {
                method_lane.u64(dict.intern(&req.method));
                path_lane.u64(dict.intern(&req.path));
                encode_pairs(&mut query_lane, &mut dict, &req.query);
                encode_pairs(&mut post_lane, &mut dict, &req.post);
                encode_pairs(&mut cookie_lane, &mut dict, &req.cookies);
            }
            Event::Response(_, resp) => {
                kinds[i / 8] |= 1 << (i % 8);
                if resp.rid_label == rid {
                    label_lane.u64(0);
                } else {
                    label_lane.u64(1);
                    label_lane.u64(resp.rid_label.0);
                }
                status_lane.u64(resp.status as u64);
                encode_pairs(&mut header_lane, &mut dict, &resp.headers);
                body_lane.u64(dict.intern(&resp.body));
            }
        }
    }

    let mut payload = Encoder::new();
    payload.u64(dict.strings.len() as u64);
    for s in &dict.strings {
        payload.str(s);
    }
    payload.u64(rid_dict.len() as u64);
    let mut prev = 0u64;
    for (k, rid) in rid_dict.iter().enumerate() {
        if k == 0 {
            payload.u64(rid.0);
        } else {
            payload.i64(rid.0.wrapping_sub(prev) as i64);
        }
        prev = rid.0;
    }
    payload.bytes(&kinds);
    for lane in [
        rid_lane,
        method_lane,
        path_lane,
        query_lane,
        post_lane,
        cookie_lane,
        label_lane,
        status_lane,
        header_lane,
        body_lane,
    ] {
        payload.bytes(&lane.into_bytes());
    }
    let payload = payload.into_bytes();

    let mut out = Encoder::new();
    for b in SEGMENT_MAGIC {
        out.byte(b);
    }
    out.byte(SEGMENT_VERSION);
    out.u64(events.len() as u64);
    out.u64(fnv1a(&payload));
    out.bytes(&crate::lz::compress(&payload));
    out.into_bytes()
}

/// The parsed header of a segment blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Format version.
    pub version: u8,
    /// Number of events the payload holds.
    pub event_count: u64,
    /// FNV-1a 64 checksum of the uncompressed payload bytes.
    pub checksum: u64,
    /// Compressed payload length in bytes.
    pub payload_len: u64,
}

fn corrupt(path: &str, detail: impl Into<String>) -> TraceStoreError {
    TraceStoreError::corrupt(path, detail)
}

fn wire_detail(path: &str, e: WireError) -> TraceStoreError {
    match e {
        WireError::UnexpectedEof => corrupt(path, "segment truncated"),
        other => corrupt(path, format!("{other}")),
    }
}

/// Parses and validates the header of `bytes` (magic, version, counts)
/// without touching the payload. `path` labels diagnostics.
pub fn read_header(bytes: &[u8], path: &str) -> Result<SegmentHeader, TraceStoreError> {
    let mut dec = Decoder::new(bytes);
    let mut magic = [0u8; 4];
    for slot in &mut magic {
        *slot = dec.byte().map_err(|e| wire_detail(path, e))?;
    }
    if magic != SEGMENT_MAGIC {
        return Err(corrupt(path, "bad segment magic"));
    }
    let version = dec.byte().map_err(|e| wire_detail(path, e))?;
    if version != SEGMENT_VERSION {
        return Err(corrupt(
            path,
            format!("unsupported segment version {version}"),
        ));
    }
    let event_count = dec.u64().map_err(|e| wire_detail(path, e))?;
    let checksum = dec.u64().map_err(|e| wire_detail(path, e))?;
    let payload_len = dec.u64().map_err(|e| wire_detail(path, e))?;
    Ok(SegmentHeader {
        version,
        event_count,
        checksum,
        payload_len,
    })
}

struct LaneReader {
    buf: Vec<u8>,
}

impl LaneReader {
    fn take(dec: &mut Decoder<'_>, path: &str) -> Result<Self, TraceStoreError> {
        Ok(LaneReader {
            buf: dec.bytes().map_err(|e| wire_detail(path, e))?,
        })
    }
}

fn decode_pairs(
    dec: &mut Decoder<'_>,
    dict: &[String],
    path: &str,
) -> Result<Vec<(String, String)>, TraceStoreError> {
    let n = dec.u64().map_err(|e| wire_detail(path, e))? as usize;
    if n > dec.remaining() {
        return Err(corrupt(path, "pair count exceeds lane"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((dict_str(dec, dict, path)?, dict_str(dec, dict, path)?));
    }
    Ok(out)
}

fn dict_str(dec: &mut Decoder<'_>, dict: &[String], path: &str) -> Result<String, TraceStoreError> {
    let idx = dec.u64().map_err(|e| wire_detail(path, e))? as usize;
    dict.get(idx)
        .cloned()
        .ok_or_else(|| corrupt(path, "string dictionary index out of range"))
}

/// Decodes a sealed segment back into its events, verifying the header
/// and the payload checksum. `path` labels diagnostics.
pub fn decode_segment(bytes: &[u8], path: &str) -> Result<Vec<Event>, TraceStoreError> {
    let header = read_header(bytes, path)?;
    // Re-position past the header the same way read_header consumed it.
    let mut dec = Decoder::new(bytes);
    for _ in 0..5 {
        dec.byte().map_err(|e| wire_detail(path, e))?;
    }
    dec.u64().map_err(|e| wire_detail(path, e))?;
    dec.u64().map_err(|e| wire_detail(path, e))?;
    let packed = dec.bytes().map_err(|e| wire_detail(path, e))?;
    if !dec.is_done() {
        return Err(corrupt(path, "trailing bytes after payload"));
    }
    // Payload corruption can surface either as a structurally invalid
    // compressed stream or as wrong decompressed bytes; both funnel
    // into the one stable checksum diagnostic.
    let payload =
        crate::lz::decompress(&packed).map_err(|_| corrupt(path, "segment checksum mismatch"))?;
    if fnv1a(&payload) != header.checksum {
        return Err(corrupt(path, "segment checksum mismatch"));
    }
    let event_count = header.event_count as usize;

    let mut p = Decoder::new(&payload);
    let n_strings = p.u64().map_err(|e| wire_detail(path, e))? as usize;
    if n_strings > p.remaining() {
        return Err(corrupt(path, "string dictionary count exceeds payload"));
    }
    let mut dict = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        dict.push(p.str().map_err(|e| wire_detail(path, e))?);
    }
    let n_rids = p.u64().map_err(|e| wire_detail(path, e))? as usize;
    if n_rids > p.remaining() {
        return Err(corrupt(path, "rid dictionary count exceeds payload"));
    }
    let mut rid_dict: Vec<RequestId> = Vec::with_capacity(n_rids);
    let mut prev = 0u64;
    for k in 0..n_rids {
        let rid = if k == 0 {
            p.u64().map_err(|e| wire_detail(path, e))?
        } else {
            let delta = p.i64().map_err(|e| wire_detail(path, e))?;
            prev.wrapping_add(delta as u64)
        };
        rid_dict.push(RequestId(rid));
        prev = rid;
    }
    let kinds = p.bytes().map_err(|e| wire_detail(path, e))?;
    if kinds.len() != event_count.div_ceil(8) {
        return Err(corrupt(
            path,
            "kinds lane length disagrees with event count",
        ));
    }
    let mut lanes = Vec::with_capacity(10);
    for _ in 0..10 {
        lanes.push(LaneReader::take(&mut p, path)?);
    }
    if !p.is_done() {
        return Err(corrupt(path, "trailing bytes after lanes"));
    }
    let [rid_buf, method_buf, path_buf, query_buf, post_buf, cookie_buf, label_buf, status_buf, header_buf, body_buf]: [LaneReader; 10] =
        lanes.try_into().ok().expect("exactly ten lanes");
    let mut rid_lane = Decoder::new(&rid_buf.buf);
    let mut method_lane = Decoder::new(&method_buf.buf);
    let mut path_lane = Decoder::new(&path_buf.buf);
    let mut query_lane = Decoder::new(&query_buf.buf);
    let mut post_lane = Decoder::new(&post_buf.buf);
    let mut cookie_lane = Decoder::new(&cookie_buf.buf);
    let mut label_lane = Decoder::new(&label_buf.buf);
    let mut status_lane = Decoder::new(&status_buf.buf);
    let mut header_lane = Decoder::new(&header_buf.buf);
    let mut body_lane = Decoder::new(&body_buf.buf);

    let mut events = Vec::with_capacity(event_count);
    for i in 0..event_count {
        let rid_idx = rid_lane.u64().map_err(|e| wire_detail(path, e))? as usize;
        let rid = *rid_dict
            .get(rid_idx)
            .ok_or_else(|| corrupt(path, "rid dictionary index out of range"))?;
        let is_response = kinds[i / 8] & (1 << (i % 8)) != 0;
        if is_response {
            let labeled = label_lane.u64().map_err(|e| wire_detail(path, e))?;
            let rid_label = match labeled {
                0 => rid,
                1 => RequestId(label_lane.u64().map_err(|e| wire_detail(path, e))?),
                _ => return Err(corrupt(path, "bad response label marker")),
            };
            let status = status_lane.u64().map_err(|e| wire_detail(path, e))?;
            if status > u16::MAX as u64 {
                return Err(corrupt(path, "status out of range"));
            }
            events.push(Event::Response(
                rid,
                HttpResponse {
                    rid_label,
                    status: status as u16,
                    headers: decode_pairs(&mut header_lane, &dict, path)?,
                    body: dict_str(&mut body_lane, &dict, path)?,
                },
            ));
        } else {
            events.push(Event::Request(
                rid,
                HttpRequest {
                    method: dict_str(&mut method_lane, &dict, path)?,
                    path: dict_str(&mut path_lane, &dict, path)?,
                    query: decode_pairs(&mut query_lane, &dict, path)?,
                    post: decode_pairs(&mut post_lane, &dict, path)?,
                    cookies: decode_pairs(&mut cookie_lane, &dict, path)?,
                },
            ));
        }
    }
    for (lane, name) in [
        (&rid_lane, "rid"),
        (&method_lane, "method"),
        (&path_lane, "path"),
        (&query_lane, "query"),
        (&post_lane, "post"),
        (&cookie_lane, "cookie"),
        (&label_lane, "label"),
        (&status_lane, "status"),
        (&header_lane, "header"),
        (&body_lane, "body"),
    ] {
        if !lane.is_done() {
            return Err(corrupt(path, format!("{name} lane not fully consumed")));
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let r1 = RequestId(10);
        let r2 = RequestId(11);
        vec![
            Event::Request(
                r1,
                HttpRequest::post("/shop.php", &[("a", "1")], &[("item", "7")])
                    .with_cookie("sess", "u1"),
            ),
            Event::Request(r2, HttpRequest::get("/shop.php", &[("a", "1")])),
            Event::Response(
                r1,
                HttpResponse {
                    rid_label: r1,
                    status: 200,
                    headers: vec![("Set-Cookie".into(), "sess=u1".into())],
                    body: "ok".into(),
                },
            ),
            Event::Response(r2, HttpResponse::ok(r2, "ok")),
        ]
    }

    #[test]
    fn roundtrip_preserves_events() {
        let events = sample_events();
        let blob = encode_segment(&events);
        assert_eq!(decode_segment(&blob, "seg").unwrap(), events);
    }

    #[test]
    fn roundtrip_preserves_mislabeled_responses() {
        let rid = RequestId(1);
        let events = vec![
            Event::Request(rid, HttpRequest::get("/x", &[])),
            Event::Response(rid, HttpResponse::ok(RequestId(99), "ok")),
        ];
        let blob = encode_segment(&events);
        assert_eq!(decode_segment(&blob, "seg").unwrap(), events);
    }

    #[test]
    fn empty_segment_roundtrips() {
        let blob = encode_segment(&[]);
        assert_eq!(decode_segment(&blob, "seg").unwrap(), Vec::<Event>::new());
    }

    #[test]
    fn header_reports_counts() {
        let events = sample_events();
        let blob = encode_segment(&events);
        let header = read_header(&blob, "seg").unwrap();
        assert_eq!(header.event_count, 4);
        assert_eq!(header.version, SEGMENT_VERSION);
    }

    #[test]
    fn dictionary_makes_repetition_cheap() {
        // 100 identical request/response pairs (distinct rids): the
        // dictionary should amortize every string to near zero.
        let mut events = Vec::new();
        for i in 0..100u64 {
            let rid = RequestId(i + 1);
            events.push(Event::Request(
                rid,
                HttpRequest::get("/wiki.php", &[("page", "Main")]),
            ));
            events.push(Event::Response(rid, HttpResponse::ok(rid, "the page body")));
        }
        let blob = encode_segment(&events);
        assert!(
            blob.len() < events.len() * 8,
            "expected < 8 bytes/event, got {} for {} events",
            blob.len(),
            events.len()
        );
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let blob = encode_segment(&sample_events());
        let mut bad = blob.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let err = decode_segment(&bad, "seg").unwrap_err();
        assert_eq!(
            err,
            TraceStoreError::corrupt("seg", "segment checksum mismatch")
        );
    }

    #[test]
    fn truncated_tail_is_rejected() {
        let blob = encode_segment(&sample_events());
        let err = decode_segment(&blob[..blob.len() - 3], "seg").unwrap_err();
        assert_eq!(err, TraceStoreError::corrupt("seg", "segment truncated"));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut blob = encode_segment(&sample_events());
        blob[0] = b'X';
        let err = decode_segment(&blob, "seg").unwrap_err();
        assert_eq!(err, TraceStoreError::corrupt("seg", "bad segment magic"));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut blob = encode_segment(&sample_events());
        blob[4] = 9;
        let err = decode_segment(&blob, "seg").unwrap_err();
        assert_eq!(
            err,
            TraceStoreError::corrupt("seg", "unsupported segment version 9")
        );
    }
}
