//! The trace proper: ordered events and the balanced-trace check.
//!
//! A trace is an ordered list of REQUEST and RESPONSE events (§2). Before
//! auditing, the verifier checks that the trace is *balanced* (§3):
//! every response is associated with an earlier request, every request has
//! exactly one response, and requestIDs are unique. Only a
//! [`BalancedTrace`] can be fed to the audit.

use crate::event::{HttpRequest, HttpResponse};
use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use orochi_common::ids::RequestId;
use std::collections::HashMap;
use std::fmt;

/// One observed event: a request arriving at, or a response departing
/// from, the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `(REQUEST, rid, contents)` — a request arrived.
    Request(RequestId, HttpRequest),
    /// `(RESPONSE, rid, contents)` — a response departed.
    Response(RequestId, HttpResponse),
}

impl Event {
    /// The requestID this event belongs to.
    pub fn rid(&self) -> RequestId {
        match self {
            Event::Request(rid, _) => *rid,
            Event::Response(rid, _) => *rid,
        }
    }
}

impl Wire for Event {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Event::Request(rid, req) => {
                enc.byte(0);
                rid.encode(enc);
                req.encode(enc);
            }
            Event::Response(rid, resp) => {
                enc.byte(1);
                rid.encode(enc);
                resp.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.byte()? {
            0 => Ok(Event::Request(
                RequestId::decode(dec)?,
                HttpRequest::decode(dec)?,
            )),
            1 => Ok(Event::Response(
                RequestId::decode(dec)?,
                HttpResponse::decode(dec)?,
            )),
            _ => Err(WireError::Malformed("unknown event tag")),
        }
    }
}

/// An ordered, possibly unvalidated trace of events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in collector (time) order.
    pub events: Vec<Event>,
}

/// Why a trace failed the balanced check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalanceError {
    /// Two REQUEST events carry the same requestID.
    DuplicateRequestId(RequestId),
    /// A RESPONSE event appeared with no earlier matching REQUEST.
    ResponseWithoutRequest(RequestId),
    /// Two RESPONSE events answer the same request.
    DuplicateResponse(RequestId),
    /// A REQUEST event never received a RESPONSE.
    RequestWithoutResponse(RequestId),
    /// A response's `rid_label` disagrees with its position-derived rid.
    MislabeledResponse {
        /// The requestID implied by the event stream.
        expected: RequestId,
        /// The label the executor actually put on the response.
        got: RequestId,
    },
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceError::DuplicateRequestId(rid) => {
                write!(f, "duplicate requestID {rid}")
            }
            BalanceError::ResponseWithoutRequest(rid) => {
                write!(f, "response for {rid} precedes its request")
            }
            BalanceError::DuplicateResponse(rid) => {
                write!(f, "more than one response for {rid}")
            }
            BalanceError::RequestWithoutResponse(rid) => {
                write!(f, "request {rid} has no response")
            }
            BalanceError::MislabeledResponse { expected, got } => {
                write!(f, "response labeled {got} but answers {expected}")
            }
        }
    }
}

impl std::error::Error for BalanceError {}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events (requests plus responses).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the balanced-trace conditions (§3) and indexes the trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use orochi_common::ids::RequestId;
    /// use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};
    ///
    /// let rid = RequestId(1);
    /// let trace = Trace {
    ///     events: vec![
    ///         Event::Request(rid, HttpRequest::get("/a.php", &[])),
    ///         Event::Response(rid, HttpResponse::ok(rid, "hi")),
    ///     ],
    /// };
    /// let balanced = trace.ensure_balanced().unwrap();
    /// assert_eq!(balanced.request_ids().count(), 1);
    /// ```
    pub fn ensure_balanced(&self) -> Result<BalancedTrace, BalanceError> {
        let mut requests: HashMap<RequestId, usize> = HashMap::new();
        let mut responses: HashMap<RequestId, usize> = HashMap::new();
        for (pos, event) in self.events.iter().enumerate() {
            match event {
                Event::Request(rid, _) => {
                    if requests.insert(*rid, pos).is_some() {
                        return Err(BalanceError::DuplicateRequestId(*rid));
                    }
                }
                Event::Response(rid, resp) => {
                    if !requests.contains_key(rid) {
                        return Err(BalanceError::ResponseWithoutRequest(*rid));
                    }
                    if responses.insert(*rid, pos).is_some() {
                        return Err(BalanceError::DuplicateResponse(*rid));
                    }
                    if resp.rid_label != *rid {
                        return Err(BalanceError::MislabeledResponse {
                            expected: *rid,
                            got: resp.rid_label,
                        });
                    }
                }
            }
        }
        for rid in requests.keys() {
            if !responses.contains_key(rid) {
                return Err(BalanceError::RequestWithoutResponse(*rid));
            }
        }
        Ok(BalancedTrace {
            trace: self.clone(),
            request_pos: requests,
            response_pos: responses,
        })
    }

    /// Total encoded size of the trace in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

impl Wire for Trace {
    fn encode(&self, enc: &mut Encoder) {
        self.events.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Trace {
            events: Vec::<Event>::decode(dec)?,
        })
    }
}

/// A trace that passed [`Trace::ensure_balanced`], with request/response
/// positions indexed by requestID.
#[derive(Debug, Clone)]
pub struct BalancedTrace {
    trace: Trace,
    request_pos: HashMap<RequestId, usize>,
    response_pos: HashMap<RequestId, usize>,
}

impl BalancedTrace {
    /// The underlying event list, in time order.
    pub fn events(&self) -> &[Event] {
        &self.trace.events
    }

    /// Number of request/response pairs.
    pub fn num_requests(&self) -> usize {
        self.request_pos.len()
    }

    /// Iterates all requestIDs in trace arrival order. The order is
    /// deterministic on purpose: the audit's output-comparison phase
    /// walks it, so the rid named by a `MissingOutput`/`OutputMismatch`
    /// rejection must not depend on hash-map iteration (the parallel
    /// audit's determinism suite compares those diagnostics across
    /// runs).
    pub fn request_ids(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.trace.events.iter().filter_map(|e| match e {
            Event::Request(rid, _) => Some(*rid),
            Event::Response(..) => None,
        })
    }

    /// True if `rid` appears in the trace.
    pub fn contains(&self, rid: RequestId) -> bool {
        self.request_pos.contains_key(&rid)
    }

    /// The request payload for `rid`.
    ///
    /// # Panics
    ///
    /// Panics if `rid` is not in the trace; check [`Self::contains`] first.
    pub fn request(&self, rid: RequestId) -> &HttpRequest {
        match &self.trace.events[self.request_pos[&rid]] {
            Event::Request(_, req) => req,
            Event::Response(..) => unreachable!("request_pos indexes request events"),
        }
    }

    /// The response payload for `rid`.
    ///
    /// # Panics
    ///
    /// Panics if `rid` is not in the trace.
    pub fn response(&self, rid: RequestId) -> &HttpResponse {
        match &self.trace.events[self.response_pos[&rid]] {
            Event::Response(_, resp) => resp,
            Event::Request(..) => unreachable!("response_pos indexes response events"),
        }
    }

    /// Event position of the REQUEST event for `rid`.
    pub fn request_position(&self, rid: RequestId) -> usize {
        self.request_pos[&rid]
    }

    /// Event position of the RESPONSE event for `rid`.
    pub fn response_position(&self, rid: RequestId) -> usize {
        self.response_pos[&rid]
    }

    /// The time-precedence relation from the trace: `r1 <Tr r2` iff the
    /// response of `r1` departed before the request of `r2` arrived (§3.5).
    pub fn precedes(&self, r1: RequestId, r2: RequestId) -> bool {
        match (self.response_pos.get(&r1), self.request_pos.get(&r2)) {
            (Some(resp), Some(req)) => resp < req,
            _ => false,
        }
    }

    /// Borrows the raw trace.
    pub fn as_trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rid: u64) -> Event {
        Event::Request(RequestId(rid), HttpRequest::get("/x.php", &[]))
    }

    fn resp(rid: u64) -> Event {
        Event::Response(RequestId(rid), HttpResponse::ok(RequestId(rid), "ok"))
    }

    #[test]
    fn accepts_sequential_trace() {
        let t = Trace {
            events: vec![req(1), resp(1), req(2), resp(2)],
        };
        let b = t.ensure_balanced().unwrap();
        assert_eq!(b.num_requests(), 2);
        assert!(b.precedes(RequestId(1), RequestId(2)));
        assert!(!b.precedes(RequestId(2), RequestId(1)));
    }

    #[test]
    fn accepts_concurrent_trace() {
        let t = Trace {
            events: vec![req(1), req(2), resp(2), resp(1)],
        };
        let b = t.ensure_balanced().unwrap();
        // Concurrent requests precede in neither direction.
        assert!(!b.precedes(RequestId(1), RequestId(2)));
        assert!(!b.precedes(RequestId(2), RequestId(1)));
    }

    #[test]
    fn rejects_duplicate_request_id() {
        let t = Trace {
            events: vec![req(1), req(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::DuplicateRequestId(RequestId(1))
        );
    }

    #[test]
    fn rejects_response_before_request() {
        let t = Trace {
            events: vec![resp(1), req(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::ResponseWithoutRequest(RequestId(1))
        );
    }

    #[test]
    fn rejects_double_response() {
        let t = Trace {
            events: vec![req(1), resp(1), resp(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::DuplicateResponse(RequestId(1))
        );
    }

    #[test]
    fn rejects_missing_response() {
        let t = Trace {
            events: vec![req(1), req(2), resp(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::RequestWithoutResponse(RequestId(2))
        );
    }

    #[test]
    fn rejects_mislabeled_response() {
        let t = Trace {
            events: vec![
                req(1),
                Event::Response(RequestId(1), HttpResponse::ok(RequestId(9), "ok")),
            ],
        };
        assert!(matches!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::MislabeledResponse { .. }
        ));
    }

    #[test]
    fn empty_trace_is_balanced() {
        let b = Trace::new().ensure_balanced().unwrap();
        assert_eq!(b.num_requests(), 0);
    }

    #[test]
    fn trace_wire_roundtrip() {
        let t = Trace {
            events: vec![req(1), req(2), resp(2), resp(1)],
        };
        let bytes = t.to_wire_bytes();
        assert_eq!(Trace::from_wire_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn lookup_by_rid() {
        let t = Trace {
            events: vec![req(5), resp(5)],
        };
        let b = t.ensure_balanced().unwrap();
        assert_eq!(b.request(RequestId(5)).path, "/x.php");
        assert_eq!(b.response(RequestId(5)).body, "ok");
        assert_eq!(b.request_position(RequestId(5)), 0);
        assert_eq!(b.response_position(RequestId(5)), 1);
    }
}
