//! The trace proper: ordered events and the balanced-trace check.
//!
//! A trace is an ordered list of REQUEST and RESPONSE events (§2). Before
//! auditing, the verifier checks that the trace is *balanced* (§3):
//! every response is associated with an earlier request, every request has
//! exactly one response, and requestIDs are unique. Only a
//! [`BalancedTrace`] can be fed to the audit.

use crate::event::{HttpRequest, HttpResponse};
use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use orochi_common::ids::RequestId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One observed event: a request arriving at, or a response departing
/// from, the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `(REQUEST, rid, contents)` — a request arrived.
    Request(RequestId, HttpRequest),
    /// `(RESPONSE, rid, contents)` — a response departed.
    Response(RequestId, HttpResponse),
}

impl Event {
    /// The requestID this event belongs to.
    pub fn rid(&self) -> RequestId {
        match self {
            Event::Request(rid, _) => *rid,
            Event::Response(rid, _) => *rid,
        }
    }
}

impl Wire for Event {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Event::Request(rid, req) => {
                enc.byte(0);
                rid.encode(enc);
                req.encode(enc);
            }
            Event::Response(rid, resp) => {
                enc.byte(1);
                rid.encode(enc);
                resp.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.byte()? {
            0 => Ok(Event::Request(
                RequestId::decode(dec)?,
                HttpRequest::decode(dec)?,
            )),
            1 => Ok(Event::Response(
                RequestId::decode(dec)?,
                HttpResponse::decode(dec)?,
            )),
            _ => Err(WireError::Malformed("unknown event tag")),
        }
    }
}

/// An ordered, possibly unvalidated trace of events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in collector (time) order.
    pub events: Vec<Event>,
}

/// Why a trace failed the balanced check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalanceError {
    /// Two REQUEST events carry the same requestID.
    DuplicateRequestId(RequestId),
    /// A RESPONSE event appeared with no earlier matching REQUEST.
    ResponseWithoutRequest(RequestId),
    /// Two RESPONSE events answer the same request.
    DuplicateResponse(RequestId),
    /// A REQUEST event never received a RESPONSE.
    RequestWithoutResponse(RequestId),
    /// A response's `rid_label` disagrees with its position-derived rid.
    MislabeledResponse {
        /// The requestID implied by the event stream.
        expected: RequestId,
        /// The label the executor actually put on the response.
        got: RequestId,
    },
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceError::DuplicateRequestId(rid) => {
                write!(f, "duplicate requestID {rid}")
            }
            BalanceError::ResponseWithoutRequest(rid) => {
                write!(f, "response for {rid} precedes its request")
            }
            BalanceError::DuplicateResponse(rid) => {
                write!(f, "more than one response for {rid}")
            }
            BalanceError::RequestWithoutResponse(rid) => {
                write!(f, "request {rid} has no response")
            }
            BalanceError::MislabeledResponse { expected, got } => {
                write!(f, "response labeled {got} but answers {expected}")
            }
        }
    }
}

impl std::error::Error for BalanceError {}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events (requests plus responses).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the balanced-trace conditions (§3) and indexes the trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use orochi_common::ids::RequestId;
    /// use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};
    ///
    /// let rid = RequestId(1);
    /// let trace = Trace {
    ///     events: vec![
    ///         Event::Request(rid, HttpRequest::get("/a.php", &[])),
    ///         Event::Response(rid, HttpResponse::ok(rid, "hi")),
    ///     ],
    /// };
    /// let balanced = trace.ensure_balanced().unwrap();
    /// assert_eq!(balanced.request_ids().count(), 1);
    /// ```
    pub fn ensure_balanced(&self) -> Result<BalancedTrace, BalanceError> {
        let mut builder = BalancedBuilder::with_capacity(self.events.len());
        for event in &self.events {
            if !builder.push(event.clone()) {
                break;
            }
        }
        builder.finish()
    }

    /// Total encoded size of the trace in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

impl Wire for Trace {
    fn encode(&self, enc: &mut Encoder) {
        self.events.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Trace {
            events: Vec::<Event>::decode(dec)?,
        })
    }
}

/// A trace that passed [`Trace::ensure_balanced`], with request/response
/// positions indexed densely by arrival rank.
///
/// This is the audit's *materialized replay*: the owned event list plus
/// the [`RidInterner`] built during the balance scan (one pass, one hash
/// table) and flat `dense index -> event position` arrays. It can be
/// built from any [`crate::TraceSource`] — the in-memory [`Trace`] or
/// the on-disk segment store — via
/// [`BalancedTrace::from_source`](crate::source), so batch-from-RAM and
/// replay-from-cold-storage feed the audit through the same type.
///
/// The interner is behind an [`Arc`]: repeated audits of one
/// `BalancedTrace` (and the graph builds inside a single audit) share
/// the interned replay instead of re-walking the event stream.
#[derive(Debug, Clone)]
pub struct BalancedTrace {
    trace: Trace,
    interner: Arc<RidInterner>,
    /// Dense index -> position of the REQUEST event in `trace.events`.
    request_pos: Vec<usize>,
    /// Dense index -> position of the RESPONSE event in `trace.events`.
    response_pos: Vec<usize>,
}

/// Incremental balance validation: events stream in one at a time (from
/// a `Vec` or a segment decoder), and the builder maintains the
/// interner, the dense position arrays, and the §3 balance checks in a
/// single pass — no second copy of the event stream is ever made.
pub(crate) struct BalancedBuilder {
    events: Vec<Event>,
    rids: Vec<RequestId>,
    index: HashMap<RequestId, u32>,
    dense_events: Vec<u32>,
    request_pos: Vec<usize>,
    response_pos: Vec<usize>,
    error: Option<BalanceError>,
}

/// Sentinel in `response_pos` for "no response seen yet".
const NO_RESPONSE: usize = usize::MAX;

impl BalancedBuilder {
    pub(crate) fn with_capacity(events: usize) -> Self {
        BalancedBuilder {
            events: Vec::with_capacity(events),
            rids: Vec::new(),
            index: HashMap::new(),
            dense_events: Vec::with_capacity(events),
            request_pos: Vec::new(),
            response_pos: Vec::new(),
            error: None,
        }
    }

    /// Feeds the next event; returns `false` once the trace is known
    /// unbalanced, so streaming callers can stop decoding early.
    pub(crate) fn push(&mut self, event: Event) -> bool {
        if self.error.is_some() {
            return false;
        }
        let pos = self.events.len();
        match &event {
            Event::Request(rid, _) => {
                let idx = self.rids.len() as u32;
                match self.index.entry(*rid) {
                    Entry::Occupied(_) => {
                        self.error = Some(BalanceError::DuplicateRequestId(*rid));
                        return false;
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(idx);
                    }
                }
                self.rids.push(*rid);
                self.dense_events.push(idx << 1);
                self.request_pos.push(pos);
                self.response_pos.push(NO_RESPONSE);
            }
            Event::Response(rid, resp) => {
                let Some(&idx) = self.index.get(rid) else {
                    self.error = Some(BalanceError::ResponseWithoutRequest(*rid));
                    return false;
                };
                if self.response_pos[idx as usize] != NO_RESPONSE {
                    self.error = Some(BalanceError::DuplicateResponse(*rid));
                    return false;
                }
                if resp.rid_label != *rid {
                    self.error = Some(BalanceError::MislabeledResponse {
                        expected: *rid,
                        got: resp.rid_label,
                    });
                    return false;
                }
                self.response_pos[idx as usize] = pos;
                self.dense_events.push((idx << 1) | 1);
            }
        }
        self.events.push(event);
        true
    }

    pub(crate) fn finish(self) -> Result<BalancedTrace, BalanceError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        // First request in arrival order without a response (the old
        // implementation picked a hash-map-ordered rid here; arrival
        // order makes the diagnostic deterministic).
        for (k, &pos) in self.response_pos.iter().enumerate() {
            if pos == NO_RESPONSE {
                return Err(BalanceError::RequestWithoutResponse(self.rids[k]));
            }
        }
        Ok(BalancedTrace {
            trace: Trace {
                events: self.events,
            },
            interner: Arc::new(RidInterner {
                rids: self.rids,
                index: self.index,
                dense_events: self.dense_events,
            }),
            request_pos: self.request_pos,
            response_pos: self.response_pos,
        })
    }
}

impl BalancedTrace {
    /// The underlying event list, in time order.
    pub fn events(&self) -> &[Event] {
        &self.trace.events
    }

    /// Number of request/response pairs.
    pub fn num_requests(&self) -> usize {
        self.request_pos.len()
    }

    /// Dense index of `rid`, if present (one hash lookup).
    fn dense(&self, rid: RequestId) -> Option<usize> {
        self.interner.index_of(rid).map(|idx| idx as usize)
    }

    /// Iterates all requestIDs in trace arrival order. The order is
    /// deterministic on purpose: the audit's output-comparison phase
    /// walks it, so the rid named by a `MissingOutput`/`OutputMismatch`
    /// rejection must not depend on hash-map iteration (the parallel
    /// audit's determinism suite compares those diagnostics across
    /// runs).
    pub fn request_ids(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.interner.rids().iter().copied()
    }

    /// True if `rid` appears in the trace.
    pub fn contains(&self, rid: RequestId) -> bool {
        self.dense(rid).is_some()
    }

    /// The request payload for `rid`.
    ///
    /// # Panics
    ///
    /// Panics if `rid` is not in the trace; check [`Self::contains`] first.
    pub fn request(&self, rid: RequestId) -> &HttpRequest {
        let idx = self.dense(rid).expect("rid not in trace");
        match &self.trace.events[self.request_pos[idx]] {
            Event::Request(_, req) => req,
            Event::Response(..) => unreachable!("request_pos indexes request events"),
        }
    }

    /// The response payload for `rid`.
    ///
    /// # Panics
    ///
    /// Panics if `rid` is not in the trace.
    pub fn response(&self, rid: RequestId) -> &HttpResponse {
        let idx = self.dense(rid).expect("rid not in trace");
        match &self.trace.events[self.response_pos[idx]] {
            Event::Response(_, resp) => resp,
            Event::Request(..) => unreachable!("response_pos indexes response events"),
        }
    }

    /// Event position of the REQUEST event for `rid`.
    pub fn request_position(&self, rid: RequestId) -> usize {
        self.request_pos[self.dense(rid).expect("rid not in trace")]
    }

    /// Event position of the RESPONSE event for `rid`.
    pub fn response_position(&self, rid: RequestId) -> usize {
        self.response_pos[self.dense(rid).expect("rid not in trace")]
    }

    /// The time-precedence relation from the trace: `r1 <Tr r2` iff the
    /// response of `r1` departed before the request of `r2` arrived (§3.5).
    pub fn precedes(&self, r1: RequestId, r2: RequestId) -> bool {
        match (self.dense(r1), self.dense(r2)) {
            (Some(i1), Some(i2)) => self.response_pos[i1] < self.request_pos[i2],
            _ => false,
        }
    }

    /// Borrows the raw trace.
    pub fn as_trace(&self) -> &Trace {
        &self.trace
    }

    /// The dense interning of this trace's requestIDs, built once during
    /// the balance scan and shared by reference count.
    ///
    /// Everything downstream — the Fig. 6 frontier, the CSR graph build,
    /// the flat OpMap — works in index arithmetic over the dense ids and
    /// never hashes a [`RequestId`] again. See [`RidInterner`]. Repeated
    /// calls (one audit builds the graph and the `OpMap` from the same
    /// interner, and callers may audit one trace many times) return a
    /// clone of the same [`Arc`] instead of re-walking the event stream.
    pub fn intern_rids(&self) -> Arc<RidInterner> {
        Arc::clone(&self.interner)
    }
}

/// One trace event with its requestID replaced by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseEvent {
    /// A request arrived; its dense index equals its arrival rank, so
    /// `Request(k)` events appear in increasing `k` order.
    Request(u32),
    /// The response for the request with this dense index departed.
    Response(u32),
}

/// Dense interning of a balanced trace's requestIDs.
///
/// Index `k` names the `k`-th request *in arrival order*; the interner
/// keeps the forward table (`rid -> index`, the only hash map), the
/// reverse table (`index -> rid`, a flat array), and the event stream
/// re-expressed over the dense indices so consumers can replay the
/// trace without touching the original events (or a hash) again.
///
/// Built once per [`BalancedTrace`] (during the balance scan) and shared —
/// via the audit's `OpMap`/`AuditShared` — by every phase that needs
/// per-request state: the frontier algorithm streams
/// [`RidInterner::dense_events`], the CSR audit graph numbers its nodes
/// by dense index, and the re-execution workers keep their per-request
/// cursors in flat arrays indexed by it.
#[derive(Debug, Clone)]
pub struct RidInterner {
    /// Dense index -> requestID, in arrival order.
    rids: Vec<RequestId>,
    /// RequestID -> dense index: the one hash table, consulted only
    /// during interning-time resolution (and when a public API takes a
    /// `RequestId` from outside the dense world).
    index: HashMap<RequestId, u32>,
    /// The event stream over dense indices: `(index << 1) | is_response`.
    dense_events: Vec<u32>,
}

impl RidInterner {
    /// An empty interner behind a fresh [`Arc`]. The streaming audit
    /// uses it as a placeholder: while [`StreamingBalance`] grows the
    /// canonical interner in place, the audit-side structures hold this
    /// stand-in instead of a second strong reference.
    pub fn empty() -> Arc<RidInterner> {
        Arc::new(RidInterner {
            rids: Vec::new(),
            index: HashMap::new(),
            dense_events: Vec::new(),
        })
    }

    /// Rough resident size in bytes (flat arrays plus hash-table
    /// entries), for the streaming audit's carry accounting.
    pub fn estimated_bytes(&self) -> usize {
        self.rids.len() * (8 + 8 + 4 + 16) + self.dense_events.len() * 4
    }

    /// Number of interned requests (`X`).
    pub fn num_requests(&self) -> usize {
        self.rids.len()
    }

    /// True if the trace had no requests.
    pub fn is_empty(&self) -> bool {
        self.rids.is_empty()
    }

    /// The requestID at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn rid(&self, idx: u32) -> RequestId {
        self.rids[idx as usize]
    }

    /// All requestIDs in arrival (= dense index) order.
    pub fn rids(&self) -> &[RequestId] {
        &self.rids
    }

    /// The dense index of `rid`, if the trace contains it (one hash
    /// lookup — the only operation that ever re-hashes a requestID).
    pub fn index_of(&self, rid: RequestId) -> Option<u32> {
        self.index.get(&rid).copied()
    }

    /// Replays the trace's events over dense indices, in trace order.
    pub fn dense_events(&self) -> impl Iterator<Item = DenseEvent> + '_ {
        self.dense_events.iter().map(|&packed| {
            if packed & 1 == 0 {
                DenseEvent::Request(packed >> 1)
            } else {
                DenseEvent::Response(packed >> 1)
            }
        })
    }
}

/// Incremental §3 balance validation over an *unbounded* event stream —
/// the streaming-epoch audit's replacement for materializing a
/// [`BalancedTrace`].
///
/// Unlike the balanced-trace builder, no event payload is retained: the
/// validator grows only the [`RidInterner`] (dense ids, forward/reverse
/// tables, the dense event stream) and one `responded` bit per request.
/// The checks and their order are exactly the builder's, so the first
/// [`BalanceError`] reported on any stream equals the one
/// [`Trace::ensure_balanced`] reports on the materialized trace, and
/// [`StreamingBalance::first_unresponded`] at end-of-stream names the
/// same arrival-ordered rid as the builder's finish.
///
/// The interner lives behind an [`Arc`] so audit-side structures can
/// share it between ingest bursts, but [`StreamingBalance::push`]
/// mutates it through [`Arc::get_mut`] — the caller must drop (or swap
/// to [`RidInterner::empty`]) every other strong reference before the
/// next push, and `push` panics otherwise.
#[derive(Debug)]
pub struct StreamingBalance {
    interner: Arc<RidInterner>,
    responded: Vec<bool>,
    events_seen: usize,
}

impl Default for StreamingBalance {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingBalance {
    /// Creates a validator with an empty interner.
    pub fn new() -> Self {
        StreamingBalance {
            interner: RidInterner::empty(),
            responded: Vec::new(),
            events_seen: 0,
        }
    }

    /// Feeds the next event, returning its dense form or the first
    /// balance violation. After an `Err` the trace is rejected; the
    /// stream must not be pushed further.
    ///
    /// # Panics
    ///
    /// Panics if the interner [`Arc`] is not exclusively held (see the
    /// type docs).
    pub fn push(&mut self, event: &Event) -> Result<DenseEvent, BalanceError> {
        let interner = Arc::get_mut(&mut self.interner)
            .expect("streaming interner must be exclusively held during ingest");
        self.events_seen += 1;
        match event {
            Event::Request(rid, _) => {
                let idx = interner.rids.len() as u32;
                match interner.index.entry(*rid) {
                    Entry::Occupied(_) => return Err(BalanceError::DuplicateRequestId(*rid)),
                    Entry::Vacant(slot) => {
                        slot.insert(idx);
                    }
                }
                interner.rids.push(*rid);
                interner.dense_events.push(idx << 1);
                self.responded.push(false);
                Ok(DenseEvent::Request(idx))
            }
            Event::Response(rid, resp) => {
                let Some(&idx) = interner.index.get(rid) else {
                    return Err(BalanceError::ResponseWithoutRequest(*rid));
                };
                if self.responded[idx as usize] {
                    return Err(BalanceError::DuplicateResponse(*rid));
                }
                if resp.rid_label != *rid {
                    return Err(BalanceError::MislabeledResponse {
                        expected: *rid,
                        got: resp.rid_label,
                    });
                }
                self.responded[idx as usize] = true;
                interner.dense_events.push((idx << 1) | 1);
                Ok(DenseEvent::Response(idx))
            }
        }
    }

    /// Events pushed so far.
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Requests interned so far.
    pub fn num_requests(&self) -> usize {
        self.interner.num_requests()
    }

    /// The canonical interner. Clones handed out must be dropped or
    /// swapped away before the next [`StreamingBalance::push`].
    pub fn interner(&self) -> &Arc<RidInterner> {
        &self.interner
    }

    /// Whether the request at dense index `idx` has its response.
    pub fn responded(&self, idx: u32) -> bool {
        self.responded[idx as usize]
    }

    /// At end-of-stream: the first request in arrival order without a
    /// response — the exact [`BalanceError::RequestWithoutResponse`]
    /// diagnostic the batch balance check reports.
    pub fn first_unresponded(&self) -> Option<RequestId> {
        self.responded
            .iter()
            .position(|&r| !r)
            .map(|k| self.interner.rids[k])
    }

    /// Rough resident size of the validator state in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.interner.estimated_bytes() + self.responded.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rid: u64) -> Event {
        Event::Request(RequestId(rid), HttpRequest::get("/x.php", &[]))
    }

    fn resp(rid: u64) -> Event {
        Event::Response(RequestId(rid), HttpResponse::ok(RequestId(rid), "ok"))
    }

    #[test]
    fn accepts_sequential_trace() {
        let t = Trace {
            events: vec![req(1), resp(1), req(2), resp(2)],
        };
        let b = t.ensure_balanced().unwrap();
        assert_eq!(b.num_requests(), 2);
        assert!(b.precedes(RequestId(1), RequestId(2)));
        assert!(!b.precedes(RequestId(2), RequestId(1)));
    }

    #[test]
    fn accepts_concurrent_trace() {
        let t = Trace {
            events: vec![req(1), req(2), resp(2), resp(1)],
        };
        let b = t.ensure_balanced().unwrap();
        // Concurrent requests precede in neither direction.
        assert!(!b.precedes(RequestId(1), RequestId(2)));
        assert!(!b.precedes(RequestId(2), RequestId(1)));
    }

    #[test]
    fn rejects_duplicate_request_id() {
        let t = Trace {
            events: vec![req(1), req(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::DuplicateRequestId(RequestId(1))
        );
    }

    #[test]
    fn rejects_response_before_request() {
        let t = Trace {
            events: vec![resp(1), req(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::ResponseWithoutRequest(RequestId(1))
        );
    }

    #[test]
    fn rejects_double_response() {
        let t = Trace {
            events: vec![req(1), resp(1), resp(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::DuplicateResponse(RequestId(1))
        );
    }

    #[test]
    fn rejects_missing_response() {
        let t = Trace {
            events: vec![req(1), req(2), resp(1)],
        };
        assert_eq!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::RequestWithoutResponse(RequestId(2))
        );
    }

    #[test]
    fn rejects_mislabeled_response() {
        let t = Trace {
            events: vec![
                req(1),
                Event::Response(RequestId(1), HttpResponse::ok(RequestId(9), "ok")),
            ],
        };
        assert!(matches!(
            t.ensure_balanced().unwrap_err(),
            BalanceError::MislabeledResponse { .. }
        ));
    }

    #[test]
    fn empty_trace_is_balanced() {
        let b = Trace::new().ensure_balanced().unwrap();
        assert_eq!(b.num_requests(), 0);
    }

    #[test]
    fn trace_wire_roundtrip() {
        let t = Trace {
            events: vec![req(1), req(2), resp(2), resp(1)],
        };
        let bytes = t.to_wire_bytes();
        assert_eq!(Trace::from_wire_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn interner_is_arrival_ordered() {
        // Arrival order r5, r2, r9 — dense indices follow arrivals, not
        // the numeric rid order.
        let t = Trace {
            events: vec![req(5), req(2), resp(2), req(9), resp(5), resp(9)],
        };
        let interner = t.ensure_balanced().unwrap().intern_rids();
        assert_eq!(interner.num_requests(), 3);
        assert_eq!(interner.rids(), &[RequestId(5), RequestId(2), RequestId(9)]);
        assert_eq!(interner.index_of(RequestId(2)), Some(1));
        assert_eq!(interner.index_of(RequestId(7)), None);
        assert_eq!(interner.rid(2), RequestId(9));
        let events: Vec<DenseEvent> = interner.dense_events().collect();
        assert_eq!(
            events,
            vec![
                DenseEvent::Request(0),
                DenseEvent::Request(1),
                DenseEvent::Response(1),
                DenseEvent::Request(2),
                DenseEvent::Response(0),
                DenseEvent::Response(2),
            ]
        );
    }

    #[test]
    fn interner_of_empty_trace() {
        let interner = Trace::new().ensure_balanced().unwrap().intern_rids();
        assert!(interner.is_empty());
        assert_eq!(interner.dense_events().count(), 0);
    }

    #[test]
    fn lookup_by_rid() {
        let t = Trace {
            events: vec![req(5), resp(5)],
        };
        let b = t.ensure_balanced().unwrap();
        assert_eq!(b.request(RequestId(5)).path, "/x.php");
        assert_eq!(b.response(RequestId(5)).body, "ok");
        assert_eq!(b.request_position(RequestId(5)), 0);
        assert_eq!(b.response_position(RequestId(5)), 1);
    }

    /// Feeds a trace through [`StreamingBalance`] the way the streaming
    /// audit does and reports the batch-shaped verdict.
    fn streaming_verdict(t: &Trace) -> Result<Vec<DenseEvent>, BalanceError> {
        let mut sb = StreamingBalance::new();
        let mut dense = Vec::new();
        for event in &t.events {
            dense.push(sb.push(event)?);
        }
        if let Some(rid) = sb.first_unresponded() {
            return Err(BalanceError::RequestWithoutResponse(rid));
        }
        Ok(dense)
    }

    #[test]
    fn streaming_balance_matches_batch_on_all_error_shapes() {
        let cases: Vec<Trace> = vec![
            Trace {
                events: vec![req(1), resp(1), req(2), resp(2)],
            },
            Trace {
                events: vec![req(1), req(2), resp(2), resp(1)],
            },
            Trace {
                events: vec![req(1), req(1)],
            },
            Trace {
                events: vec![resp(1), req(1)],
            },
            Trace {
                events: vec![req(1), resp(1), resp(1)],
            },
            Trace {
                events: vec![req(1), req(2), resp(1)],
            },
            Trace {
                events: vec![
                    req(1),
                    Event::Response(RequestId(1), HttpResponse::ok(RequestId(9), "ok")),
                ],
            },
            Trace::new(),
        ];
        for t in &cases {
            match (t.ensure_balanced(), streaming_verdict(t)) {
                (Ok(b), Ok(dense)) => {
                    assert_eq!(b.intern_rids().dense_events().collect::<Vec<_>>(), dense);
                }
                (Err(batch), Err(streamed)) => assert_eq!(batch, streamed),
                (batch, streamed) => panic!("verdicts diverge: {batch:?} vs {streamed:?}"),
            }
        }
    }

    #[test]
    fn streaming_balance_interner_grows_in_place() {
        let mut sb = StreamingBalance::new();
        sb.push(&req(5)).unwrap();
        sb.push(&req(2)).unwrap();
        sb.push(&resp(2)).unwrap();
        assert_eq!(sb.num_requests(), 2);
        assert_eq!(sb.events_seen(), 3);
        assert!(sb.responded(1));
        assert!(!sb.responded(0));
        assert_eq!(sb.first_unresponded(), Some(RequestId(5)));
        let interner = Arc::clone(sb.interner());
        assert_eq!(interner.index_of(RequestId(5)), Some(0));
        drop(interner); // Restore exclusivity before the next push.
        sb.push(&resp(5)).unwrap();
        assert_eq!(sb.first_unresponded(), None);
        assert!(sb.estimated_bytes() > 0);
    }
}
