//! Request and response payloads.
//!
//! In OROCHI's setting (§4) requests are HTTP requests to PHP scripts and
//! responses are the pages the server delivered. The audit treats both as
//! opaque content to compare byte-for-byte; only the verifier's PHP
//! runtime interprets the request fields. We therefore model the
//! *content* of the messages (method, path, parameters, cookies, body)
//! and skip the wire protocol.

use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use orochi_common::ids::RequestId;

/// An HTTP request as captured by the collector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HttpRequest {
    /// HTTP method, e.g. `"GET"` or `"POST"`.
    pub method: String,
    /// Script path, e.g. `"/wiki.php"`.
    pub path: String,
    /// Query-string parameters (materialized as `$_GET`).
    pub query: Vec<(String, String)>,
    /// Form parameters (materialized as `$_POST`).
    pub post: Vec<(String, String)>,
    /// Cookies (materialized as `$_COOKIE`); the session cookie names the
    /// per-user register object (§4.4).
    pub cookies: Vec<(String, String)>,
}

impl HttpRequest {
    /// Builds a GET request for `path` with the given query parameters.
    ///
    /// # Examples
    ///
    /// ```
    /// use orochi_trace::HttpRequest;
    ///
    /// let req = HttpRequest::get("/page.php", &[("id", "7")]);
    /// assert_eq!(req.method, "GET");
    /// assert_eq!(req.query_param("id"), Some("7"));
    /// ```
    pub fn get(path: &str, query: &[(&str, &str)]) -> Self {
        Self {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            post: Vec::new(),
            cookies: Vec::new(),
        }
    }

    /// Builds a POST request for `path` with query and form parameters.
    pub fn post(path: &str, query: &[(&str, &str)], post: &[(&str, &str)]) -> Self {
        Self {
            method: "POST".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            post: post
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cookies: Vec::new(),
        }
    }

    /// Returns this request with an added cookie.
    pub fn with_cookie(mut self, name: &str, value: &str) -> Self {
        self.cookies.push((name.to_string(), value.to_string()));
        self
    }

    /// Looks up a query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a cookie by name.
    pub fn cookie(&self, name: &str) -> Option<&str> {
        self.cookies
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A canonical single-line rendering of the request target, used for
    /// grouping statistics (Fig. 11 counts "unique URLs").
    pub fn url(&self) -> String {
        let mut s = self.path.clone();
        if !self.query.is_empty() {
            s.push('?');
            for (i, (k, v)) in self.query.iter().enumerate() {
                if i > 0 {
                    s.push('&');
                }
                s.push_str(k);
                s.push('=');
                s.push_str(v);
            }
        }
        s
    }

    /// Encoded size in bytes; the Fig. 8 table reports average
    /// request-response pair sizes.
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

/// An HTTP response as captured by the collector.
///
/// A well-behaved executor labels each response with the requestID of the
/// request it answers (§3); the label is part of the observable output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HttpResponse {
    /// The requestID label the executor placed on the response.
    pub rid_label: RequestId,
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// Response headers set by the application (e.g. `Set-Cookie`).
    pub headers: Vec<(String, String)>,
    /// Response body (the rendered page).
    pub body: String,
}

impl HttpResponse {
    /// Builds a 200 response with the given body and no extra headers.
    pub fn ok(rid_label: RequestId, body: impl Into<String>) -> Self {
        Self {
            rid_label,
            status: 200,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

fn encode_pairs(enc: &mut Encoder, pairs: &[(String, String)]) {
    enc.u64(pairs.len() as u64);
    for (k, v) in pairs {
        enc.str(k);
        enc.str(v);
    }
}

fn decode_pairs(dec: &mut Decoder<'_>) -> Result<Vec<(String, String)>, WireError> {
    let n = dec.u64()? as usize;
    if n > dec.remaining() {
        return Err(WireError::Malformed("pair count exceeds buffer"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((dec.str()?, dec.str()?));
    }
    Ok(out)
}

impl Wire for HttpRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(&self.method);
        enc.str(&self.path);
        encode_pairs(enc, &self.query);
        encode_pairs(enc, &self.post);
        encode_pairs(enc, &self.cookies);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Self {
            method: dec.str()?,
            path: dec.str()?,
            query: decode_pairs(dec)?,
            post: decode_pairs(dec)?,
            cookies: decode_pairs(dec)?,
        })
    }
}

impl Wire for HttpResponse {
    fn encode(&self, enc: &mut Encoder) {
        self.rid_label.encode(enc);
        enc.u64(self.status as u64);
        encode_pairs(enc, &self.headers);
        enc.str(&self.body);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let rid_label = RequestId::decode(dec)?;
        let status = dec.u64()?;
        if status > u16::MAX as u64 {
            return Err(WireError::Malformed("status out of range"));
        }
        Ok(Self {
            rid_label,
            status: status as u16,
            headers: decode_pairs(dec)?,
            body: dec.str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_builder_and_lookup() {
        let req = HttpRequest::get("/s.php", &[("a", "7"), ("b", "x")]);
        assert_eq!(req.query_param("a"), Some("7"));
        assert_eq!(req.query_param("b"), Some("x"));
        assert_eq!(req.query_param("c"), None);
        assert!(req.post.is_empty());
    }

    #[test]
    fn url_rendering() {
        let req = HttpRequest::get("/s.php", &[("a", "7"), ("b", "x")]);
        assert_eq!(req.url(), "/s.php?a=7&b=x");
        let bare = HttpRequest::get("/s.php", &[]);
        assert_eq!(bare.url(), "/s.php");
    }

    #[test]
    fn cookies() {
        let req = HttpRequest::get("/s.php", &[]).with_cookie("sess", "u1");
        assert_eq!(req.cookie("sess"), Some("u1"));
        assert_eq!(req.cookie("other"), None);
    }

    #[test]
    fn request_wire_roundtrip() {
        let req = HttpRequest::post("/p.php", &[("q", "1")], &[("body", "text")])
            .with_cookie("sess", "u9");
        let bytes = req.to_wire_bytes();
        assert_eq!(HttpRequest::from_wire_bytes(&bytes).unwrap(), req);
    }

    #[test]
    fn response_wire_roundtrip() {
        let resp = HttpResponse {
            rid_label: RequestId(88),
            status: 404,
            headers: vec![("Set-Cookie".into(), "sess=u1".into())],
            body: "not found".into(),
        };
        let bytes = resp.to_wire_bytes();
        assert_eq!(HttpResponse::from_wire_bytes(&bytes).unwrap(), resp);
    }

    #[test]
    fn wire_size_is_positive_and_monotone_in_body() {
        let small = HttpResponse::ok(RequestId(1), "a");
        let large = HttpResponse::ok(RequestId(1), "a".repeat(1000));
        assert!(small.wire_size() > 0);
        assert!(large.wire_size() > small.wire_size());
    }
}
