//! Audit-time versioned key-value store (§4.5, §A.7).
//!
//! Re-executing a `KvGet` by walking backward through the whole log would
//! be slow; instead the verifier builds, once per audit, a map from key to
//! the ordered list of `(seq, value)` writes. `get(key, s)` then answers
//! "what would a replay of log entries `1 .. s-1` return for `key`?" with
//! one binary search — exactly the requirement stated in §A.7.

use crate::object::OpContents;
use crate::oplog::OpLog;
use orochi_common::ids::SeqNum;
use std::collections::HashMap;

/// `(seq, value-or-tombstone)` pairs in increasing seq order.
type VersionList = Vec<(u64, Option<Vec<u8>>)>;

/// Versioned view over one key-value object's operation log.
///
/// # Examples
///
/// ```
/// use orochi_common::ids::{OpNum, RequestId, SeqNum};
/// use orochi_state::{OpContents, OpLog, OpLogEntry, VersionedKv};
///
/// let mut log = OpLog::new();
/// log.push(OpLogEntry {
///     rid: RequestId(1),
///     opnum: OpNum(1),
///     contents: OpContents::KvSet { key: "k".into(), value: Some(vec![1]) },
/// });
/// log.push(OpLogEntry {
///     rid: RequestId(2),
///     opnum: OpNum(1),
///     contents: OpContents::KvGet { key: "k".into() },
/// });
/// let kv = VersionedKv::build(&log);
/// // The get at seq 2 sees the set at seq 1.
/// assert_eq!(kv.get("k", SeqNum(2)), Some(vec![1]));
/// // Nothing is visible at seq 1 (writes strictly before).
/// assert_eq!(kv.get("k", SeqNum(1)), None);
/// ```
#[derive(Debug, Default)]
pub struct VersionedKv {
    /// Per key: the ordered write history.
    versions: HashMap<String, VersionList>,
}

// Every read path (`get`, `has_write_before`, `num_keys`, ...) takes
// `&self`, so a built view can be shared across the parallel audit's
// worker threads without locking. Guard that property at compile time.
const _: fn() = || {
    fn shareable<T: Send + Sync>() {}
    shareable::<VersionedKv>();
};

impl VersionedKv {
    /// Builds the versioned map from all `KvSet` operations in `log`
    /// (the paper's `kv.Build(OL_i)`, Fig. 12 line 5).
    ///
    /// Entries of other types are ignored here; every re-executed
    /// operation is still checked against its own log entry by `CheckOp`,
    /// so a log that mixes in foreign optypes cannot smuggle anything past
    /// the audit.
    pub fn build(log: &OpLog) -> Self {
        let mut versions: HashMap<String, VersionList> = HashMap::new();
        for (seq, entry) in log.iter() {
            if let OpContents::KvSet { key, value } = &entry.contents {
                versions
                    .entry(key.clone())
                    .or_default()
                    .push((seq.0, value.clone()));
            }
        }
        // Log iteration is in increasing seq order, so each vector is
        // already sorted.
        Self { versions }
    }

    /// Returns the value the key held just before log position `s`: the
    /// `KvSet` to `key` with the highest seq strictly less than `s`
    /// (`None` if there is no such set, or it was a delete).
    pub fn get(&self, key: &str, s: SeqNum) -> Option<Vec<u8>> {
        let writes = self.versions.get(key)?;
        // Binary search for the first write with seq >= s; the write just
        // before it is the visible one.
        let idx = writes.partition_point(|(seq, _)| *seq < s.0);
        if idx == 0 {
            return None;
        }
        writes[idx - 1].1.clone()
    }

    /// True if some `KvSet` to `key` appears strictly before log
    /// position `s`. When false, a read at `s` sees the store's *initial*
    /// state (the verifier carries it over from the previous audit,
    /// §4.1).
    pub fn has_write_before(&self, key: &str, s: SeqNum) -> bool {
        self.versions
            .get(key)
            .is_some_and(|writes| writes.first().is_some_and(|(seq, _)| *seq < s.0))
    }

    /// Number of distinct keys ever written.
    pub fn num_keys(&self) -> usize {
        self.versions.len()
    }

    /// Total number of stored versions (the audit-time space cost).
    pub fn num_versions(&self) -> usize {
        self.versions.values().map(Vec::len).sum()
    }

    /// The final value of every key after the whole log — the "latest
    /// state" the verifier keeps after the audit (§5.1).
    pub fn final_state(&self) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = self
            .versions
            .iter()
            .filter_map(|(k, writes)| {
                writes
                    .last()
                    .and_then(|(_, v)| v.clone())
                    .map(|v| (k.clone(), v))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplog::OpLogEntry;
    use orochi_common::ids::{OpNum, RequestId};

    fn set(log: &mut OpLog, key: &str, value: Option<Vec<u8>>) -> SeqNum {
        log.push(OpLogEntry {
            rid: RequestId(1),
            opnum: OpNum(1),
            contents: OpContents::KvSet {
                key: key.into(),
                value,
            },
        })
    }

    fn get_entry(log: &mut OpLog, key: &str) -> SeqNum {
        log.push(OpLogEntry {
            rid: RequestId(1),
            opnum: OpNum(1),
            contents: OpContents::KvGet { key: key.into() },
        })
    }

    /// Model-based check: `get(k, s)` must equal replaying entries
    /// `1..s-1` into a plain map and then reading `k`.
    fn replay_prefix(log: &OpLog, key: &str, s: SeqNum) -> Option<Vec<u8>> {
        let mut map: HashMap<String, Vec<u8>> = HashMap::new();
        for (seq, entry) in log.iter() {
            if seq.0 >= s.0 {
                break;
            }
            if let OpContents::KvSet { key: k, value } = &entry.contents {
                match value {
                    Some(v) => {
                        map.insert(k.clone(), v.clone());
                    }
                    None => {
                        map.remove(k);
                    }
                }
            }
        }
        map.get(key).cloned()
    }

    #[test]
    fn matches_replay_model_on_interleaved_log() {
        let mut log = OpLog::new();
        set(&mut log, "a", Some(vec![1]));
        get_entry(&mut log, "a");
        set(&mut log, "b", Some(vec![2]));
        set(&mut log, "a", Some(vec![3]));
        set(&mut log, "b", None);
        get_entry(&mut log, "b");
        set(&mut log, "a", None);
        let kv = VersionedKv::build(&log);
        for s in 1..=(log.len() as u64 + 1) {
            for key in ["a", "b", "missing"] {
                assert_eq!(
                    kv.get(key, SeqNum(s)),
                    replay_prefix(&log, key, SeqNum(s)),
                    "key={key} s={s}"
                );
            }
        }
    }

    #[test]
    fn delete_produces_none() {
        let mut log = OpLog::new();
        set(&mut log, "k", Some(vec![9]));
        set(&mut log, "k", None);
        let kv = VersionedKv::build(&log);
        assert_eq!(kv.get("k", SeqNum(2)), Some(vec![9]));
        assert_eq!(kv.get("k", SeqNum(3)), None);
    }

    #[test]
    fn final_state_excludes_tombstones() {
        let mut log = OpLog::new();
        set(&mut log, "live", Some(vec![1]));
        set(&mut log, "dead", Some(vec![2]));
        set(&mut log, "dead", None);
        let kv = VersionedKv::build(&log);
        assert_eq!(kv.final_state(), vec![("live".to_string(), vec![1])]);
        assert_eq!(kv.num_keys(), 2);
        assert_eq!(kv.num_versions(), 3);
    }

    #[test]
    fn ignores_foreign_optypes() {
        let mut log = OpLog::new();
        log.push(OpLogEntry {
            rid: RequestId(1),
            opnum: OpNum(1),
            contents: OpContents::RegisterWrite { value: vec![5] },
        });
        set(&mut log, "k", Some(vec![1]));
        let kv = VersionedKv::build(&log);
        assert_eq!(kv.get("k", SeqNum(3)), Some(vec![1]));
        assert_eq!(kv.num_versions(), 1);
    }
}
