//! The record library: per-thread sub-logs and the stitching daemon.
//!
//! OROCHI's server logs each connection's operations locally and a
//! *stitching daemon* later merges the sub-logs into the per-object
//! operation logs, ordered by the sequence numbers the objects assigned
//! (§4.7). We reproduce that structure: worker threads append to private
//! sub-logs without contention; [`Recorder::stitch`] groups entries by
//! object name and sorts by sequence number.
//!
//! Everything here runs on the *untrusted* side of the audit: a broken or
//! malicious recorder yields reports the verifier rejects, never reports
//! the verifier wrongly accepts.

use crate::object::{ObjectName, OpContents};
use crate::oplog::{OpLog, OpLogEntry, OpLogs};
use orochi_common::ids::{OpNum, RequestId, SeqNum};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shard assignment for the sharded stitch: FNV-1a over the object
/// name. Deterministic (unlike `HashMap`'s randomized hasher), so a
/// worker's object set is stable across runs — only performance depends
/// on the assignment, never the stitched output.
fn shard_of(name: &ObjectName, shards: usize) -> usize {
    (orochi_common::hash::fnv1a(name.as_str().as_bytes()) % shards as u64) as usize
}

/// One recorded operation, tagged with the object that performed it and
/// the sequence number the object assigned at its linearization point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubLogEntry {
    /// The object the operation targeted.
    pub object: ObjectName,
    /// Sequence number assigned by the object.
    pub seq: SeqNum,
    /// The log entry payload.
    pub entry: OpLogEntry,
}

/// A handle to one thread's private sub-log.
#[derive(Debug, Clone)]
pub struct SubLog {
    entries: Arc<Mutex<Vec<SubLogEntry>>>,
}

impl SubLog {
    /// Records one operation.
    pub fn record(
        &self,
        object: ObjectName,
        seq: SeqNum,
        rid: RequestId,
        opnum: OpNum,
        contents: OpContents,
    ) {
        self.entries.lock().push(SubLogEntry {
            object,
            seq,
            entry: OpLogEntry {
                rid,
                opnum,
                contents,
            },
        });
    }

    /// Number of entries recorded through this handle.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Collects sub-logs from worker threads and stitches them into the
/// per-object [`OpLogs`] report.
///
/// # Examples
///
/// ```
/// use orochi_common::ids::{OpNum, RequestId, SeqNum};
/// use orochi_state::{ObjectName, OpContents, Recorder};
///
/// let recorder = Recorder::new();
/// let sublog = recorder.new_sublog();
/// sublog.record(
///     ObjectName::kv("apc"),
///     SeqNum(1),
///     RequestId(1),
///     OpNum(1),
///     OpContents::KvGet { key: "k".into() },
/// );
/// let logs = recorder.stitch();
/// assert_eq!(logs.total_ops(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    sublogs: Mutex<Vec<SubLog>>,
}

impl Recorder {
    /// Creates a recorder with no sub-logs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new sub-log handle for a worker thread.
    pub fn new_sublog(&self) -> SubLog {
        let sublog = SubLog {
            entries: Arc::new(Mutex::new(Vec::new())),
        };
        self.sublogs.lock().push(sublog.clone());
        sublog
    }

    /// Merges all sub-logs into per-object logs ordered by sequence
    /// number (the stitching daemon of §4.7). Sequential; equivalent to
    /// [`Recorder::stitch_with`] at one thread.
    pub fn stitch(&self) -> OpLogs {
        self.stitch_with(1)
    }

    /// The stitching daemon, sharded by object across `threads` scoped
    /// workers (mirroring the audit prologue's sharded store builds):
    /// each worker scans every sub-log but collects, sorts, and
    /// assembles only the objects hashing into its shard, so the
    /// clone-and-sort cost — the bulk of report assembly — splits across
    /// the pool. (The scan itself is repeated per worker, but it is a
    /// hash-and-skip over borrowed entries; the allocations are not.)
    /// The output is byte-identical at every thread count: entries are
    /// sorted by the sequence numbers the objects assigned, the final
    /// per-object logs are ordered by name, and every worker walks the
    /// sub-logs in the same order as the sequential pass so even
    /// duplicate sequence numbers (possible only in a hostile report —
    /// the audit rejects them) tie-break identically.
    pub fn stitch_with(&self, threads: usize) -> OpLogs {
        let sublogs = self.sublogs.lock();
        let threads = threads.max(1);
        let mut stitched: Vec<(ObjectName, OpLog)> = if threads >= 2 && sublogs.len() >= 2 {
            let shards: std::sync::Mutex<Vec<(ObjectName, OpLog)>> =
                std::sync::Mutex::new(Vec::new());
            // Lock every sub-log once up front and hand the workers
            // borrowed slices: the guards live on this stack frame for
            // the whole scope, so the worker scans are lock-free (no
            // convoy from every worker walking the logs in the same
            // order) and writers stay excluded for the duration.
            let guards: Vec<_> = sublogs.iter().map(|s| s.entries.lock()).collect();
            let slices: Vec<&[SubLogEntry]> = guards.iter().map(|g| g.as_slice()).collect();
            crossbeam::thread::scope(|s| {
                for w in 0..threads {
                    let shards = &shards;
                    let slices = &slices;
                    s.spawn(move |_| {
                        let mut mine: HashMap<ObjectName, Vec<(SeqNum, OpLogEntry)>> =
                            HashMap::new();
                        for entries in slices {
                            for item in entries.iter() {
                                if shard_of(&item.object, threads) != w {
                                    continue;
                                }
                                mine.entry(item.object.clone())
                                    .or_default()
                                    .push((item.seq, item.entry.clone()));
                            }
                        }
                        let mut built: Vec<(ObjectName, OpLog)> = mine
                            .into_iter()
                            .map(|(name, mut entries)| {
                                entries.sort_by_key(|(seq, _)| *seq);
                                (
                                    name,
                                    OpLog::from_entries(
                                        entries.into_iter().map(|(_, e)| e).collect(),
                                    ),
                                )
                            })
                            .collect();
                        shards
                            .lock()
                            .expect("stitch collector poisoned")
                            .append(&mut built);
                    });
                }
            })
            .expect("stitch pool");
            shards.into_inner().expect("stitch collector poisoned")
        } else {
            let mut per_object: HashMap<ObjectName, Vec<(SeqNum, OpLogEntry)>> = HashMap::new();
            for sublog in sublogs.iter() {
                for item in sublog.entries.lock().iter() {
                    per_object
                        .entry(item.object.clone())
                        .or_default()
                        .push((item.seq, item.entry.clone()));
                }
            }
            per_object
                .into_iter()
                .map(|(name, mut entries)| {
                    entries.sort_by_key(|(seq, _)| *seq);
                    (
                        name,
                        OpLog::from_entries(entries.into_iter().map(|(_, e)| e).collect()),
                    )
                })
                .collect()
        };
        // Deterministic report order: objects sorted by name.
        stitched.sort_by(|a, b| a.0.cmp(&b.0));
        let mut logs = OpLogs::new();
        for (name, log) in stitched {
            logs.push(name, log);
        }
        logs
    }

    /// Total operations recorded so far across all sub-logs.
    pub fn total_recorded(&self) -> usize {
        self.sublogs.lock().iter().map(SubLog::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn stitch_orders_by_seq_within_object() {
        let recorder = Recorder::new();
        let a = recorder.new_sublog();
        let b = recorder.new_sublog();
        // Thread b's op linearized first (seq 1) even though recorded into
        // a different sub-log.
        b.record(
            ObjectName::kv("apc"),
            SeqNum(1),
            RequestId(2),
            OpNum(1),
            OpContents::KvGet { key: "x".into() },
        );
        a.record(
            ObjectName::kv("apc"),
            SeqNum(2),
            RequestId(1),
            OpNum(1),
            OpContents::KvSet {
                key: "x".into(),
                value: Some(vec![1]),
            },
        );
        let logs = recorder.stitch();
        let log = logs.log(0).unwrap();
        assert_eq!(log.get(SeqNum(1)).unwrap().rid, RequestId(2));
        assert_eq!(log.get(SeqNum(2)).unwrap().rid, RequestId(1));
    }

    #[test]
    fn stitch_separates_objects_sorted_by_name() {
        let recorder = Recorder::new();
        let s = recorder.new_sublog();
        s.record(
            ObjectName::session("zed"),
            SeqNum(1),
            RequestId(1),
            OpNum(1),
            OpContents::RegisterRead,
        );
        s.record(
            ObjectName::db("main"),
            SeqNum(1),
            RequestId(1),
            OpNum(2),
            OpContents::DbOp {
                queries: vec!["SELECT 1".into()],
                succeeded: true,
                write_results: vec![None],
            },
        );
        let logs = recorder.stitch();
        assert_eq!(logs.len(), 2);
        assert_eq!(logs.name(0).unwrap().as_str(), "db:main");
        assert_eq!(logs.name(1).unwrap().as_str(), "reg:sess:zed");
    }

    #[test]
    fn concurrent_recording_stitches_densely() {
        let recorder = Arc::new(Recorder::new());
        let seq_counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let recorder = Arc::clone(&recorder);
            let seq_counter = Arc::clone(&seq_counter);
            handles.push(thread::spawn(move || {
                let sublog = recorder.new_sublog();
                for i in 0..100u64 {
                    let seq = {
                        let mut c = seq_counter.lock();
                        *c += 1;
                        SeqNum(*c)
                    };
                    sublog.record(
                        ObjectName::kv("apc"),
                        seq,
                        RequestId(t * 1000 + i),
                        OpNum(1),
                        OpContents::KvGet { key: "k".into() },
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let logs = recorder.stitch();
        let log = logs.log(0).unwrap();
        assert_eq!(log.len(), 800);
        // Entries must be stitched in exact seq order: positions are
        // dense 1..=800 and we placed seq s at position s.
        for (pos, (seq, _)) in log.iter().enumerate() {
            assert_eq!(seq.0, pos as u64 + 1);
        }
    }

    #[test]
    fn empty_recorder_stitches_to_empty_logs() {
        let recorder = Recorder::new();
        let logs = recorder.stitch();
        assert!(logs.is_empty());
        assert_eq!(recorder.total_recorded(), 0);
    }

    /// A recorder with many objects spread over many sub-logs, the
    /// shape the sharded stitch is built for.
    fn busy_recorder() -> Recorder {
        let recorder = Recorder::new();
        let mut seq_per_object: HashMap<String, u64> = HashMap::new();
        for r in 0..40u64 {
            let sublog = recorder.new_sublog();
            for i in 0..25u64 {
                let object = match i % 3 {
                    0 => ObjectName::kv("apc"),
                    1 => ObjectName::session(&format!("c{}", (r * 25 + i) % 17)),
                    _ => ObjectName::db("main"),
                };
                let seq = seq_per_object
                    .entry(object.as_str().to_string())
                    .or_insert(0);
                *seq += 1;
                sublog.record(
                    object,
                    SeqNum(*seq),
                    RequestId(r * 100 + i),
                    OpNum(1),
                    OpContents::KvGet {
                        key: format!("k{i}"),
                    },
                );
            }
        }
        recorder
    }

    #[test]
    fn sharded_stitch_is_identical_at_every_thread_count() {
        let recorder = busy_recorder();
        let sequential = recorder.stitch_with(1);
        for threads in [2, 3, 8] {
            let sharded = recorder.stitch_with(threads);
            assert_eq!(
                sequential, sharded,
                "sharded stitch diverged at {threads} threads"
            );
        }
        assert_eq!(sequential.total_ops(), 40 * 25);
    }

    #[test]
    fn sharded_stitch_tie_breaks_duplicate_seqs_like_sequential() {
        // A hostile recorder can assign the same sequence number twice
        // (the audit rejects such reports later); the stitch must still
        // be deterministic across thread counts, tie-breaking by
        // sub-log order exactly like the sequential pass.
        let recorder = Recorder::new();
        let a = recorder.new_sublog();
        let b = recorder.new_sublog();
        for (sublog, rid) in [(&a, 1u64), (&b, 2u64)] {
            for seq in 1..=5u64 {
                sublog.record(
                    ObjectName::kv("apc"),
                    SeqNum(seq),
                    RequestId(rid),
                    OpNum(seq as u32),
                    OpContents::KvGet { key: "k".into() },
                );
            }
        }
        let sequential = recorder.stitch_with(1);
        for threads in [2, 4, 8] {
            assert_eq!(sequential, recorder.stitch_with(threads));
        }
    }

    #[test]
    fn sharded_stitch_with_one_object_still_matches() {
        // Fewer objects than workers: most shards are empty.
        let recorder = Recorder::new();
        let sublog = recorder.new_sublog();
        for i in 1..=10u64 {
            sublog.record(
                ObjectName::kv("apc"),
                SeqNum(i),
                RequestId(i),
                OpNum(1),
                OpContents::KvGet { key: "k".into() },
            );
        }
        assert_eq!(recorder.stitch_with(1), recorder.stitch_with(8));
    }
}
