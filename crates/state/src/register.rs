//! Atomic registers: the object type backing per-user session data.
//!
//! Registers expose a read/write interface with atomic semantics
//! (§3.2, citing Lamport's atomic registers). OROCHI uses them for PHP
//! "session data": per-user persistent state indexed by browser cookie
//! (§4.4). Constructing the session variable is the read; the runtime
//! writes the register at the end of a request.
//!
//! Each register assigns a sequence number to every operation *inside its
//! critical section*, so the sequence order equals the linearization
//! order; the record library needs this to assemble truthful logs.

use orochi_common::ids::SeqNum;
use orochi_obs::LazyCounter;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Directory-shard lock acquisitions in the register bank, a
/// contention proxy the telemetry layer exports.
static REGISTER_SHARD_LOCKS: LazyCounter = LazyCounter::new("register_shard_lock_total");

#[derive(Debug, Default)]
struct RegisterInner {
    value: Option<Vec<u8>>,
    next_seq: u64,
}

/// A single atomic register holding an opaque byte value.
///
/// # Examples
///
/// ```
/// use orochi_state::AtomicRegister;
///
/// let reg = AtomicRegister::new();
/// let (old, _s1) = reg.read();
/// assert_eq!(old, None);
/// let _s2 = reg.write(vec![1, 2]);
/// let (now, _s3) = reg.read();
/// assert_eq!(now, Some(vec![1, 2]));
/// ```
#[derive(Debug, Default)]
pub struct AtomicRegister {
    inner: Mutex<RegisterInner>,
}

impl AtomicRegister {
    /// Creates an empty register (reads return `None` until written).
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically reads the register, returning the current value and the
    /// operation's sequence number.
    pub fn read(&self) -> (Option<Vec<u8>>, SeqNum) {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        (inner.value.clone(), SeqNum(inner.next_seq))
    }

    /// Atomically writes the register, returning the operation's sequence
    /// number.
    pub fn write(&self, value: Vec<u8>) -> SeqNum {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        inner.value = Some(value);
        SeqNum(inner.next_seq)
    }

    /// Returns the current value without consuming a sequence number
    /// (used to snapshot final state after the audit period).
    pub fn peek(&self) -> Option<Vec<u8>> {
        self.inner.lock().value.clone()
    }
}

/// Default stripe count for the bank's name → register directory.
pub const DEFAULT_BANK_SHARDS: usize = 16;

/// One directory shard behind its own lock.
type BankShard = Mutex<HashMap<String, Arc<AtomicRegister>>>;

/// A bank of named registers created on demand.
///
/// The online server holds one bank; each session cookie maps to one
/// register. The directory is **lock-striped** — names hash (FNV-1a) to
/// one of N shards — so concurrent sessions only contend on a lock when
/// their names share a shard, and never once they hold their
/// [`AtomicRegister`]s. Each register remains its own §4.4 object with
/// its own per-object sequence counter (assigned inside the register's
/// critical section), so per-object linearization order is untouched by
/// how the directory is striped.
#[derive(Debug)]
pub struct RegisterBank {
    shards: Box<[BankShard]>,
}

impl Default for RegisterBank {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterBank {
    /// Creates an empty bank with the default stripe count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_BANK_SHARDS)
    }

    /// Creates an empty bank striped over `shards` directory locks (`1`
    /// is the single-lock reference the striping proptests compare
    /// against).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, name: &str) -> &BankShard {
        let h = orochi_common::hash::fnv1a(name.as_bytes());
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Returns the register named `name`, creating it if absent.
    pub fn get_or_create(&self, name: &str) -> Arc<AtomicRegister> {
        REGISTER_SHARD_LOCKS.inc();
        let mut map = self.shard(name).lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicRegister::new())),
        )
    }

    /// Snapshot of all register names and final values (post-audit state
    /// hand-off, §4.1 "persistent objects").
    pub fn snapshot(&self) -> Vec<(String, Option<Vec<u8>>)> {
        let mut out: Vec<(String, Option<Vec<u8>>)> = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.lock();
            out.extend(map.iter().map(|(name, reg)| (name.clone(), reg.peek())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of registers materialized so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no register has been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn seq_numbers_are_dense_and_ordered() {
        let reg = AtomicRegister::new();
        let (_, s1) = reg.read();
        let s2 = reg.write(vec![1]);
        let (_, s3) = reg.read();
        assert_eq!((s1, s2, s3), (SeqNum(1), SeqNum(2), SeqNum(3)));
    }

    #[test]
    fn concurrent_ops_get_unique_seqs() {
        let reg = Arc::new(AtomicRegister::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(thread::spawn(move || {
                let mut seqs = Vec::new();
                for i in 0..100 {
                    if (t + i) % 2 == 0 {
                        seqs.push(reg.write(vec![t as u8]));
                    } else {
                        seqs.push(reg.read().1);
                    }
                }
                seqs
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .map(|s| s.0)
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=800).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn bank_returns_same_register_for_same_name() {
        let bank = RegisterBank::new();
        let a = bank.get_or_create("sess:u1");
        let b = bank.get_or_create("sess:u1");
        a.write(vec![42]);
        assert_eq!(b.peek(), Some(vec![42]));
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn striped_bank_isolates_names_like_single_lock() {
        for shards in [1, 4, 16] {
            let bank = RegisterBank::with_shards(shards);
            let mut handles = Vec::new();
            let bank = Arc::new(bank);
            for t in 0..4u8 {
                let bank = Arc::clone(&bank);
                handles.push(thread::spawn(move || {
                    for i in 0..50u8 {
                        bank.get_or_create(&format!("sess:u{}", i % 9))
                            .write(vec![t, i]);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(bank.len(), 9, "shards {shards}");
            // Each register assigned dense per-object seqs: 4*50 writes
            // spread over 9 names; a fresh read's seq is count+1.
            let total: u64 = (0..9u8)
                .map(|i| bank.get_or_create(&format!("sess:u{i}")).read().1 .0 - 1)
                .sum();
            assert_eq!(total, 200, "shards {shards}");
        }
    }

    #[test]
    fn bank_snapshot_sorted_by_name() {
        let bank = RegisterBank::new();
        bank.get_or_create("b").write(vec![2]);
        bank.get_or_create("a").write(vec![1]);
        let snap = bank.snapshot();
        assert_eq!(
            snap,
            vec![
                ("a".to_string(), Some(vec![1])),
                ("b".to_string(), Some(vec![2]))
            ]
        );
    }
}
