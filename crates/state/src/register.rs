//! Atomic registers: the object type backing per-user session data.
//!
//! Registers expose a read/write interface with atomic semantics
//! (§3.2, citing Lamport's atomic registers). OROCHI uses them for PHP
//! "session data": per-user persistent state indexed by browser cookie
//! (§4.4). Constructing the session variable is the read; the runtime
//! writes the register at the end of a request.
//!
//! Each register assigns a sequence number to every operation *inside its
//! critical section*, so the sequence order equals the linearization
//! order; the record library needs this to assemble truthful logs.

use orochi_common::ids::SeqNum;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Default)]
struct RegisterInner {
    value: Option<Vec<u8>>,
    next_seq: u64,
}

/// A single atomic register holding an opaque byte value.
///
/// # Examples
///
/// ```
/// use orochi_state::AtomicRegister;
///
/// let reg = AtomicRegister::new();
/// let (old, _s1) = reg.read();
/// assert_eq!(old, None);
/// let _s2 = reg.write(vec![1, 2]);
/// let (now, _s3) = reg.read();
/// assert_eq!(now, Some(vec![1, 2]));
/// ```
#[derive(Debug, Default)]
pub struct AtomicRegister {
    inner: Mutex<RegisterInner>,
}

impl AtomicRegister {
    /// Creates an empty register (reads return `None` until written).
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically reads the register, returning the current value and the
    /// operation's sequence number.
    pub fn read(&self) -> (Option<Vec<u8>>, SeqNum) {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        (inner.value.clone(), SeqNum(inner.next_seq))
    }

    /// Atomically writes the register, returning the operation's sequence
    /// number.
    pub fn write(&self, value: Vec<u8>) -> SeqNum {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        inner.value = Some(value);
        SeqNum(inner.next_seq)
    }

    /// Returns the current value without consuming a sequence number
    /// (used to snapshot final state after the audit period).
    pub fn peek(&self) -> Option<Vec<u8>> {
        self.inner.lock().value.clone()
    }
}

/// A bank of named registers created on demand.
///
/// The online server holds one bank; each session cookie maps to one
/// register.
#[derive(Debug, Default)]
pub struct RegisterBank {
    registers: Mutex<HashMap<String, Arc<AtomicRegister>>>,
}

impl RegisterBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the register named `name`, creating it if absent.
    pub fn get_or_create(&self, name: &str) -> Arc<AtomicRegister> {
        let mut map = self.registers.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicRegister::new())),
        )
    }

    /// Snapshot of all register names and final values (post-audit state
    /// hand-off, §4.1 "persistent objects").
    pub fn snapshot(&self) -> Vec<(String, Option<Vec<u8>>)> {
        let map = self.registers.lock();
        let mut out: Vec<_> = map
            .iter()
            .map(|(name, reg)| (name.clone(), reg.peek()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of registers materialized so far.
    pub fn len(&self) -> usize {
        self.registers.lock().len()
    }

    /// True if no register has been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn seq_numbers_are_dense_and_ordered() {
        let reg = AtomicRegister::new();
        let (_, s1) = reg.read();
        let s2 = reg.write(vec![1]);
        let (_, s3) = reg.read();
        assert_eq!((s1, s2, s3), (SeqNum(1), SeqNum(2), SeqNum(3)));
    }

    #[test]
    fn concurrent_ops_get_unique_seqs() {
        let reg = Arc::new(AtomicRegister::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(thread::spawn(move || {
                let mut seqs = Vec::new();
                for i in 0..100 {
                    if (t + i) % 2 == 0 {
                        seqs.push(reg.write(vec![t as u8]));
                    } else {
                        seqs.push(reg.read().1);
                    }
                }
                seqs
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .map(|s| s.0)
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=800).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn bank_returns_same_register_for_same_name() {
        let bank = RegisterBank::new();
        let a = bank.get_or_create("sess:u1");
        let b = bank.get_or_create("sess:u1");
        a.write(vec![42]);
        assert_eq!(b.peek(), Some(vec![42]));
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn bank_snapshot_sorted_by_name() {
        let bank = RegisterBank::new();
        bank.get_or_create("b").write(vec![2]);
        bank.get_or_create("a").write(vec![1]);
        let snap = bank.snapshot();
        assert_eq!(
            snap,
            vec![
                ("a".to_string(), Some(vec![1])),
                ("b".to_string(), Some(vec![2]))
            ]
        );
    }
}
