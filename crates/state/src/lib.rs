//! Shared objects and operation logs.
//!
//! In the paper's model (§3.2), concurrent request executions interact
//! through *shared objects* with atomic semantics. OROCHI supports three
//! object types (§4.4):
//!
//! * **atomic registers** — per-user session data ([`register`]),
//! * **linearizable key-value stores** — the APC-style cache ([`kv`]),
//! * **SQL databases** — implemented in the separate `orochi-sqldb` crate.
//!
//! For the audit, the executor maintains an *operation log* per object
//! (§3.3): an ordered list of `(requestID, opnum, optype, opcontents)`
//! entries ([`oplog`]). Online, each object assigns a global sequence
//! number at its linearization point and the record library keeps
//! per-thread sub-logs that a stitcher later merges (§4.7) — see
//! [`recorder`].
//!
//! At audit time, reads are *simulated* from the logs. For registers this
//! is a backward walk to the latest write; for the key-value store the
//! verifier builds a versioned map first (§4.5, §A.7) — see
//! [`versioned_kv`].
//!
//! Objects are identified by canonical *names* (`"reg:sess:alice"`,
//! `"kv:apc"`, `"db:main"`). The reports carry one log per name; the
//! verifier never needs a trusted directory because re-execution itself
//! generates the target name of every operation and `CheckOp` compares it
//! against the log that claims the operation.

pub mod kv;
pub mod object;
pub mod oplog;
pub mod recorder;
pub mod register;
pub mod versioned_kv;

pub use kv::KvStore;
pub use object::{DbWriteResult, ObjectName, OpContents, OpType};
pub use oplog::{OpLog, OpLogEntry, OpLogs};
pub use recorder::{Recorder, SubLogEntry};
pub use register::{AtomicRegister, RegisterBank};
pub use versioned_kv::VersionedKv;
