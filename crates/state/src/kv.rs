//! Linearizable key-value store: the object type behind OROCHI's APC.
//!
//! PHP applications use shared-memory caches (the Alternative PHP Cache
//! and friends); OROCHI models them as a key-value store exposing a
//! single-key get/set interface with linearizable semantics (§4.4).
//!
//! The map is **lock-striped**: keys hash (FNV-1a, deterministic) to one
//! of N shards, each behind its own mutex, so operations on different
//! shards never contend. The store still assigns **one** per-object
//! sequence counter — a global atomic fetched *inside* the owning
//! shard's critical section — because the whole store is a single §4.4
//! object (`"kv:apc"`) whose operation log the audit consumes in one
//! total order. That order is a valid linearization: per key, seqs are
//! drawn under the key's shard lock, so they increase in the key's
//! lock-acquisition (= linearization) order; across keys, the counter's
//! modification order respects real time (an operation that completes
//! before another begins holds the smaller seq). Everything the audit's
//! prev-write indexes and versioned-KV build ever consult — per-key
//! read/write order within the per-object log — is exactly what a
//! single-lock store would have recorded.

use orochi_common::hash::fnv1a;
use orochi_common::ids::SeqNum;
use orochi_obs::LazyCounter;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shard-lock acquisitions on the KV hot path (get/set), a contention
/// proxy the telemetry layer exports.
static KV_SHARD_LOCKS: LazyCounter = LazyCounter::new("kv_shard_lock_total");

/// Default shard count: a power of two comfortably above typical
/// serving-pool sizes. More shards only cost a few empty `HashMap`s.
pub const DEFAULT_KV_SHARDS: usize = 16;

/// One map shard behind its own lock.
type KvShard = Mutex<HashMap<String, Vec<u8>>>;

/// A linearizable key-value store over opaque byte values.
///
/// # Examples
///
/// ```
/// use orochi_state::KvStore;
///
/// let kv = KvStore::new();
/// kv.set("k", Some(vec![7]));
/// let (v, _seq) = kv.get("k");
/// assert_eq!(v, Some(vec![7]));
/// kv.set("k", None); // Delete.
/// assert_eq!(kv.get("k").0, None);
/// ```
#[derive(Debug)]
pub struct KvStore {
    next_seq: AtomicU64,
    shards: Box<[KvShard]>,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore {
    /// Creates an empty store with the default stripe count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_KV_SHARDS)
    }

    /// Creates an empty store striped over `shards` locks (`1` is the
    /// single-lock reference the striping proptests compare against).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            next_seq: AtomicU64::new(0),
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &KvShard {
        &self.shards[(fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize]
    }

    /// Atomically reads `key`, returning the value (if any) and the
    /// operation's sequence number.
    pub fn get(&self, key: &str) -> (Option<Vec<u8>>, SeqNum) {
        KV_SHARD_LOCKS.inc();
        let map = self.shard(key).lock();
        // Inside the shard lock: per-key seq order = linearization order.
        let seq = SeqNum(self.next_seq.fetch_add(1, Ordering::Relaxed) + 1);
        (map.get(key).cloned(), seq)
    }

    /// Atomically sets `key` to `value` (`None` deletes), returning the
    /// operation's sequence number.
    pub fn set(&self, key: &str, value: Option<Vec<u8>>) -> SeqNum {
        KV_SHARD_LOCKS.inc();
        let mut map = self.shard(key).lock();
        let seq = SeqNum(self.next_seq.fetch_add(1, Ordering::Relaxed) + 1);
        match value {
            Some(v) => {
                map.insert(key.to_string(), v);
            }
            None => {
                map.remove(key);
            }
        }
        seq
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no key is set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all key/value pairs, sorted by key (post-audit state
    /// hand-off).
    pub fn snapshot(&self) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.lock();
            out.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn get_set_delete() {
        let kv = KvStore::new();
        assert_eq!(kv.get("missing").0, None);
        kv.set("a", Some(vec![1]));
        assert_eq!(kv.get("a").0, Some(vec![1]));
        kv.set("a", Some(vec![2]));
        assert_eq!(kv.get("a").0, Some(vec![2]));
        kv.set("a", None);
        assert_eq!(kv.get("a").0, None);
        assert!(kv.is_empty());
    }

    #[test]
    fn seqs_are_dense_across_keys() {
        let kv = KvStore::new();
        let s1 = kv.set("a", Some(vec![1]));
        let (_, s2) = kv.get("b");
        let s3 = kv.set("c", None);
        assert_eq!((s1, s2, s3), (SeqNum(1), SeqNum(2), SeqNum(3)));
    }

    #[test]
    fn striped_and_single_lock_assign_identical_seqs_sequentially() {
        // A single-threaded op sequence draws the same seq numbers at
        // every shard count — the counter, not the stripes, carries the
        // per-object order the audit consumes.
        for shards in [1, 4, 16] {
            let kv = KvStore::with_shards(shards);
            let mut seqs = Vec::new();
            for i in 0..30u8 {
                let key = format!("k{}", i % 7);
                if i % 3 == 0 {
                    seqs.push(kv.set(&key, Some(vec![i])).0);
                } else {
                    seqs.push(kv.get(&key).1 .0);
                }
            }
            assert_eq!(seqs, (1..=30).collect::<Vec<u64>>(), "shards {shards}");
        }
    }

    #[test]
    fn concurrent_ops_unique_dense_seqs() {
        let kv = Arc::new(KvStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let kv = Arc::clone(&kv);
            handles.push(thread::spawn(move || {
                let mut seqs = Vec::new();
                for i in 0..250 {
                    let key = format!("k{}", i % 10);
                    if i % 3 == 0 {
                        seqs.push(kv.set(&key, Some(vec![t as u8])));
                    } else {
                        seqs.push(kv.get(&key).1);
                    }
                }
                seqs
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .map(|s| s.0)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (1..=1000).collect::<Vec<u64>>());
    }

    #[test]
    fn per_key_seq_order_matches_write_order_under_contention() {
        // The audit's per-key guarantee: for any single key, the seq
        // numbers must order the writes exactly as they linearized. The
        // last write by seq must be the value a final read observes.
        let kv = Arc::new(KvStore::with_shards(8));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let kv = Arc::clone(&kv);
            handles.push(thread::spawn(move || {
                (0..100u8)
                    .map(|i| (kv.set("hot", Some(vec![t, i])), vec![t, i]))
                    .collect::<Vec<_>>()
            }));
        }
        let mut writes: Vec<(SeqNum, Vec<u8>)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        writes.sort_by_key(|(seq, _)| *seq);
        let (final_value, read_seq) = kv.get("hot");
        let last_write = writes.last().unwrap();
        assert!(read_seq > last_write.0);
        assert_eq!(final_value.as_ref(), Some(&last_write.1));
    }

    #[test]
    fn snapshot_sorted() {
        let kv = KvStore::new();
        kv.set("z", Some(vec![3]));
        kv.set("a", Some(vec![1]));
        let snap = kv.snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "z");
    }
}
