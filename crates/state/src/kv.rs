//! Linearizable key-value store: the object type behind OROCHI's APC.
//!
//! PHP applications use shared-memory caches (the Alternative PHP Cache
//! and friends); OROCHI models them as a key-value store exposing a
//! single-key get/set interface with linearizable semantics (§4.4).
//! As with registers, each operation receives a sequence number inside
//! the critical section so the recorded log order matches the
//! linearization order.

use orochi_common::ids::SeqNum;
use parking_lot::Mutex;
use std::collections::HashMap;

#[derive(Debug, Default)]
struct KvInner {
    map: HashMap<String, Vec<u8>>,
    next_seq: u64,
}

/// A linearizable key-value store over opaque byte values.
///
/// # Examples
///
/// ```
/// use orochi_state::KvStore;
///
/// let kv = KvStore::new();
/// kv.set("k", Some(vec![7]));
/// let (v, _seq) = kv.get("k");
/// assert_eq!(v, Some(vec![7]));
/// kv.set("k", None); // Delete.
/// assert_eq!(kv.get("k").0, None);
/// ```
#[derive(Debug, Default)]
pub struct KvStore {
    inner: Mutex<KvInner>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically reads `key`, returning the value (if any) and the
    /// operation's sequence number.
    pub fn get(&self, key: &str) -> (Option<Vec<u8>>, SeqNum) {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        (inner.map.get(key).cloned(), SeqNum(inner.next_seq))
    }

    /// Atomically sets `key` to `value` (`None` deletes), returning the
    /// operation's sequence number.
    pub fn set(&self, key: &str, value: Option<Vec<u8>>) -> SeqNum {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        match value {
            Some(v) => {
                inner.map.insert(key.to_string(), v);
            }
            None => {
                inner.map.remove(key);
            }
        }
        SeqNum(inner.next_seq)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if no key is set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all key/value pairs, sorted by key (post-audit state
    /// hand-off).
    pub fn snapshot(&self) -> Vec<(String, Vec<u8>)> {
        let inner = self.inner.lock();
        let mut out: Vec<_> = inner
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn get_set_delete() {
        let kv = KvStore::new();
        assert_eq!(kv.get("missing").0, None);
        kv.set("a", Some(vec![1]));
        assert_eq!(kv.get("a").0, Some(vec![1]));
        kv.set("a", Some(vec![2]));
        assert_eq!(kv.get("a").0, Some(vec![2]));
        kv.set("a", None);
        assert_eq!(kv.get("a").0, None);
        assert!(kv.is_empty());
    }

    #[test]
    fn seqs_are_dense_across_keys() {
        let kv = KvStore::new();
        let s1 = kv.set("a", Some(vec![1]));
        let (_, s2) = kv.get("b");
        let s3 = kv.set("c", None);
        assert_eq!((s1, s2, s3), (SeqNum(1), SeqNum(2), SeqNum(3)));
    }

    #[test]
    fn concurrent_ops_unique_dense_seqs() {
        let kv = Arc::new(KvStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let kv = Arc::clone(&kv);
            handles.push(thread::spawn(move || {
                let mut seqs = Vec::new();
                for i in 0..250 {
                    let key = format!("k{}", i % 10);
                    if i % 3 == 0 {
                        seqs.push(kv.set(&key, Some(vec![t as u8])));
                    } else {
                        seqs.push(kv.get(&key).1);
                    }
                }
                seqs
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .map(|s| s.0)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (1..=1000).collect::<Vec<u64>>());
    }

    #[test]
    fn snapshot_sorted() {
        let kv = KvStore::new();
        kv.set("z", Some(vec![3]));
        kv.set("a", Some(vec![1]));
        let snap = kv.snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "z");
    }
}
