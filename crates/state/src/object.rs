//! Object naming and the operation vocabulary.
//!
//! Every shared object has a canonical [`ObjectName`]; every operation is
//! a `(optype, opcontents)` pair as in Fig. 12 of the paper:
//!
//! | optype        | opcontents                                      |
//! |---------------|-------------------------------------------------|
//! | RegisterRead  | empty                                           |
//! | RegisterWrite | value to write                                  |
//! | KvGet         | key to read                                     |
//! | KvSet         | key and value to write (`None` deletes the key) |
//! | DbOp          | SQL statement(s), whether succeeds              |
//!
//! For `DbOp` we additionally log the per-statement *write results*
//! (affected row count, last insert id): the paper routes database
//! nondeterminism such as auto-increment ids through the nondeterminism
//! reports (§4.6); we instead place these values in the operation log
//! entry and have the verifier's redo pass recompute and check them, which
//! turns an unverifiable report into a checked one (see DESIGN.md).

use orochi_common::codec::{Decoder, Encoder, Wire, WireError};

/// Canonical name of a shared object.
///
/// Names are produced by program logic during execution (online and
/// re-execution alike), e.g. the session register for a cookie `alice` is
/// `reg:sess:alice`. Using names as object identity removes the need for
/// any trusted object directory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectName(pub String);

impl ObjectName {
    /// The register object backing a session cookie.
    pub fn session(cookie: &str) -> Self {
        ObjectName(format!("reg:sess:{cookie}"))
    }

    /// A named key-value store (OROCHI models the APC).
    pub fn kv(store: &str) -> Self {
        ObjectName(format!("kv:{store}"))
    }

    /// A named SQL database.
    pub fn db(name: &str) -> Self {
        ObjectName(format!("db:{name}"))
    }

    /// Borrows the canonical string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Wire for ObjectName {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(&self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ObjectName(dec.str()?))
    }
}

/// The type of a state operation (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Read an atomic register.
    RegisterRead,
    /// Write an atomic register.
    RegisterWrite,
    /// Get a key from a key-value store.
    KvGet,
    /// Set (or delete) a key in a key-value store.
    KvSet,
    /// Execute a database transaction (one or more SQL statements).
    DbOp,
}

impl OpType {
    /// True for operations whose results must be simulated from the logs
    /// during re-execution (reads); writes are merely checked.
    pub fn is_read(self) -> bool {
        matches!(self, OpType::RegisterRead | OpType::KvGet)
    }
}

impl Wire for OpType {
    fn encode(&self, enc: &mut Encoder) {
        enc.byte(match self {
            OpType::RegisterRead => 0,
            OpType::RegisterWrite => 1,
            OpType::KvGet => 2,
            OpType::KvSet => 3,
            OpType::DbOp => 4,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.byte()? {
            0 => OpType::RegisterRead,
            1 => OpType::RegisterWrite,
            2 => OpType::KvGet,
            3 => OpType::KvSet,
            4 => OpType::DbOp,
            _ => return Err(WireError::Malformed("unknown optype")),
        })
    }
}

/// Result of a database *write* statement, logged alongside the statement
/// and re-checked by the verifier's redo pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DbWriteResult {
    /// Number of rows the statement inserted/updated/deleted.
    pub affected: u64,
    /// Auto-increment id assigned by an INSERT, if any.
    pub last_insert_id: Option<i64>,
}

impl Wire for DbWriteResult {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.affected);
        self.last_insert_id.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Self {
            affected: dec.u64()?,
            last_insert_id: Option::<i64>::decode(dec)?,
        })
    }
}

/// The operands of a state operation (the `opcontents` of §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpContents {
    /// Register read carries no operands.
    RegisterRead,
    /// Register write carries the value to write.
    RegisterWrite {
        /// Serialized value being written.
        value: Vec<u8>,
    },
    /// Key-value get carries the key.
    KvGet {
        /// Key to read.
        key: String,
    },
    /// Key-value set carries key and value; `None` deletes the key.
    KvSet {
        /// Key to write.
        key: String,
        /// New value, or `None` for deletion.
        value: Option<Vec<u8>>,
    },
    /// A database transaction: the SQL statements, whether the transaction
    /// committed, and the logged per-statement write results (`None` for
    /// reads).
    DbOp {
        /// SQL statements in program order.
        queries: Vec<String>,
        /// True if the transaction committed; false if it aborted.
        succeeded: bool,
        /// Per-statement write results, parallel to `queries`.
        write_results: Vec<Option<DbWriteResult>>,
    },
}

impl OpContents {
    /// The [`OpType`] tag this contents value belongs to.
    pub fn op_type(&self) -> OpType {
        match self {
            OpContents::RegisterRead => OpType::RegisterRead,
            OpContents::RegisterWrite { .. } => OpType::RegisterWrite,
            OpContents::KvGet { .. } => OpType::KvGet,
            OpContents::KvSet { .. } => OpType::KvSet,
            OpContents::DbOp { .. } => OpType::DbOp,
        }
    }
}

impl Wire for OpContents {
    fn encode(&self, enc: &mut Encoder) {
        self.op_type().encode(enc);
        match self {
            OpContents::RegisterRead => {}
            OpContents::RegisterWrite { value } => enc.bytes(value),
            OpContents::KvGet { key } => enc.str(key),
            OpContents::KvSet { key, value } => {
                enc.str(key);
                match value {
                    None => enc.bool(false),
                    Some(v) => {
                        enc.bool(true);
                        enc.bytes(v);
                    }
                }
            }
            OpContents::DbOp {
                queries,
                succeeded,
                write_results,
            } => {
                queries.encode(enc);
                enc.bool(*succeeded);
                write_results.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match OpType::decode(dec)? {
            OpType::RegisterRead => OpContents::RegisterRead,
            OpType::RegisterWrite => OpContents::RegisterWrite {
                value: dec.bytes()?,
            },
            OpType::KvGet => OpContents::KvGet { key: dec.str()? },
            OpType::KvSet => {
                let key = dec.str()?;
                let value = if dec.bool()? {
                    Some(dec.bytes()?)
                } else {
                    None
                };
                OpContents::KvSet { key, value }
            }
            OpType::DbOp => OpContents::DbOp {
                queries: Vec::<String>::decode(dec)?,
                succeeded: dec.bool()?,
                write_results: Vec::<Option<DbWriteResult>>::decode(dec)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names() {
        assert_eq!(ObjectName::session("alice").as_str(), "reg:sess:alice");
        assert_eq!(ObjectName::kv("apc").as_str(), "kv:apc");
        assert_eq!(ObjectName::db("main").as_str(), "db:main");
    }

    #[test]
    fn optype_read_classification() {
        assert!(OpType::RegisterRead.is_read());
        assert!(OpType::KvGet.is_read());
        assert!(!OpType::RegisterWrite.is_read());
        assert!(!OpType::KvSet.is_read());
        // DbOp results are simulated per-query, not per-op.
        assert!(!OpType::DbOp.is_read());
    }

    #[test]
    fn opcontents_type_tags() {
        assert_eq!(OpContents::RegisterRead.op_type(), OpType::RegisterRead);
        assert_eq!(
            OpContents::KvSet {
                key: "k".into(),
                value: None
            }
            .op_type(),
            OpType::KvSet
        );
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        let variants = vec![
            OpContents::RegisterRead,
            OpContents::RegisterWrite {
                value: vec![1, 2, 3],
            },
            OpContents::KvGet { key: "k1".into() },
            OpContents::KvSet {
                key: "k2".into(),
                value: Some(vec![9]),
            },
            OpContents::KvSet {
                key: "k3".into(),
                value: None,
            },
            OpContents::DbOp {
                queries: vec!["SELECT 1".into(), "INSERT INTO t VALUES (1)".into()],
                succeeded: true,
                write_results: vec![
                    None,
                    Some(DbWriteResult {
                        affected: 1,
                        last_insert_id: Some(7),
                    }),
                ],
            },
        ];
        for v in variants {
            let bytes = v.to_wire_bytes();
            assert_eq!(OpContents::from_wire_bytes(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn object_name_roundtrip() {
        let n = ObjectName::db("main");
        assert_eq!(ObjectName::from_wire_bytes(&n.to_wire_bytes()).unwrap(), n);
    }
}
