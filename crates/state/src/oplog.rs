//! Operation logs: the executor's (untrusted) record of state operations.
//!
//! For each shared object `i`, the executor maintains an ordered log
//! `OL_i : N+ → (requestID, opnum, optype, opcontents)` (§3.3). Logs are
//! conceptually 1-indexed — sequence number `s` corresponds to Rust index
//! `s - 1` — matching the paper's pseudocode and the `(i, seqnum)` values
//! stored in the verifier's `OpMap`.

use crate::object::{ObjectName, OpContents, OpType};
use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use orochi_common::ids::{OpNum, RequestId, SeqNum};

/// One entry of an operation log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLogEntry {
    /// The request that (allegedly) issued the operation.
    pub rid: RequestId,
    /// The per-request operation number.
    pub opnum: OpNum,
    /// The operation's operands. The `optype` of §3.3 is derivable via
    /// [`OpContents::op_type`].
    pub contents: OpContents,
}

impl OpLogEntry {
    /// The operation's type tag.
    pub fn op_type(&self) -> OpType {
        self.contents.op_type()
    }
}

impl Wire for OpLogEntry {
    fn encode(&self, enc: &mut Encoder) {
        self.rid.encode(enc);
        self.opnum.encode(enc);
        self.contents.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Self {
            rid: RequestId::decode(dec)?,
            opnum: OpNum::decode(dec)?,
            contents: OpContents::decode(dec)?,
        })
    }
}

/// The ordered operation log of one shared object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpLog {
    entries: Vec<OpLogEntry>,
}

impl OpLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a log from entries already in order.
    pub fn from_entries(entries: Vec<OpLogEntry>) -> Self {
        Self { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry, returning its 1-based sequence number.
    pub fn push(&mut self, entry: OpLogEntry) -> SeqNum {
        self.entries.push(entry);
        SeqNum(self.entries.len() as u64)
    }

    /// Fetches the entry with 1-based sequence number `seq`.
    pub fn get(&self, seq: SeqNum) -> Option<&OpLogEntry> {
        if seq.0 == 0 {
            return None;
        }
        self.entries.get((seq.0 - 1) as usize)
    }

    /// Iterates `(seq, entry)` pairs in log order.
    pub fn iter(&self) -> impl Iterator<Item = (SeqNum, &OpLogEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(idx, e)| (SeqNum(idx as u64 + 1), e))
    }

    /// Borrows the raw entry slice (0-indexed).
    pub fn entries(&self) -> &[OpLogEntry] {
        &self.entries
    }

    /// True if any entry has the given operation type. The audit
    /// prologue uses this to decide which versioned stores and indexes
    /// to build for each log before sharding the builds across the
    /// worker pool.
    pub fn contains_op_type(&self, ty: OpType) -> bool {
        self.entries.iter().any(|e| e.op_type() == ty)
    }
}

impl Wire for OpLog {
    fn encode(&self, enc: &mut Encoder) {
        self.entries.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Self {
            entries: Vec::<OpLogEntry>::decode(dec)?,
        })
    }
}

/// The full set of operation logs in a report: one `(name, log)` pair per
/// shared object, in a deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpLogs {
    logs: Vec<(ObjectName, OpLog)>,
}

impl OpLogs {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates from `(name, log)` pairs; duplicate names are rejected by
    /// the audit's report validation, not here.
    pub fn from_pairs(logs: Vec<(ObjectName, OpLog)>) -> Self {
        Self { logs }
    }

    /// Number of objects with logs.
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// True if no object has a log.
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// Total entries across all logs (the paper's `Y`).
    pub fn total_ops(&self) -> usize {
        self.logs.iter().map(|(_, l)| l.len()).sum()
    }

    /// Iterates `(index, name, log)` in report order; `index` is the
    /// object index `i` used by the audit's `OpMap`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ObjectName, &OpLog)> {
        self.logs
            .iter()
            .enumerate()
            .map(|(i, (name, log))| (i, name, log))
    }

    /// The log at object index `i`.
    pub fn log(&self, i: usize) -> Option<&OpLog> {
        self.logs.get(i).map(|(_, l)| l)
    }

    /// The object name at index `i`.
    pub fn name(&self, i: usize) -> Option<&ObjectName> {
        self.logs.get(i).map(|(n, _)| n)
    }

    /// Finds the index of the log for `name`, if present.
    pub fn index_of(&self, name: &ObjectName) -> Option<usize> {
        self.logs.iter().position(|(n, _)| n == name)
    }

    /// Mutable access for test fixtures and adversarial tampering in the
    /// soundness test battery.
    pub fn log_mut(&mut self, i: usize) -> Option<&mut OpLog> {
        self.logs.get_mut(i).map(|(_, l)| l)
    }

    /// Adds a log, returning its index.
    pub fn push(&mut self, name: ObjectName, log: OpLog) -> usize {
        self.logs.push((name, log));
        self.logs.len() - 1
    }
}

impl Wire for OpLogs {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.logs.len() as u64);
        for (name, log) in &self.logs {
            name.encode(enc);
            log.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = dec.u64()? as usize;
        if n > dec.remaining() {
            return Err(WireError::Malformed("log count exceeds buffer"));
        }
        let mut logs = Vec::with_capacity(n);
        for _ in 0..n {
            logs.push((ObjectName::decode(dec)?, OpLog::decode(dec)?));
        }
        Ok(Self { logs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rid: u64, opnum: u32) -> OpLogEntry {
        OpLogEntry {
            rid: RequestId(rid),
            opnum: OpNum(opnum),
            contents: OpContents::RegisterRead,
        }
    }

    #[test]
    fn one_indexed_sequence_numbers() {
        let mut log = OpLog::new();
        let s1 = log.push(entry(1, 1));
        let s2 = log.push(entry(2, 1));
        assert_eq!(s1, SeqNum(1));
        assert_eq!(s2, SeqNum(2));
        assert_eq!(log.get(SeqNum(1)).unwrap().rid, RequestId(1));
        assert_eq!(log.get(SeqNum(2)).unwrap().rid, RequestId(2));
        assert!(log.get(SeqNum(0)).is_none());
        assert!(log.get(SeqNum(3)).is_none());
    }

    #[test]
    fn iter_yields_seq_in_order() {
        let mut log = OpLog::new();
        log.push(entry(1, 1));
        log.push(entry(1, 2));
        let seqs: Vec<u64> = log.iter().map(|(s, _)| s.0).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn oplogs_index_by_name() {
        let mut logs = OpLogs::new();
        let i_reg = logs.push(ObjectName::session("u1"), OpLog::new());
        let i_kv = logs.push(ObjectName::kv("apc"), OpLog::new());
        assert_eq!(logs.index_of(&ObjectName::session("u1")), Some(i_reg));
        assert_eq!(logs.index_of(&ObjectName::kv("apc")), Some(i_kv));
        assert_eq!(logs.index_of(&ObjectName::db("main")), None);
        assert_eq!(logs.name(i_kv).unwrap().as_str(), "kv:apc");
    }

    #[test]
    fn total_ops_sums_all_logs() {
        let mut a = OpLog::new();
        a.push(entry(1, 1));
        a.push(entry(1, 2));
        let mut b = OpLog::new();
        b.push(entry(2, 1));
        let logs = OpLogs::from_pairs(vec![
            (ObjectName::kv("apc"), a),
            (ObjectName::db("main"), b),
        ]);
        assert_eq!(logs.total_ops(), 3);
    }

    #[test]
    fn oplogs_wire_roundtrip() {
        let mut log = OpLog::new();
        log.push(entry(1, 1));
        let logs = OpLogs::from_pairs(vec![(ObjectName::kv("apc"), log)]);
        let bytes = logs.to_wire_bytes();
        assert_eq!(OpLogs::from_wire_bytes(&bytes).unwrap(), logs);
    }
}
