//! A from-scratch SQL-subset database engine with strict serializability
//! and Warp-style versioned storage.
//!
//! SSCO requires the database to behave as **one atomic object** (§4.4):
//! the isolation level must be strict serializability, and multi-statement
//! transactions must not enclose other object operations. The paper's
//! OROCHI uses MySQL online and rebuilds a *versioned* copy at audit time
//! (borrowing Warp's schema: every row version carries a start and end
//! timestamp, and read queries are rewritten with
//! `start_ts <= ts < end_ts`), plus an in-memory versioned buffer that is
//! migrated when the redo pass finishes (§4.5, §A.7).
//!
//! This crate implements all of that from scratch:
//!
//! * [`value`] — SQL values and comparison/coercion rules.
//! * [`lexer`] / [`parser`] / [`ast`] — the SQL dialect front-end.
//! * [`schema`] — tables, column types, primary keys, auto-increment.
//! * [`engine`] — the online database: statement execution, constraint
//!   checks, transactions with rollback, and a global-lock concurrency
//!   control that provides strict serializability with per-transaction
//!   sequence numbers assigned at commit (the linearization point).
//! * [`versioned`] — the audit-time versioned store: the redo pass over
//!   an untrusted operation log (including write-result checking and
//!   aborted-transaction replay on an overlay), timestamped reads with
//!   `ts = s·MAXQ + q`, table-modification epochs for read-query
//!   deduplication, and the final-state snapshot the verifier keeps.
//!
//! The dialect covers what the three evaluation applications need:
//! `CREATE TABLE`, multi-row `INSERT`, `SELECT` with `WHERE`/`ORDER BY`/
//! `LIMIT`/`OFFSET` and aggregates, `UPDATE` with expressions, `DELETE`,
//! `LIKE`, `IN`, `IS NULL`, and arithmetic. `JOIN` and `GROUP BY` are out
//! of scope (the applications are written without them), as documented in
//! DESIGN.md.

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod schema;
pub mod value;
pub mod versioned;

pub use ast::Statement;
pub use engine::{Database, ExecOutcome, SharedDatabase, SqlError, Transaction, WriteOutcome};
pub use parser::parse_statement;
pub use schema::{ColumnDef, ColumnType, TableSchema};
pub use value::SqlValue;
pub use versioned::{RedoError, RedoStats, VersionedDb, MAXQ};
