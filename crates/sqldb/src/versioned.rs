//! The audit-time versioned database (§4.5, §A.7).
//!
//! At the beginning of an audit the verifier performs a **versioned redo
//! pass** over the database's operation log: every transaction is replayed
//! into a versioned store, with the version set to the transaction's log
//! sequence number. Following Warp's schema, every row version carries
//! `start_ts` and `end_ts` columns; during re-execution, read queries are
//! answered at version `ts` by restricting to rows with
//! `start_ts <= ts < end_ts`.
//!
//! Within a multi-statement transaction, individual queries receive the
//! timestamp `ts = s · MAXQ + q`, where `s` is the transaction's sequence
//! number, `q` the query's position, and `MAXQ` the maximum queries per
//! transaction (10,000, as in the paper) — so intra-transaction reads see
//! the transaction's earlier writes (§A.7).
//!
//! Beyond the paper's description, the redo pass here also *checks*:
//! committed transactions must replay without error and reproduce the
//! logged per-statement write results (affected counts, auto-increment
//! ids); aborted transactions are replayed on a scratch copy of the
//! touched tables, must fail exactly where the log says they failed, and
//! their read results are captured for re-execution (an aborted
//! transaction's reads are not expressible as a `[start_ts, end_ts)`
//! interval query, since its writes must be visible to later queries of
//! the same transaction only).
//!
//! The store also tracks, per table, the list of modification timestamps.
//! Read-query deduplication (§4.5) uses these: two lexically identical
//! SELECTs can share a result if the tables they touch were not modified
//! between their versions, which the verifier tests by comparing
//! *modification epochs* ([`VersionedDb::mod_epoch`]).

use crate::ast::{BinOp, Expr, Statement};
use crate::engine::{run_select, Database, ExecOutcome, SqlError, WriteOutcome};
use crate::parser::parse_statement;
use crate::schema::TableSchema;
use crate::value::{IndexKey, SqlValue};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Maximum queries per transaction; query `q` of transaction `s` executes
/// at version `s * MAXQ + q` (§A.7).
pub const MAXQ: u64 = 10_000;

/// Error produced by the redo pass. Any redo error causes the audit to
/// reject: the operation log cannot describe a real execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoError {
    /// A committed transaction's statement failed during replay.
    CommittedTxnFailed {
        /// Transaction sequence number.
        seq: u64,
        /// 1-based query position.
        query: u64,
        /// The underlying error.
        error: SqlError,
    },
    /// Replay produced a write result different from the logged one.
    WriteResultMismatch {
        /// Transaction sequence number.
        seq: u64,
        /// 1-based query position.
        query: u64,
    },
    /// An aborted transaction replayed cleanly where the log claims an
    /// error, or failed at the wrong statement.
    AbortShapeMismatch {
        /// Transaction sequence number.
        seq: u64,
    },
    /// A transaction exceeded [`MAXQ`] queries.
    TooManyQueries {
        /// Transaction sequence number.
        seq: u64,
    },
    /// Sequence numbers must be presented in increasing order.
    NonMonotonicSeq {
        /// The offending sequence number.
        seq: u64,
    },
}

impl fmt::Display for RedoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedoError::CommittedTxnFailed { seq, query, error } => write!(
                f,
                "committed transaction {seq} failed at query {query} during redo: {error}"
            ),
            RedoError::WriteResultMismatch { seq, query } => write!(
                f,
                "transaction {seq} query {query}: logged write result differs from redo"
            ),
            RedoError::AbortShapeMismatch { seq } => {
                write!(f, "aborted transaction {seq} does not replay as logged")
            }
            RedoError::TooManyQueries { seq } => {
                write!(f, "transaction {seq} exceeds MAXQ queries")
            }
            RedoError::NonMonotonicSeq { seq } => {
                write!(f, "transaction sequence {seq} not increasing")
            }
        }
    }
}

impl std::error::Error for RedoError {}

/// Statistics from the redo pass (feeds the Fig. 9 "DB redo" row and the
/// Fig. 8 DB-overhead column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedoStats {
    /// Transactions replayed.
    pub transactions: u64,
    /// Individual queries processed.
    pub queries: u64,
    /// Row versions created (initial snapshot included).
    pub versions_created: u64,
    /// Aborted transactions replayed on scratch.
    pub aborted: u64,
}

/// One version of one logical row.
#[derive(Debug, Clone)]
struct RowVersion {
    /// Logical row identity; preserves the online engine's scan order.
    rowid: u64,
    /// First version (inclusive) at which this row image is visible.
    start: u64,
    /// First version at which it is no longer visible (`u64::MAX` while
    /// live).
    end: u64,
    /// The row image.
    row: Vec<SqlValue>,
}

#[derive(Debug)]
struct VersionedTable {
    schema: TableSchema,
    versions: Vec<RowVersion>,
    /// rowid -> index of the live version (end == MAX), in rowid order.
    live: BTreeMap<u64, usize>,
    /// Live primary-key uniqueness index: pk -> rowid.
    pk_live: HashMap<IndexKey, u64>,
    /// Equality indexes over *all* versions: column position -> key ->
    /// version indices.
    eq_index: HashMap<usize, HashMap<IndexKey, Vec<usize>>>,
    /// Timestamps at which the table was modified, increasing.
    mod_ts: Vec<u64>,
    next_rowid: u64,
    auto_inc: i64,
}

impl VersionedTable {
    fn new(schema: TableSchema) -> Self {
        let eq_index = schema
            .indexed_columns()
            .into_iter()
            .map(|pos| (pos, HashMap::new()))
            .collect();
        Self {
            schema,
            versions: Vec::new(),
            live: BTreeMap::new(),
            pk_live: HashMap::new(),
            eq_index,
            mod_ts: Vec::new(),
            next_rowid: 1,
            auto_inc: 1,
        }
    }

    /// Pushes a new live version and indexes it.
    fn push_version(&mut self, rowid: u64, start: u64, row: Vec<SqlValue>) {
        let idx = self.versions.len();
        for (col, index) in self.eq_index.iter_mut() {
            index.entry(row[*col].index_key()).or_default().push(idx);
        }
        if let Some(pk) = self.schema.primary_key_index() {
            self.pk_live.insert(row[pk].index_key(), rowid);
        }
        self.versions.push(RowVersion {
            rowid,
            start,
            end: u64::MAX,
            row,
        });
        self.live.insert(rowid, idx);
    }

    /// Ends the live version of `rowid` at `ts` and unlinks it.
    fn kill_version(&mut self, rowid: u64, ts: u64) {
        if let Some(idx) = self.live.remove(&rowid) {
            self.versions[idx].end = ts;
            if let Some(pk) = self.schema.primary_key_index() {
                let key = self.versions[idx].row[pk].index_key();
                self.pk_live.remove(&key);
            }
        }
    }

    fn mark_modified(&mut self, ts: u64) {
        if self.mod_ts.last() != Some(&ts) {
            self.mod_ts.push(ts);
        }
    }

    /// Indices of versions visible at `ts`, in rowid order.
    fn visible_at(&self, ts: u64) -> Vec<usize> {
        let mut out: Vec<(u64, usize)> = self
            .versions
            .iter()
            .enumerate()
            .filter(|(_, v)| v.start <= ts && ts < v.end)
            .map(|(i, v)| (v.rowid, i))
            .collect();
        out.sort_unstable_by_key(|(rowid, _)| *rowid);
        out.into_iter().map(|(_, i)| i).collect()
    }

    /// Indexed candidates for `col = key` at `ts`, in rowid order; `None`
    /// if the column has no index.
    fn candidates(&self, col: usize, key: &IndexKey, ts: u64) -> Option<Vec<usize>> {
        let index = self.eq_index.get(&col)?;
        let mut out: Vec<(u64, usize)> = index
            .get(key)
            .map(|ids| {
                ids.iter()
                    .filter(|&&i| {
                        let v = &self.versions[i];
                        v.start <= ts && ts < v.end
                    })
                    .map(|&i| (self.versions[i].rowid, i))
                    .collect()
            })
            .unwrap_or_default();
        out.sort_unstable_by_key(|(rowid, _)| *rowid);
        Some(out.into_iter().map(|(_, i)| i).collect())
    }
}

/// The audit-time versioned database.
pub struct VersionedDb {
    tables: BTreeMap<String, VersionedTable>,
    /// SELECT results captured while replaying aborted transactions,
    /// keyed by `(seq, query)`.
    aborted_reads: HashMap<(u64, u64), ExecOutcome>,
    /// Sequence numbers of aborted transactions whose final statement
    /// errored during replay (as opposed to an explicit rollback).
    aborted_failures: std::collections::HashSet<u64>,
    last_seq: u64,
    stats: RedoStats,
}

// After the redo pass the store is only read (`query_at`, `mod_epoch`,
// `aborted_read`, ... all take `&self`), so the parallel audit shares
// one built store per object across its worker threads without locking.
// Guard that property at compile time.
const _: fn() = || {
    fn shareable<T: Send + Sync>() {}
    shareable::<VersionedDb>();
};

impl VersionedDb {
    /// Initializes the store from the state at the start of the audited
    /// period; initial rows get `start_ts = 0`.
    pub fn from_snapshot(db: &Database) -> Self {
        let mut out = Self {
            tables: BTreeMap::new(),
            aborted_reads: HashMap::new(),
            aborted_failures: std::collections::HashSet::new(),
            last_seq: 0,
            stats: RedoStats::default(),
        };
        for name in db.table_names() {
            let src = db.table(&name).expect("name from table_names");
            let mut vt = VersionedTable::new(src.schema.clone());
            for (rowid, row) in &src.rows {
                vt.push_version(*rowid, 0, row.clone());
                out.stats.versions_created += 1;
            }
            vt.next_rowid = src.next_rowid;
            vt.auto_inc = src.auto_inc;
            out.tables.insert(name, vt);
        }
        out
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> RedoStats {
        self.stats
    }

    /// Replays one logged transaction (the redo pass, §4.5). `seq` values
    /// must increase across calls. Computed per-query write results are
    /// compared against the logged ones — the verifier's check that turns
    /// the paper's unverifiable database nondeterminism (§4.6) into a
    /// checked report.
    ///
    /// For `succeeded = false`, the transaction is replayed on a scratch
    /// copy of the touched tables; its SELECT results are retained for
    /// [`Self::aborted_read`] and the store itself is unchanged.
    pub fn redo_transaction(
        &mut self,
        seq: u64,
        queries: &[String],
        succeeded: bool,
        logged_results: &[Option<WriteOutcome>],
    ) -> Result<(), RedoError> {
        if seq <= self.last_seq {
            return Err(RedoError::NonMonotonicSeq { seq });
        }
        self.last_seq = seq;
        if queries.len() as u64 >= MAXQ {
            return Err(RedoError::TooManyQueries { seq });
        }
        if logged_results.len() != queries.len() {
            return Err(RedoError::AbortShapeMismatch { seq });
        }
        self.stats.transactions += 1;
        self.stats.queries += queries.len() as u64;
        if succeeded {
            self.redo_committed(seq, queries, logged_results)
        } else {
            self.stats.aborted += 1;
            self.redo_aborted(seq, queries, logged_results)
        }
    }

    fn redo_committed(
        &mut self,
        seq: u64,
        queries: &[String],
        logged_results: &[Option<WriteOutcome>],
    ) -> Result<(), RedoError> {
        for (pos, sql) in queries.iter().enumerate() {
            let q = pos as u64 + 1;
            let ts = seq * MAXQ + q;
            let fail = |error: SqlError| RedoError::CommittedTxnFailed {
                seq,
                query: q,
                error,
            };
            let stmt = parse_statement(sql).map_err(|e| fail(e.into()))?;
            let computed: Option<WriteOutcome> = match &stmt {
                Statement::Select(_) => None,
                Statement::CreateTable(schema) => {
                    if self.tables.contains_key(&schema.name) {
                        return Err(fail(SqlError::DuplicateTable(schema.name.clone())));
                    }
                    let mut vt = VersionedTable::new(schema.clone());
                    vt.mark_modified(ts);
                    self.tables.insert(schema.name.clone(), vt);
                    Some(WriteOutcome::default())
                }
                Statement::Insert(insert) => Some(self.redo_insert(insert, ts).map_err(fail)?),
                Statement::Update(update) => Some(self.redo_update(update, ts).map_err(fail)?),
                Statement::Delete(delete) => Some(self.redo_delete(delete, ts).map_err(fail)?),
            };
            if computed != logged_results[pos] {
                return Err(RedoError::WriteResultMismatch { seq, query: q });
            }
        }
        Ok(())
    }

    fn redo_aborted(
        &mut self,
        seq: u64,
        queries: &[String],
        logged_results: &[Option<WriteOutcome>],
    ) -> Result<(), RedoError> {
        // Scratch database holding live images of the touched tables.
        let mut touched: Vec<String> = Vec::new();
        for sql in queries {
            if let Ok(stmt) = parse_statement(sql) {
                touched.push(stmt.table().to_string());
            }
        }
        touched.sort();
        touched.dedup();
        let mut scratch = self.materialize_live(&touched);
        scratch.begin().expect("fresh scratch database");
        for (pos, sql) in queries.iter().enumerate() {
            let q = pos as u64 + 1;
            let last = pos == queries.len() - 1;
            match scratch.execute_in_txn(sql) {
                Ok(outcome) => {
                    let computed = outcome.write();
                    if computed != logged_results[pos] {
                        return Err(RedoError::WriteResultMismatch { seq, query: q });
                    }
                    if let ExecOutcome::Rows { .. } = outcome {
                        self.aborted_reads.insert((seq, q), outcome);
                    }
                }
                Err(_) => {
                    // An error is only consistent with the log if it hit
                    // the final logged statement with no logged result.
                    if !last || logged_results[pos].is_some() {
                        return Err(RedoError::AbortShapeMismatch { seq });
                    }
                    self.aborted_failures.insert(seq);
                    return Ok(());
                }
            }
        }
        // No statement failed: consistent with an explicit rollback.
        Ok(())
    }

    fn redo_insert(
        &mut self,
        insert: &crate::ast::Insert,
        ts: u64,
    ) -> Result<WriteOutcome, SqlError> {
        let vt = self
            .tables
            .get(&insert.table)
            .ok_or_else(|| SqlError::NoSuchTable(insert.table.clone()))?;
        let schema = vt.schema.clone();
        let mut positions = Vec::with_capacity(insert.columns.len());
        for col in &insert.columns {
            positions.push(
                schema
                    .column_index(col)
                    .ok_or_else(|| SqlError::NoSuchColumn(col.clone()))?,
            );
        }
        let pk = schema.primary_key_index();
        let auto = schema.has_auto_increment();
        let mut last_id = None;
        let mut inserted = 0u64;
        for tuple in &insert.rows {
            let mut row = vec![SqlValue::Null; schema.columns.len()];
            for (expr, pos) in tuple.iter().zip(&positions) {
                row[*pos] = crate::engine::eval_expr(expr, None, &schema)?;
            }
            let vt = self
                .tables
                .get_mut(&insert.table)
                .expect("checked existence above");
            if let (Some(pk_pos), true) = (pk, auto) {
                if row[pk_pos].is_null() {
                    row[pk_pos] = SqlValue::Int(vt.auto_inc);
                    last_id = Some(vt.auto_inc);
                    vt.auto_inc += 1;
                } else if let Some(v) = row[pk_pos].as_i64() {
                    vt.auto_inc = vt.auto_inc.max(v + 1);
                }
            }
            for (pos, col) in schema.columns.iter().enumerate() {
                if !col.ty.admits(&row[pos]) {
                    return Err(SqlError::TypeError(format!(
                        "value {} not valid for column {}",
                        row[pos], col.name
                    )));
                }
            }
            let vt = self
                .tables
                .get_mut(&insert.table)
                .expect("checked existence above");
            if let Some(pk_pos) = pk {
                if vt.pk_live.contains_key(&row[pk_pos].index_key()) {
                    return Err(SqlError::DuplicateKey(format!("{}", row[pk_pos])));
                }
            }
            let rowid = vt.next_rowid;
            vt.next_rowid += 1;
            vt.push_version(rowid, ts, row);
            vt.mark_modified(ts);
            self.stats.versions_created += 1;
            inserted += 1;
        }
        Ok(WriteOutcome {
            affected: inserted,
            last_insert_id: last_id,
        })
    }

    fn redo_update(
        &mut self,
        update: &crate::ast::Update,
        ts: u64,
    ) -> Result<WriteOutcome, SqlError> {
        let vt = self
            .tables
            .get(&update.table)
            .ok_or_else(|| SqlError::NoSuchTable(update.table.clone()))?;
        let schema = vt.schema.clone();
        let mut set_positions = Vec::with_capacity(update.assignments.len());
        for (col, _) in &update.assignments {
            set_positions.push(
                schema
                    .column_index(col)
                    .ok_or_else(|| SqlError::NoSuchColumn(col.clone()))?,
            );
        }
        // Live rows matching WHERE, in rowid order.
        let mut matches: Vec<(u64, Vec<SqlValue>)> = Vec::new();
        for (rowid, &vidx) in &vt.live {
            let row = &vt.versions[vidx].row;
            if crate::engine::eval_where(&update.where_clause, row, &schema)? {
                matches.push((*rowid, row.clone()));
            }
        }
        let pk = schema.primary_key_index();
        let mut affected = 0u64;
        for (rowid, old) in matches {
            let mut new = old.clone();
            for ((_, expr), pos) in update.assignments.iter().zip(&set_positions) {
                new[*pos] = crate::engine::eval_expr(expr, Some(&old), &schema)?;
                if !schema.columns[*pos].ty.admits(&new[*pos]) {
                    return Err(SqlError::TypeError(format!(
                        "value {} not valid for column {}",
                        new[*pos], schema.columns[*pos].name
                    )));
                }
            }
            let vt = self
                .tables
                .get_mut(&update.table)
                .expect("checked existence above");
            if let Some(pk_pos) = pk {
                let old_key = old[pk_pos].index_key();
                let new_key = new[pk_pos].index_key();
                if old_key != new_key && vt.pk_live.contains_key(&new_key) {
                    return Err(SqlError::DuplicateKey(format!("{}", new[pk_pos])));
                }
            }
            vt.kill_version(rowid, ts);
            vt.push_version(rowid, ts, new);
            vt.mark_modified(ts);
            self.stats.versions_created += 1;
            affected += 1;
        }
        Ok(WriteOutcome {
            affected,
            last_insert_id: None,
        })
    }

    fn redo_delete(
        &mut self,
        delete: &crate::ast::Delete,
        ts: u64,
    ) -> Result<WriteOutcome, SqlError> {
        let vt = self
            .tables
            .get(&delete.table)
            .ok_or_else(|| SqlError::NoSuchTable(delete.table.clone()))?;
        let schema = vt.schema.clone();
        let mut matches: Vec<u64> = Vec::new();
        for (rowid, &vidx) in &vt.live {
            if crate::engine::eval_where(&delete.where_clause, &vt.versions[vidx].row, &schema)? {
                matches.push(*rowid);
            }
        }
        let affected = matches.len() as u64;
        let vt = self
            .tables
            .get_mut(&delete.table)
            .expect("checked existence above");
        for rowid in matches {
            vt.kill_version(rowid, ts);
        }
        if affected > 0 {
            vt.mark_modified(ts);
        }
        Ok(WriteOutcome {
            affected,
            last_insert_id: None,
        })
    }

    /// Answers a SELECT at version `ts` (re-execution's simulated read,
    /// Fig. 12 line 27). Uses an equality index when the WHERE clause
    /// pins an indexed column.
    pub fn query_at(&self, sql: &str, ts: u64) -> Result<ExecOutcome, SqlError> {
        let stmt = parse_statement(sql)?;
        let select = match &stmt {
            Statement::Select(s) => s,
            _ => {
                return Err(SqlError::Unsupported(
                    "query_at only supports SELECT".into(),
                ))
            }
        };
        let vt = self
            .tables
            .get(&select.table)
            .ok_or_else(|| SqlError::NoSuchTable(select.table.clone()))?;
        // Try an indexed equality conjunct first.
        let mut conjuncts = Vec::new();
        if let Some(w) = &select.where_clause {
            collect_eq_conjuncts(w, &mut conjuncts);
        }
        let candidate_idxs = conjuncts.iter().find_map(|(col, val)| {
            let pos = vt.schema.column_index(col)?;
            vt.candidates(pos, &val.index_key(), ts)
        });
        let idxs = candidate_idxs.unwrap_or_else(|| vt.visible_at(ts));
        let rows = idxs.iter().map(|&i| &vt.versions[i].row);
        run_select(select, &vt.schema, rows)
    }

    /// The SELECT result captured while replaying aborted transaction
    /// `seq` at query position `q`.
    pub fn aborted_read(&self, seq: u64, q: u64) -> Option<&ExecOutcome> {
        self.aborted_reads.get(&(seq, q))
    }

    /// True if aborted transaction `seq` failed at its final statement
    /// during replay (rather than rolling back voluntarily); during
    /// re-execution the corresponding `db_query` reports an error to the
    /// program, as it did online.
    pub fn aborted_failed_at_last(&self, seq: u64) -> bool {
        self.aborted_failures.contains(&seq)
    }

    /// Modification epoch of `table` at version `ts`: the number of
    /// modifications with timestamp <= `ts`. Two SELECTs of the same text
    /// whose touched table has equal epochs see identical data — the
    /// read-query deduplication criterion (§4.5).
    pub fn mod_epoch(&self, table: &str, ts: u64) -> u64 {
        match self.tables.get(table) {
            None => 0,
            Some(vt) => vt.mod_ts.partition_point(|&m| m <= ts) as u64,
        }
    }

    /// Tables touched by a SQL statement (for dedup keys); empty if the
    /// statement does not parse.
    pub fn touched_tables(sql: &str) -> Vec<String> {
        match parse_statement(sql) {
            Ok(stmt) => vec![stmt.table().to_string()],
            Err(_) => Vec::new(),
        }
    }

    /// Materializes the live image of the named tables into a plain
    /// [`Database`] (scratch for aborted-transaction replay). Unknown
    /// names are skipped; the replay will then fail like the original.
    fn materialize_live(&self, names: &[String]) -> Database {
        let mut db = Database::new();
        for name in names {
            if let Some(vt) = self.tables.get(name) {
                let rows: Vec<Vec<SqlValue>> = vt
                    .live
                    .values()
                    .map(|&idx| vt.versions[idx].row.clone())
                    .collect();
                let table =
                    Database::make_table(vt.schema.clone(), rows, vt.next_rowid, vt.auto_inc);
                db.install_table(table);
            }
        }
        db
    }

    /// The "migration" at the end of the redo pass (§4.5): dumps the
    /// final state of every table into a plain database — the latest
    /// state the verifier keeps after the audit (§5.1).
    pub fn latest_snapshot(&self) -> Database {
        let names: Vec<String> = self.tables.keys().cloned().collect();
        self.materialize_live(&names)
    }

    /// Total row versions held (the audit-time storage overhead of
    /// Fig. 8's "temp" column).
    pub fn num_versions(&self) -> usize {
        self.tables.values().map(|t| t.versions.len()).sum()
    }

    /// Rough byte size of the versioned store (row bytes plus the two
    /// timestamp columns per version).
    pub fn estimated_bytes(&self) -> usize {
        self.tables
            .values()
            .map(|t| {
                t.versions
                    .iter()
                    .map(|v| {
                        16 + v
                            .row
                            .iter()
                            .map(|val| match val {
                                SqlValue::Null => 1,
                                SqlValue::Int(_) | SqlValue::Float(_) => 8,
                                SqlValue::Text(s) => s.len() + 1,
                            })
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Collects `col = literal` conjuncts from a top-level AND tree.
fn collect_eq_conjuncts(expr: &Expr, out: &mut Vec<(String, SqlValue)>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_eq_conjuncts(lhs, out);
            collect_eq_conjuncts(rhs, out);
        }
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                out.push((c.clone(), v.clone()));
            }
            _ => {}
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> Database {
        let mut db = Database::new();
        db.execute_autocommit(
            "CREATE TABLE p (id INT PRIMARY KEY AUTO_INCREMENT, title TEXT, views INT, INDEX(title))",
        )
        .0
        .unwrap();
        db.execute_autocommit("INSERT INTO p (title, views) VALUES ('alpha', 0), ('beta', 5)")
            .0
            .unwrap();
        db
    }

    fn exec_logged(db: &mut Database, sql: &str) -> (Option<WriteOutcome>, u64) {
        let (r, seq) = db.execute_autocommit(sql);
        (r.unwrap().write(), seq)
    }

    #[test]
    fn redo_reproduces_history() {
        let mut online = seed();
        let vdb_base = seed();
        let mut vdb = VersionedDb::from_snapshot(&vdb_base);
        let txns = [
            "UPDATE p SET views = views + 1 WHERE title = 'alpha'",
            "INSERT INTO p (title, views) VALUES ('gamma', 2)",
            "UPDATE p SET views = 100 WHERE id = 2",
            "DELETE FROM p WHERE title = 'beta'",
        ];
        let mut checkpoints = Vec::new();
        for sql in txns {
            let (result, seq) = exec_logged(&mut online, sql);
            vdb.redo_transaction(seq, &[sql.to_string()], true, &[result])
                .unwrap();
            let (r, _) = online.execute_autocommit("SELECT id, title, views FROM p");
            checkpoints.push((seq, r.unwrap()));
        }
        // Each historical read just after a txn must match the online
        // state at that time.
        for (seq, expected) in checkpoints {
            let got = vdb
                .query_at("SELECT id, title, views FROM p", seq * MAXQ + MAXQ - 1)
                .unwrap();
            assert_eq!(got, expected, "at seq {seq}");
        }
    }

    #[test]
    fn historical_reads_see_old_versions() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        vdb.redo_transaction(
            1,
            &["UPDATE p SET views = 999 WHERE id = 1".into()],
            true,
            &[Some(WriteOutcome {
                affected: 1,
                last_insert_id: None,
            })],
        )
        .unwrap();
        let before = vdb
            .query_at("SELECT views FROM p WHERE id = 1", MAXQ)
            .unwrap();
        assert_eq!(before.rows().unwrap()[0][0], SqlValue::Int(0));
        let after = vdb
            .query_at("SELECT views FROM p WHERE id = 1", MAXQ + 2)
            .unwrap();
        assert_eq!(after.rows().unwrap()[0][0], SqlValue::Int(999));
    }

    #[test]
    fn intra_transaction_visibility() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        vdb.redo_transaction(
            1,
            &[
                "INSERT INTO p (title, views) VALUES ('delta', 7)".into(),
                "SELECT views FROM p WHERE title = 'delta'".into(),
            ],
            true,
            &[
                Some(WriteOutcome {
                    affected: 1,
                    last_insert_id: Some(3),
                }),
                None,
            ],
        )
        .unwrap();
        // Query 2 of txn 1 executes at ts = 1*MAXQ + 2 and sees the
        // insert at ts = 1*MAXQ + 1.
        let got = vdb
            .query_at("SELECT views FROM p WHERE title = 'delta'", MAXQ + 2)
            .unwrap();
        assert_eq!(got.rows().unwrap()[0][0], SqlValue::Int(7));
        // A read by an earlier transaction does not.
        let got = vdb
            .query_at("SELECT views FROM p WHERE title = 'delta'", MAXQ)
            .unwrap();
        assert!(got.rows().unwrap().is_empty());
    }

    #[test]
    fn write_result_mismatch_detected() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        let err = vdb
            .redo_transaction(
                1,
                &["INSERT INTO p (title, views) VALUES ('x', 1)".into()],
                true,
                // Lies about the auto-increment id.
                &[Some(WriteOutcome {
                    affected: 1,
                    last_insert_id: Some(42),
                })],
            )
            .unwrap_err();
        assert!(matches!(err, RedoError::WriteResultMismatch { .. }));
    }

    #[test]
    fn committed_txn_that_fails_is_rejected() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        let err = vdb
            .redo_transaction(
                1,
                &["INSERT INTO p (id, title, views) VALUES (1, 'dup', 0)".into()],
                true,
                &[Some(WriteOutcome {
                    affected: 1,
                    last_insert_id: None,
                })],
            )
            .unwrap_err();
        assert!(matches!(err, RedoError::CommittedTxnFailed { .. }));
    }

    #[test]
    fn aborted_txn_replays_on_scratch() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        vdb.redo_transaction(
            1,
            &[
                "INSERT INTO p (title, views) VALUES ('temp', 1)".into(),
                "SELECT COUNT(*) FROM p".into(),
                "INSERT INTO p (id, title, views) VALUES (1, 'dup', 0)".into(),
            ],
            false,
            &[
                Some(WriteOutcome {
                    affected: 1,
                    last_insert_id: Some(3),
                }),
                None,
                None,
            ],
        )
        .unwrap();
        // The captured read saw the uncommitted insert (3 rows).
        let read = vdb.aborted_read(1, 2).unwrap();
        assert_eq!(read.rows().unwrap()[0][0], SqlValue::Int(3));
        // The store itself is untouched and the auto-increment not
        // consumed: the next committed insert still gets id 3.
        let got = vdb.query_at("SELECT COUNT(*) FROM p", 2 * MAXQ).unwrap();
        assert_eq!(got.rows().unwrap()[0][0], SqlValue::Int(2));
        vdb.redo_transaction(
            2,
            &["INSERT INTO p (title, views) VALUES ('next', 0)".into()],
            true,
            &[Some(WriteOutcome {
                affected: 1,
                last_insert_id: Some(3),
            })],
        )
        .unwrap();
    }

    #[test]
    fn aborted_txn_wrong_shape_rejected() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        // The statement errors during replay, but the log pretends it
        // produced a write result — inconsistent.
        let err = vdb
            .redo_transaction(
                1,
                &["INSERT INTO p (id, title, views) VALUES (1, 'dup', 0)".into()],
                false,
                &[Some(WriteOutcome {
                    affected: 1,
                    last_insert_id: None,
                })],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RedoError::AbortShapeMismatch { .. } | RedoError::WriteResultMismatch { .. }
        ));
    }

    #[test]
    fn mod_epochs_gate_dedup() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        let w1 = Some(WriteOutcome {
            affected: 1,
            last_insert_id: None,
        });
        vdb.redo_transaction(
            1,
            &["UPDATE p SET views = 1 WHERE id = 1".into()],
            true,
            &[w1],
        )
        .unwrap();
        vdb.redo_transaction(2, &["SELECT views FROM p".into()], true, &[None])
            .unwrap();
        vdb.redo_transaction(3, &["SELECT views FROM p".into()], true, &[None])
            .unwrap();
        vdb.redo_transaction(
            4,
            &["UPDATE p SET views = 2 WHERE id = 1".into()],
            true,
            &[w1],
        )
        .unwrap();
        // The SELECTs at seqs 2 and 3 straddle no modification: equal
        // epochs => dedupable.
        assert_eq!(
            vdb.mod_epoch("p", 2 * MAXQ + 1),
            vdb.mod_epoch("p", 3 * MAXQ + 1)
        );
        // A read after seq 4 has a later epoch.
        assert_ne!(
            vdb.mod_epoch("p", 3 * MAXQ + 1),
            vdb.mod_epoch("p", 4 * MAXQ + 2)
        );
    }

    #[test]
    fn non_monotonic_seq_rejected() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        vdb.redo_transaction(5, &["SELECT views FROM p".into()], true, &[None])
            .unwrap();
        let err = vdb
            .redo_transaction(5, &["SELECT views FROM p".into()], true, &[None])
            .unwrap_err();
        assert!(matches!(err, RedoError::NonMonotonicSeq { .. }));
    }

    #[test]
    fn latest_snapshot_matches_online_final_state() {
        let mut online = seed();
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        for sql in [
            "INSERT INTO p (title, views) VALUES ('x', 1)",
            "UPDATE p SET views = 50 WHERE title = 'x'",
            "DELETE FROM p WHERE id = 1",
        ] {
            let (result, seq) = exec_logged(&mut online, sql);
            vdb.redo_transaction(seq, &[sql.to_string()], true, &[result])
                .unwrap();
        }
        let mut migrated = vdb.latest_snapshot();
        let (want, _) = online.execute_autocommit("SELECT id, title, views FROM p");
        let (got, _) = migrated.execute_autocommit("SELECT id, title, views FROM p");
        assert_eq!(got.unwrap(), want.unwrap());
        // The migrated database continues assigning the same
        // auto-increment ids as the online one.
        let (w_on, _) = exec_logged(&mut online, "INSERT INTO p (title, views) VALUES ('y', 0)");
        let (r, _) = migrated.execute_autocommit("INSERT INTO p (title, views) VALUES ('y', 0)");
        assert_eq!(r.unwrap().write(), w_on);
    }

    #[test]
    fn indexed_and_scan_paths_agree() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        for i in 0..20i64 {
            let sql = format!("INSERT INTO p (title, views) VALUES ('t{}', {})", i % 5, i);
            let result = Some(WriteOutcome {
                affected: 1,
                last_insert_id: Some(3 + i),
            });
            vdb.redo_transaction((i + 1) as u64, &[sql], true, &[result])
                .unwrap();
        }
        let ts = 21 * MAXQ;
        // `title` is indexed, so equality uses the index; IN (...) with
        // the same semantics forces a scan.
        let indexed = vdb
            .query_at("SELECT id FROM p WHERE title = 't3'", ts)
            .unwrap();
        let scanned = vdb
            .query_at("SELECT id FROM p WHERE title IN ('t3')", ts)
            .unwrap();
        assert_eq!(indexed, scanned);
        assert!(!indexed.rows().unwrap().is_empty());
    }

    #[test]
    fn version_counting() {
        let base = seed();
        let mut vdb = VersionedDb::from_snapshot(&base);
        assert_eq!(vdb.num_versions(), 2);
        vdb.redo_transaction(
            1,
            &["UPDATE p SET views = 9 WHERE id = 1".into()],
            true,
            &[Some(WriteOutcome {
                affected: 1,
                last_insert_id: None,
            })],
        )
        .unwrap();
        assert_eq!(vdb.num_versions(), 3);
        assert!(vdb.estimated_bytes() > 0);
        assert_eq!(vdb.stats().transactions, 1);
    }
}
