//! Table schemas: column definitions, primary keys, auto-increment, and
//! secondary indexes.

use crate::value::SqlValue;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// Double-precision float (`FLOAT`, `DOUBLE`, `REAL`).
    Float,
    /// UTF-8 text (`TEXT`, `VARCHAR(..)`).
    Text,
}

impl ColumnType {
    /// True if `value` is storable in a column of this type (NULL is
    /// storable everywhere; ints widen into float columns).
    pub fn admits(self, value: &SqlValue) -> bool {
        matches!(
            (self, value),
            (_, SqlValue::Null)
                | (ColumnType::Int, SqlValue::Int(_))
                | (ColumnType::Float, SqlValue::Float(_) | SqlValue::Int(_))
                | (ColumnType::Text, SqlValue::Text(_))
        )
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// True if this column is the table's primary key.
    pub primary_key: bool,
    /// True if the primary key auto-increments (INT primary keys only).
    pub auto_increment: bool,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Names of secondary-indexed columns (`INDEX(col)` clauses).
    pub indexes: Vec<String>,
}

impl TableSchema {
    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of the primary-key column, if declared.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }

    /// True if the primary key auto-increments.
    pub fn has_auto_increment(&self) -> bool {
        self.columns.iter().any(|c| c.auto_increment)
    }

    /// All indexed column positions: the primary key plus declared
    /// secondary indexes.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(pk) = self.primary_key_index() {
            out.push(pk);
        }
        for idx_name in &self.indexes {
            if let Some(pos) = self.column_index(idx_name) {
                if !out.contains(&pos) {
                    out.push(pos);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnDef {
                    name: "id".into(),
                    ty: ColumnType::Int,
                    primary_key: true,
                    auto_increment: true,
                },
                ColumnDef {
                    name: "name".into(),
                    ty: ColumnType::Text,
                    primary_key: false,
                    auto_increment: false,
                },
                ColumnDef {
                    name: "score".into(),
                    ty: ColumnType::Float,
                    primary_key: false,
                    auto_increment: false,
                },
            ],
            indexes: vec!["name".into()],
        }
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("score"), Some(2));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.primary_key_index(), Some(0));
        assert!(s.has_auto_increment());
    }

    #[test]
    fn indexed_columns_include_pk_and_secondary() {
        assert_eq!(schema().indexed_columns(), vec![0, 1]);
    }

    #[test]
    fn type_admission() {
        assert!(ColumnType::Int.admits(&SqlValue::Int(1)));
        assert!(!ColumnType::Int.admits(&SqlValue::Float(1.0)));
        assert!(ColumnType::Float.admits(&SqlValue::Int(1)));
        assert!(ColumnType::Text.admits(&SqlValue::Null));
        assert!(!ColumnType::Text.admits(&SqlValue::Int(1)));
    }
}
