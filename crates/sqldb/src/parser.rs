//! Recursive-descent parser for the SQL subset.

use crate::ast::{
    Aggregate, BinOp, Delete, Expr, Insert, OrderKey, Select, SelectItem, Statement, Update,
};
use crate::lexer::{tokenize, LexError, Token};
use crate::schema::{ColumnDef, ColumnType, TableSchema};
use crate::value::SqlValue;
use std::fmt;

/// Parse error: lexical or syntactic.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer failure.
    Lex(LexError),
    /// Grammar failure with a description and token position.
    Syntax {
        /// Token index of the failure.
        at: usize,
        /// Description of what was expected.
        message: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax { at, message } => {
                write!(f, "syntax error at token {at}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a single SQL statement.
///
/// # Examples
///
/// ```
/// use orochi_sqldb::parse_statement;
///
/// let stmt = parse_statement("SELECT id, title FROM pages WHERE id = 3 LIMIT 1").unwrap();
/// assert!(!stmt.is_write());
/// assert_eq!(stmt.table(), "pages");
/// ```
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    // Allow one optional trailing semicolon.
    if p.peek_sym(";") {
        p.pos += 1;
    }
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Token::Sym(s)) if *s == sym)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{sym}'")))
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_kw("SELECT") {
            return Ok(Statement::Select(self.select_body()?));
        }
        if self.eat_kw("INSERT") {
            return Ok(Statement::Insert(self.insert_body()?));
        }
        if self.eat_kw("UPDATE") {
            return Ok(Statement::Update(self.update_body()?));
        }
        if self.eat_kw("DELETE") {
            return Ok(Statement::Delete(self.delete_body()?));
        }
        if self.eat_kw("CREATE") {
            self.expect_kw("TABLE")?;
            return Ok(Statement::CreateTable(self.create_body()?));
        }
        Err(self.err("expected SELECT, INSERT, UPDATE, DELETE, or CREATE TABLE"))
    }

    fn create_body(&mut self) -> Result<TableSchema, ParseError> {
        let name = self.identifier()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        let mut indexes = Vec::new();
        loop {
            if self.eat_kw("INDEX") {
                self.expect_sym("(")?;
                indexes.push(self.identifier()?);
                self.expect_sym(")")?;
            } else {
                let col_name = self.identifier()?;
                let ty_word = self.identifier()?;
                let ty = match ty_word.to_ascii_uppercase().as_str() {
                    "INT" | "INTEGER" | "BIGINT" => ColumnType::Int,
                    "FLOAT" | "DOUBLE" | "REAL" => ColumnType::Float,
                    "TEXT" => ColumnType::Text,
                    "VARCHAR" => {
                        // Optional length argument: VARCHAR(255).
                        if self.eat_sym("(") {
                            match self.peek() {
                                Some(Token::Int(_)) => self.pos += 1,
                                _ => return Err(self.err("expected length in VARCHAR(..)")),
                            }
                            self.expect_sym(")")?;
                        }
                        ColumnType::Text
                    }
                    other => return Err(self.err(format!("unknown column type {other}"))),
                };
                let mut primary_key = false;
                let mut auto_increment = false;
                loop {
                    if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        primary_key = true;
                    } else if self.eat_kw("AUTO_INCREMENT") {
                        auto_increment = true;
                    } else if self.eat_kw("NOT") {
                        // NOT NULL accepted and ignored (all our inserts
                        // are explicit).
                        self.expect_kw("NULL")?;
                    } else {
                        break;
                    }
                }
                if auto_increment && ty != ColumnType::Int {
                    return Err(self.err("AUTO_INCREMENT requires an INT column"));
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    primary_key,
                    auto_increment,
                });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        if columns.is_empty() {
            return Err(self.err("table must have at least one column"));
        }
        if columns.iter().filter(|c| c.primary_key).count() > 1 {
            return Err(self.err("at most one PRIMARY KEY column"));
        }
        if columns.iter().any(|c| c.auto_increment && !c.primary_key) {
            return Err(self.err("AUTO_INCREMENT only on the PRIMARY KEY"));
        }
        Ok(TableSchema {
            name,
            columns,
            indexes,
        })
    }

    fn insert_body(&mut self) -> Result<Insert, ParseError> {
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.identifier()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            if row.len() != columns.len() {
                return Err(self.err("VALUES tuple arity differs from column list"));
            }
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Insert {
            table,
            columns,
            rows,
        })
    }

    fn select_body(&mut self) -> Result<Select, ParseError> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let column = self.identifier()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { column, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.unsigned()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.unsigned()?);
            }
        }
        Ok(Select {
            items,
            table,
            where_clause,
            order_by,
            limit,
            offset,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        for (kw, agg) in [
            ("COUNT", Aggregate::Count),
            ("MAX", Aggregate::Max),
            ("MIN", Aggregate::Min),
            ("SUM", Aggregate::Sum),
        ] {
            if self.peek_kw(kw) && matches!(self.tokens.get(self.pos + 1), Some(Token::Sym("("))) {
                self.pos += 2;
                let column = if self.eat_sym("*") {
                    if agg != Aggregate::Count {
                        return Err(self.err("only COUNT accepts *"));
                    }
                    None
                } else {
                    Some(self.identifier()?)
                };
                self.expect_sym(")")?;
                let alias = if self.eat_kw("AS") {
                    Some(self.identifier()?)
                } else {
                    None
                };
                return Ok(SelectItem::Agg { agg, column, alias });
            }
        }
        let name = self.identifier()?;
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Column { name, alias })
    }

    fn update_body(&mut self) -> Result<Update, ParseError> {
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_sym("=")?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete_body(&mut self) -> Result<Delete, ParseError> {
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Delete {
            table,
            where_clause,
        })
    }

    fn unsigned(&mut self) -> Result<u64, ParseError> {
        match self.peek() {
            Some(Token::Int(i)) if *i >= 0 => {
                let v = *i as u64;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err("expected non-negative integer")),
        }
    }

    // Expression grammar, loosest to tightest:
    //   or_expr   := and_expr (OR and_expr)*
    //   and_expr  := not_expr (AND not_expr)*
    //   not_expr  := NOT not_expr | predicate
    //   predicate := additive ((=|!=|<|<=|>|>=) additive
    //                | IS [NOT] NULL | [NOT] IN (...) | [NOT] LIKE 'pat')?
    //   additive  := multiplicative ((+|-) multiplicative)*
    //   multiplicative := unary ((*|/|%) unary)*
    //   unary     := - unary | atom
    //   atom      := literal | identifier | ( or_expr )
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        // IS [NOT] NULL.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN / [NOT] LIKE.
        let negated = if self.peek_kw("NOT")
            && self
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.is_kw("IN") || t.is_kw("LIKE"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.additive()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.peek() {
                Some(Token::Str(s)) => {
                    let s = s.clone();
                    self.pos += 1;
                    s
                }
                _ => return Err(self.err("LIKE requires a string literal pattern")),
            };
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(self.err("dangling NOT"));
        }
        for (sym, op) in [
            ("=", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            ("<", BinOp::Lt),
            (">=", BinOp::Ge),
            (">", BinOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let rhs = self.additive()?;
                return Ok(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                });
            }
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Add
            } else if self.eat_sym("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_sym("*") {
                BinOp::Mul
            } else if self.eat_sym("/") {
                BinOp::Div
            } else if self.eat_sym("%") {
                BinOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(SqlValue::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(SqlValue::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(SqlValue::Text(s)))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Expr::Literal(SqlValue::Null))
            }
            Some(Token::Word(w)) => {
                self.pos += 1;
                Ok(Expr::Column(w))
            }
            Some(Token::Sym("(")) => {
                self.pos += 1;
                let e = self.or_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE pages (id INT PRIMARY KEY AUTO_INCREMENT, \
             title VARCHAR(255), views INT, INDEX(title))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(s) => {
                assert_eq!(s.name, "pages");
                assert_eq!(s.columns.len(), 3);
                assert!(s.columns[0].auto_increment);
                assert_eq!(s.indexes, vec!["title"]);
            }
            other => panic!("expected CreateTable, got {other:?}"),
        }
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert(i) => {
                assert_eq!(i.columns, vec!["a", "b"]);
                assert_eq!(i.rows.len(), 2);
            }
            other => panic!("expected Insert, got {other:?}"),
        }
    }

    #[test]
    fn parse_select_full() {
        let stmt = parse_statement(
            "SELECT id, title AS t, COUNT(*) FROM pages \
             WHERE views > 10 AND title LIKE 'Ab%' \
             ORDER BY views DESC, id LIMIT 5 OFFSET 2",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 3);
                assert_eq!(s.order_by.len(), 2);
                assert!(s.order_by[0].desc);
                assert!(!s.order_by[1].desc);
                assert_eq!(s.limit, Some(5));
                assert_eq!(s.offset, Some(2));
            }
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parse_update_with_arith() {
        let stmt = parse_statement("UPDATE pages SET views = views + 1 WHERE id = 3").unwrap();
        match stmt {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 1);
                assert!(u.where_clause.is_some());
            }
            other => panic!("expected Update, got {other:?}"),
        }
    }

    #[test]
    fn parse_delete() {
        let stmt = parse_statement("DELETE FROM t WHERE id IN (1, 2, 3)").unwrap();
        match stmt {
            Statement::Delete(d) => {
                assert!(matches!(d.where_clause, Some(Expr::InList { .. })));
            }
            other => panic!("expected Delete, got {other:?}"),
        }
    }

    #[test]
    fn parse_is_null_and_not() {
        let stmt = parse_statement("SELECT * FROM t WHERE a IS NOT NULL AND NOT b = 1").unwrap();
        match stmt {
            Statement::Select(s) => assert!(s.where_clause.is_some()),
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (1)").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE").is_err());
        assert!(parse_statement("DROP TABLE t").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage !").is_err());
        assert!(parse_statement("CREATE TABLE t (a TEXT AUTO_INCREMENT PRIMARY KEY)").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn unary_minus_literals() {
        let stmt = parse_statement("SELECT * FROM t WHERE a = -5").unwrap();
        match stmt {
            Statement::Select(s) => {
                let w = s.where_clause.unwrap();
                assert!(matches!(w, Expr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        // a = 1 OR b = 2 AND c = 3  parses as  a=1 OR (b=2 AND c=3).
        let stmt = parse_statement("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match stmt {
            Statement::Select(s) => match s.where_clause.unwrap() {
                Expr::Binary {
                    op: BinOp::Or, rhs, ..
                } => {
                    assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
                }
                other => panic!("expected OR at top, got {other:?}"),
            },
            other => panic!("expected Select, got {other:?}"),
        }
    }
}
