//! Abstract syntax for the SQL subset.

use crate::value::SqlValue;

/// A scalar expression in WHERE clauses, SET assignments, and projections.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(SqlValue),
    /// Reference to a column of the current row.
    Column(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr LIKE 'pat%'` with `%` and `_` wildcards.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern (a literal in this dialect).
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Aggregate functions supported in SELECT projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)` or `COUNT(col)` (non-NULL count).
    Count,
    /// `MAX(col)`.
    Max,
    /// `MIN(col)`.
    Min,
    /// `SUM(col)`.
    Sum,
}

/// One item of a SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns.
    Wildcard,
    /// A named column, with optional `AS` alias.
    Column {
        /// Column name.
        name: String,
        /// Output alias (defaults to the column name).
        alias: Option<String>,
    },
    /// An aggregate over a column (`None` column means `COUNT(*)`).
    Agg {
        /// Which aggregate.
        agg: Aggregate,
        /// Aggregated column; `None` only for `COUNT(*)`.
        column: Option<String>,
        /// Output alias (defaults to e.g. `COUNT(*)`).
        alias: Option<String>,
    },
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Column to sort by.
    pub column: String,
    /// True for descending.
    pub desc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Source table.
    pub table: String,
    /// Optional filter.
    pub where_clause: Option<Expr>,
    /// Sort keys, outermost first.
    pub order_by: Vec<OrderKey>,
    /// Row limit.
    pub limit: Option<u64>,
    /// Rows to skip before the limit.
    pub offset: Option<u64>,
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Column list (must be non-empty in this dialect).
    pub columns: Vec<String>,
    /// One or more value tuples; expressions must be literal-foldable.
    pub rows: Vec<Vec<Expr>>,
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET col = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional filter.
    pub where_clause: Option<Expr>,
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Optional filter.
    pub where_clause: Option<Expr>,
}

/// Any statement of the dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(crate::schema::TableSchema),
    /// `INSERT INTO`.
    Insert(Insert),
    /// `SELECT`.
    Select(Select),
    /// `UPDATE`.
    Update(Update),
    /// `DELETE FROM`.
    Delete(Delete),
}

impl Statement {
    /// True for statements that modify table contents or schema.
    pub fn is_write(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }

    /// The table this statement touches (used for read-query
    /// deduplication's table-modification epochs, §4.5).
    pub fn table(&self) -> &str {
        match self {
            Statement::CreateTable(s) => &s.name,
            Statement::Insert(i) => &i.table,
            Statement::Select(s) => &s.table,
            Statement::Update(u) => &u.table,
            Statement::Delete(d) => &d.table,
        }
    }
}

impl Expr {
    /// Collects every column name referenced by the expression.
    pub fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(c) => out.push(c.clone()),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for item in list {
                    item.collect_columns(out);
                }
            }
            Expr::Like { expr, .. } => expr.collect_columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_write_classification() {
        let sel = Statement::Select(Select {
            items: vec![SelectItem::Wildcard],
            table: "t".into(),
            where_clause: None,
            order_by: vec![],
            limit: None,
            offset: None,
        });
        assert!(!sel.is_write());
        let del = Statement::Delete(Delete {
            table: "t".into(),
            where_clause: None,
        });
        assert!(del.is_write());
        assert_eq!(del.table(), "t");
    }

    #[test]
    fn collect_columns_walks_nested() {
        let e = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(Expr::Column("a".into())),
                rhs: Box::new(Expr::Literal(SqlValue::Int(1))),
            }),
            rhs: Box::new(Expr::InList {
                expr: Box::new(Expr::Column("b".into())),
                list: vec![Expr::Column("c".into())],
                negated: false,
            }),
        };
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec!["a", "b", "c"]);
    }
}
