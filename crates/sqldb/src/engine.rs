//! The online database engine.
//!
//! A [`Database`] holds tables of rows and executes parsed statements.
//! Concurrency control is a single global lock ([`SharedDatabase`]): a
//! transaction acquires the lock at `BEGIN` and releases it at commit or
//! rollback, which trivially provides the **strict serializability** SSCO
//! requires of the database object (§4.4) — the paper notes this isolation
//! level "sacrifices some concurrency compared to MySQL's default", and
//! the Fig. 8 throughput comparison inherits that cost.
//!
//! Each transaction (including a single auto-committed statement) receives
//! a global **sequence number at its linearization point** — while the
//! lock is held — which the record library uses as the operation-log
//! position (§4.7: "our code in MySQL assigns a unique sequence number to
//! the query (or transaction)").
//!
//! Statement errors poison the enclosing transaction: its effects are
//! rolled back and `commit` reports failure. This matches the logged
//! `succeeded` flag of the `DbOp` opcontents (Fig. 12).

use crate::ast::{
    Aggregate, BinOp, Delete, Expr, Insert, OrderKey, Select, SelectItem, Statement, Update,
};
use crate::parser::{parse_statement, ParseError};
use crate::schema::TableSchema;
use crate::value::{IndexKey, SqlValue};
use parking_lot::lock_api::ArcMutexGuard;
use parking_lot::{Mutex, RawMutex};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The statement failed to parse.
    Parse(ParseError),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// CREATE TABLE of an existing table.
    DuplicateTable(String),
    /// Primary-key uniqueness violation.
    DuplicateKey(String),
    /// A value did not fit the column type.
    TypeError(String),
    /// Arithmetic failure (overflow, division by zero on ints).
    Arithmetic(String),
    /// Aggregates mixed with plain columns, or similar shape errors.
    Unsupported(String),
    /// Operation on a transaction that already failed.
    TransactionAborted,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            SqlError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            SqlError::TypeError(m) => write!(f, "type error: {m}"),
            SqlError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SqlError::TransactionAborted => write!(f, "transaction aborted"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

/// Result of a database write statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteOutcome {
    /// Rows inserted / matched / deleted.
    pub affected: u64,
    /// Auto-increment id assigned by an INSERT (last one for multi-row).
    pub last_insert_id: Option<i64>,
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT result: column names plus rows.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Vec<SqlValue>>,
    },
    /// Write result.
    Write(WriteOutcome),
}

impl ExecOutcome {
    /// Borrows the rows of a SELECT outcome.
    pub fn rows(&self) -> Option<&[Vec<SqlValue>]> {
        match self {
            ExecOutcome::Rows { rows, .. } => Some(rows),
            ExecOutcome::Write(_) => None,
        }
    }

    /// Borrows the write outcome.
    pub fn write(&self) -> Option<WriteOutcome> {
        match self {
            ExecOutcome::Write(w) => Some(*w),
            ExecOutcome::Rows { .. } => None,
        }
    }
}

/// One stored table.
#[derive(Debug, Clone)]
pub(crate) struct Table {
    pub(crate) schema: TableSchema,
    /// Rows keyed by rowid; iteration order (rowid order) is the
    /// deterministic scan order that the versioned store must reproduce.
    pub(crate) rows: BTreeMap<u64, Vec<SqlValue>>,
    pub(crate) next_rowid: u64,
    /// Next auto-increment value.
    pub(crate) auto_inc: i64,
    /// Primary-key uniqueness index: pk value -> rowid.
    pub(crate) pk_index: HashMap<IndexKey, u64>,
}

impl Table {
    fn new(schema: TableSchema) -> Self {
        Self {
            schema,
            rows: BTreeMap::new(),
            next_rowid: 1,
            auto_inc: 1,
            pk_index: HashMap::new(),
        }
    }

    fn rebuild_pk_index(&mut self) {
        self.pk_index.clear();
        if let Some(pk) = self.schema.primary_key_index() {
            for (rowid, row) in &self.rows {
                self.pk_index.insert(row[pk].index_key(), *rowid);
            }
        }
    }
}

/// Undo record for transaction rollback.
#[derive(Debug, Clone)]
enum UndoOp {
    InsertedRow {
        table: String,
        rowid: u64,
    },
    UpdatedRow {
        table: String,
        rowid: u64,
        old: Vec<SqlValue>,
    },
    DeletedRow {
        table: String,
        rowid: u64,
        old: Vec<SqlValue>,
    },
    Counters {
        table: String,
        next_rowid: u64,
        auto_inc: i64,
    },
    CreatedTable {
        table: String,
    },
}

#[derive(Debug, Default)]
struct TxnState {
    undo: Vec<UndoOp>,
    poisoned: bool,
}

/// The database proper (single-threaded; see [`SharedDatabase`] for the
/// concurrent wrapper).
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    next_seq: u64,
    txn: Option<TxnState>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Table names in deterministic order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// The schema of `table`.
    pub fn schema(&self, table: &str) -> Option<&TableSchema> {
        self.tables.get(table).map(|t| &t.schema)
    }

    /// Number of rows currently in `table`.
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.tables.get(table).map(|t| t.rows.len())
    }

    /// Deep-copies the database contents (schemas, rows, counters) —
    /// used to snapshot final state for the next audit period (§4.1).
    pub fn deep_clone(&self) -> Database {
        Database {
            tables: self.tables.clone(),
            next_seq: 0,
            txn: None,
        }
    }

    /// Rough byte size of all live rows (for the Fig. 8 DB-overhead
    /// column).
    pub fn estimated_bytes(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.rows.values().map(|r| row_bytes(r)).sum::<usize>())
            .sum()
    }

    /// Internal iteration for snapshotting: `(rowid, row)` pairs in scan
    /// order, plus counters.
    pub(crate) fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    #[allow(dead_code)]
    pub(crate) fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Installs a table with explicit contents and counters (used by the
    /// versioned store's materialization and snapshot paths).
    pub(crate) fn install_table(&mut self, table: Table) {
        self.tables.insert(table.schema.name.clone(), table);
    }

    pub(crate) fn make_table(
        schema: TableSchema,
        rows: Vec<Vec<SqlValue>>,
        next_rowid: u64,
        auto_inc: i64,
    ) -> Table {
        let mut t = Table::new(schema);
        for row in rows {
            let rowid = t.next_rowid;
            t.next_rowid += 1;
            t.rows.insert(rowid, row);
        }
        t.next_rowid = t.next_rowid.max(next_rowid);
        t.auto_inc = auto_inc;
        t.rebuild_pk_index();
        t
    }

    /// Begins a transaction.
    ///
    /// Fails if one is already active (the SSCO model forbids nesting,
    /// §4.4).
    pub fn begin(&mut self) -> Result<(), SqlError> {
        if self.txn.is_some() {
            return Err(SqlError::Unsupported("nested transaction".into()));
        }
        self.txn = Some(TxnState::default());
        Ok(())
    }

    /// True while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// True if the open transaction has failed.
    pub fn txn_poisoned(&self) -> bool {
        self.txn.as_ref().is_some_and(|t| t.poisoned)
    }

    /// Commits the open transaction, assigning its global sequence
    /// number. Returns `(seq, succeeded)`: a poisoned transaction was
    /// already rolled back and commits as `succeeded = false`.
    pub fn commit(&mut self) -> Result<(u64, bool), SqlError> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| SqlError::Unsupported("commit without transaction".into()))?;
        self.next_seq += 1;
        Ok((self.next_seq, !txn.poisoned))
    }

    /// Rolls back the open transaction. The abort still consumes a
    /// sequence number: it is an operation in the log (its reads fed the
    /// program).
    pub fn rollback(&mut self) -> Result<u64, SqlError> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| SqlError::Unsupported("rollback without transaction".into()))?;
        if !txn.poisoned {
            self.apply_undo(txn.undo);
        }
        self.next_seq += 1;
        Ok(self.next_seq)
    }

    /// Executes one statement inside the open transaction. On error the
    /// transaction is poisoned and rolled back; subsequent statements
    /// fail with [`SqlError::TransactionAborted`].
    pub fn execute_in_txn(&mut self, sql: &str) -> Result<ExecOutcome, SqlError> {
        if self.txn.is_none() {
            return Err(SqlError::Unsupported(
                "execute_in_txn outside transaction".into(),
            ));
        }
        if self.txn_poisoned() {
            return Err(SqlError::TransactionAborted);
        }
        let stmt = match parse_statement(sql) {
            Ok(s) => s,
            Err(e) => {
                self.poison();
                return Err(e.into());
            }
        };
        match self.execute_stmt(&stmt) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.poison();
                Err(e)
            }
        }
    }

    fn poison(&mut self) {
        if let Some(txn) = self.txn.as_mut() {
            txn.poisoned = true;
            let undo = std::mem::take(&mut txn.undo);
            self.apply_undo(undo);
        }
    }

    /// Auto-commit execution: a one-statement transaction. Returns the
    /// outcome and the assigned sequence number; on error the statement's
    /// effects are rolled back and the sequence number is still consumed
    /// (the failed op is logged with `succeeded = false`).
    pub fn execute_autocommit(&mut self, sql: &str) -> (Result<ExecOutcome, SqlError>, u64) {
        self.begin().expect("no open transaction in autocommit");
        let result = self.execute_in_txn(sql);
        match &result {
            Ok(_) => {
                let (seq, ok) = self.commit().expect("txn open");
                debug_assert!(ok);
                (result, seq)
            }
            Err(_) => {
                // Poisoned: already rolled back; commit records failure.
                let (seq, ok) = self.commit().expect("txn open");
                debug_assert!(!ok);
                (result, seq)
            }
        }
    }

    /// Executes a parsed statement (requires an open, healthy
    /// transaction for undo bookkeeping; the public paths guarantee
    /// this).
    pub(crate) fn execute_stmt(&mut self, stmt: &Statement) -> Result<ExecOutcome, SqlError> {
        match stmt {
            Statement::CreateTable(schema) => self.exec_create(schema),
            Statement::Insert(insert) => self.exec_insert(insert),
            Statement::Select(select) => self.exec_select(select),
            Statement::Update(update) => self.exec_update(update),
            Statement::Delete(delete) => self.exec_delete(delete),
        }
    }

    fn undo_push(&mut self, op: UndoOp) {
        if let Some(txn) = self.txn.as_mut() {
            txn.undo.push(op);
        }
    }

    fn apply_undo(&mut self, undo: Vec<UndoOp>) {
        let mut touched: Vec<String> = Vec::new();
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::InsertedRow { table, rowid } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.rows.remove(&rowid);
                        touched.push(table);
                    }
                }
                UndoOp::UpdatedRow { table, rowid, old } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.rows.insert(rowid, old);
                        touched.push(table);
                    }
                }
                UndoOp::DeletedRow { table, rowid, old } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.rows.insert(rowid, old);
                        touched.push(table);
                    }
                }
                UndoOp::Counters {
                    table,
                    next_rowid,
                    auto_inc,
                } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.next_rowid = next_rowid;
                        t.auto_inc = auto_inc;
                    }
                }
                UndoOp::CreatedTable { table } => {
                    self.tables.remove(&table);
                }
            }
        }
        touched.sort();
        touched.dedup();
        for name in touched {
            if let Some(t) = self.tables.get_mut(&name) {
                t.rebuild_pk_index();
            }
        }
    }

    fn exec_create(&mut self, schema: &TableSchema) -> Result<ExecOutcome, SqlError> {
        if self.tables.contains_key(&schema.name) {
            return Err(SqlError::DuplicateTable(schema.name.clone()));
        }
        for idx in &schema.indexes {
            if schema.column_index(idx).is_none() {
                return Err(SqlError::NoSuchColumn(idx.clone()));
            }
        }
        self.tables
            .insert(schema.name.clone(), Table::new(schema.clone()));
        self.undo_push(UndoOp::CreatedTable {
            table: schema.name.clone(),
        });
        Ok(ExecOutcome::Write(WriteOutcome::default()))
    }

    fn exec_insert(&mut self, insert: &Insert) -> Result<ExecOutcome, SqlError> {
        let table = self
            .tables
            .get(&insert.table)
            .ok_or_else(|| SqlError::NoSuchTable(insert.table.clone()))?;
        let schema = table.schema.clone();
        // Map provided columns to schema positions.
        let mut positions = Vec::with_capacity(insert.columns.len());
        for col in &insert.columns {
            positions.push(
                schema
                    .column_index(col)
                    .ok_or_else(|| SqlError::NoSuchColumn(col.clone()))?,
            );
        }
        let pk = schema.primary_key_index();
        let auto = schema.has_auto_increment();
        let (saved_rowid, saved_auto) = {
            let table = self
                .tables
                .get(&insert.table)
                .expect("checked existence above");
            (table.next_rowid, table.auto_inc)
        };
        self.undo_push(UndoOp::Counters {
            table: insert.table.clone(),
            next_rowid: saved_rowid,
            auto_inc: saved_auto,
        });
        let mut last_id: Option<i64> = None;
        let mut inserted = 0u64;
        for tuple in &insert.rows {
            let mut row = vec![SqlValue::Null; schema.columns.len()];
            for (expr, pos) in tuple.iter().zip(&positions) {
                // INSERT values may not reference columns.
                row[*pos] = eval_expr(expr, None, &schema)?;
            }
            // Auto-increment fill.
            if let (Some(pk_pos), true) = (pk, auto) {
                let table = self
                    .tables
                    .get_mut(&insert.table)
                    .expect("checked existence above");
                if row[pk_pos].is_null() {
                    row[pk_pos] = SqlValue::Int(table.auto_inc);
                    last_id = Some(table.auto_inc);
                    table.auto_inc += 1;
                } else if let Some(v) = row[pk_pos].as_i64() {
                    table.auto_inc = table.auto_inc.max(v + 1);
                }
            }
            // Type checks.
            for (pos, col) in schema.columns.iter().enumerate() {
                if !col.ty.admits(&row[pos]) {
                    return Err(SqlError::TypeError(format!(
                        "value {} not valid for column {}",
                        row[pos], col.name
                    )));
                }
            }
            let table = self
                .tables
                .get_mut(&insert.table)
                .expect("checked existence above");
            // Primary-key uniqueness.
            if let Some(pk_pos) = pk {
                let key = row[pk_pos].index_key();
                if table.pk_index.contains_key(&key) {
                    return Err(SqlError::DuplicateKey(format!("{}", row[pk_pos])));
                }
                let rowid = table.next_rowid;
                table.pk_index.insert(key, rowid);
            }
            let rowid = table.next_rowid;
            table.next_rowid += 1;
            table.rows.insert(rowid, row);
            inserted += 1;
            self.undo_push(UndoOp::InsertedRow {
                table: insert.table.clone(),
                rowid,
            });
        }
        Ok(ExecOutcome::Write(WriteOutcome {
            affected: inserted,
            last_insert_id: last_id,
        }))
    }

    fn exec_select(&mut self, select: &Select) -> Result<ExecOutcome, SqlError> {
        let table = self
            .tables
            .get(&select.table)
            .ok_or_else(|| SqlError::NoSuchTable(select.table.clone()))?;
        let rows: Vec<&Vec<SqlValue>> = table.rows.values().collect();
        run_select(select, &table.schema, rows.into_iter())
    }

    fn exec_update(&mut self, update: &Update) -> Result<ExecOutcome, SqlError> {
        let table = self
            .tables
            .get(&update.table)
            .ok_or_else(|| SqlError::NoSuchTable(update.table.clone()))?;
        let schema = table.schema.clone();
        let mut set_positions = Vec::with_capacity(update.assignments.len());
        for (col, _) in &update.assignments {
            set_positions.push(
                schema
                    .column_index(col)
                    .ok_or_else(|| SqlError::NoSuchColumn(col.clone()))?,
            );
        }
        // Collect matching rowids first (borrow discipline), then apply.
        let mut matches = Vec::new();
        for (rowid, row) in &table.rows {
            if eval_where(&update.where_clause, row, &schema)? {
                matches.push(*rowid);
            }
        }
        let pk = schema.primary_key_index();
        let mut affected = 0u64;
        for rowid in matches {
            let table = self
                .tables
                .get(&update.table)
                .expect("checked existence above");
            let old = table.rows[&rowid].clone();
            let mut new = old.clone();
            for ((_, expr), pos) in update.assignments.iter().zip(&set_positions) {
                new[*pos] = eval_expr(expr, Some(&old), &schema)?;
                if !schema.columns[*pos].ty.admits(&new[*pos]) {
                    return Err(SqlError::TypeError(format!(
                        "value {} not valid for column {}",
                        new[*pos], schema.columns[*pos].name
                    )));
                }
            }
            // Primary-key change: maintain uniqueness.
            if let Some(pk_pos) = pk {
                let old_key = old[pk_pos].index_key();
                let new_key = new[pk_pos].index_key();
                if old_key != new_key {
                    let table = self
                        .tables
                        .get_mut(&update.table)
                        .expect("checked existence above");
                    if table.pk_index.contains_key(&new_key) {
                        return Err(SqlError::DuplicateKey(format!("{}", new[pk_pos])));
                    }
                    table.pk_index.remove(&old_key);
                    table.pk_index.insert(new_key, rowid);
                }
            }
            let table = self
                .tables
                .get_mut(&update.table)
                .expect("checked existence above");
            table.rows.insert(rowid, new);
            affected += 1;
            self.undo_push(UndoOp::UpdatedRow {
                table: update.table.clone(),
                rowid,
                old,
            });
        }
        Ok(ExecOutcome::Write(WriteOutcome {
            affected,
            last_insert_id: None,
        }))
    }

    fn exec_delete(&mut self, delete: &Delete) -> Result<ExecOutcome, SqlError> {
        let table = self
            .tables
            .get(&delete.table)
            .ok_or_else(|| SqlError::NoSuchTable(delete.table.clone()))?;
        let schema = table.schema.clone();
        let mut matches = Vec::new();
        for (rowid, row) in &table.rows {
            if eval_where(&delete.where_clause, row, &schema)? {
                matches.push(*rowid);
            }
        }
        let pk = schema.primary_key_index();
        let mut affected = 0u64;
        for rowid in matches {
            let table = self
                .tables
                .get_mut(&delete.table)
                .expect("checked existence above");
            if let Some(old) = table.rows.remove(&rowid) {
                if let Some(pk_pos) = pk {
                    table.pk_index.remove(&old[pk_pos].index_key());
                }
                affected += 1;
                self.undo_push(UndoOp::DeletedRow {
                    table: delete.table.clone(),
                    rowid,
                    old,
                });
            }
        }
        Ok(ExecOutcome::Write(WriteOutcome {
            affected,
            last_insert_id: None,
        }))
    }
}

fn row_bytes(row: &[SqlValue]) -> usize {
    row.iter()
        .map(|v| match v {
            SqlValue::Null => 1,
            SqlValue::Int(_) => 8,
            SqlValue::Float(_) => 8,
            SqlValue::Text(s) => s.len() + 1,
        })
        .sum()
}

/// Evaluates a WHERE clause against a row (absent clause = true).
pub(crate) fn eval_where(
    clause: &Option<Expr>,
    row: &[SqlValue],
    schema: &TableSchema,
) -> Result<bool, SqlError> {
    match clause {
        None => Ok(true),
        Some(expr) => Ok(eval_expr(expr, Some(row), schema)?.is_truthy()),
    }
}

/// Evaluates a scalar expression. `row` is `None` in contexts where
/// column references are illegal (INSERT values).
pub(crate) fn eval_expr(
    expr: &Expr,
    row: Option<&[SqlValue]>,
    schema: &TableSchema,
) -> Result<SqlValue, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            let pos = schema
                .column_index(name)
                .ok_or_else(|| SqlError::NoSuchColumn(name.clone()))?;
            match row {
                Some(r) => Ok(r[pos].clone()),
                None => Err(SqlError::Unsupported(
                    "column reference outside row context".into(),
                )),
            }
        }
        Expr::Neg(inner) => match eval_expr(inner, row, schema)? {
            SqlValue::Int(i) => {
                Ok(SqlValue::Int(i.checked_neg().ok_or_else(|| {
                    SqlError::Arithmetic("negation overflow".into())
                })?))
            }
            SqlValue::Float(f) => Ok(SqlValue::Float(-f)),
            SqlValue::Null => Ok(SqlValue::Null),
            other => Err(SqlError::TypeError(format!("cannot negate {other}"))),
        },
        Expr::Not(inner) => {
            let v = eval_expr(inner, row, schema)?;
            if v.is_null() {
                Ok(SqlValue::Null)
            } else {
                Ok(SqlValue::Int(!v.is_truthy() as i64))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, row, schema)?;
            Ok(SqlValue::Int((v.is_null() != *negated) as i64))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, row, schema)?;
            if v.is_null() {
                return Ok(SqlValue::Null);
            }
            let mut found = false;
            for item in list {
                let w = eval_expr(item, row, schema)?;
                if v.sql_eq(&w) == Some(true) {
                    found = true;
                    break;
                }
            }
            Ok(SqlValue::Int((found != *negated) as i64))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(expr, row, schema)?;
            match v {
                SqlValue::Null => Ok(SqlValue::Null),
                SqlValue::Text(s) => {
                    Ok(SqlValue::Int((like_match(&s, pattern) != *negated) as i64))
                }
                other => Err(SqlError::TypeError(format!("LIKE on non-text {other}"))),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_expr(lhs, row, schema)?;
            match op {
                BinOp::And => {
                    // SQL three-valued AND with short circuit on false.
                    if !a.is_null() && !a.is_truthy() {
                        return Ok(SqlValue::Int(0));
                    }
                    let b = eval_expr(rhs, row, schema)?;
                    if !b.is_null() && !b.is_truthy() {
                        return Ok(SqlValue::Int(0));
                    }
                    if a.is_null() || b.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    Ok(SqlValue::Int(1))
                }
                BinOp::Or => {
                    if !a.is_null() && a.is_truthy() {
                        return Ok(SqlValue::Int(1));
                    }
                    let b = eval_expr(rhs, row, schema)?;
                    if !b.is_null() && b.is_truthy() {
                        return Ok(SqlValue::Int(1));
                    }
                    if a.is_null() || b.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    Ok(SqlValue::Int(0))
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let b = eval_expr(rhs, row, schema)?;
                    match a.sql_cmp(&b) {
                        None => Ok(SqlValue::Null),
                        Some(ord) => {
                            let truth = match op {
                                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                                BinOp::Ne => ord != std::cmp::Ordering::Equal,
                                BinOp::Lt => ord == std::cmp::Ordering::Less,
                                BinOp::Le => ord != std::cmp::Ordering::Greater,
                                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                                BinOp::Ge => ord != std::cmp::Ordering::Less,
                                _ => unreachable!("comparison ops only"),
                            };
                            Ok(SqlValue::Int(truth as i64))
                        }
                    }
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    let b = eval_expr(rhs, row, schema)?;
                    arith(*op, &a, &b)
                }
            }
        }
    }
}

fn arith(op: BinOp, a: &SqlValue, b: &SqlValue) -> Result<SqlValue, SqlError> {
    if a.is_null() || b.is_null() {
        return Ok(SqlValue::Null);
    }
    match (a, b) {
        (SqlValue::Int(x), SqlValue::Int(y)) => {
            let r = match op {
                BinOp::Add => x.checked_add(*y),
                BinOp::Sub => x.checked_sub(*y),
                BinOp::Mul => x.checked_mul(*y),
                // Division always yields float (MySQL-style `/`).
                BinOp::Div => {
                    if *y == 0 {
                        return Ok(SqlValue::Null);
                    }
                    return Ok(SqlValue::Float(*x as f64 / *y as f64));
                }
                BinOp::Mod => {
                    if *y == 0 {
                        return Ok(SqlValue::Null);
                    }
                    return Ok(SqlValue::Int(x % y));
                }
                _ => unreachable!("arith ops only"),
            };
            r.map(SqlValue::Int)
                .ok_or_else(|| SqlError::Arithmetic("integer overflow".into()))
        }
        _ => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(SqlError::TypeError(format!(
                        "arithmetic on non-numbers {a} and {b}"
                    )))
                }
            };
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return Ok(SqlValue::Null);
                    }
                    x / y
                }
                BinOp::Mod => {
                    if y == 0.0 {
                        return Ok(SqlValue::Null);
                    }
                    x % y
                }
                _ => unreachable!("arith ops only"),
            };
            Ok(SqlValue::Float(r))
        }
    }
}

/// SQL LIKE with `%` (any run) and `_` (any char).
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                for skip in 0..=s.len() {
                    if rec(&s[skip..], &p[1..]) {
                        return true;
                    }
                }
                false
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// Runs a SELECT against any row iterator; shared by the online engine
/// and the versioned store.
pub(crate) fn run_select<'a>(
    select: &Select,
    schema: &TableSchema,
    rows: impl Iterator<Item = &'a Vec<SqlValue>>,
) -> Result<ExecOutcome, SqlError> {
    // Filter.
    let mut kept: Vec<&Vec<SqlValue>> = Vec::new();
    for row in rows {
        if eval_where(&select.where_clause, row, schema)? {
            kept.push(row);
        }
    }
    // Aggregate vs plain projection.
    let has_agg = select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Agg { .. }));
    if has_agg {
        if select
            .items
            .iter()
            .any(|i| !matches!(i, SelectItem::Agg { .. }))
        {
            return Err(SqlError::Unsupported(
                "mixing aggregates and plain columns (no GROUP BY)".into(),
            ));
        }
        let mut columns = Vec::new();
        let mut out_row = Vec::new();
        for item in &select.items {
            if let SelectItem::Agg { agg, column, alias } = item {
                let col_pos = match column {
                    Some(name) => Some(
                        schema
                            .column_index(name)
                            .ok_or_else(|| SqlError::NoSuchColumn(name.clone()))?,
                    ),
                    None => None,
                };
                let default_name = match (agg, column) {
                    (Aggregate::Count, None) => "COUNT(*)".to_string(),
                    (a, Some(c)) => format!("{a:?}({c})").to_uppercase(),
                    (a, None) => format!("{a:?}(*)").to_uppercase(),
                };
                columns.push(alias.clone().unwrap_or(default_name));
                out_row.push(eval_aggregate(*agg, col_pos, &kept)?);
            }
        }
        return Ok(ExecOutcome::Rows {
            columns,
            rows: vec![out_row],
        });
    }
    // ORDER BY (stable sort preserves scan order for ties).
    if !select.order_by.is_empty() {
        let mut keys = Vec::with_capacity(select.order_by.len());
        for OrderKey { column, .. } in &select.order_by {
            keys.push(
                schema
                    .column_index(column)
                    .ok_or_else(|| SqlError::NoSuchColumn(column.clone()))?,
            );
        }
        kept.sort_by(|a, b| {
            for (key, ok) in keys.iter().zip(&select.order_by) {
                let ord = a[*key].order_cmp(&b[*key]);
                let ord = if ok.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    // OFFSET / LIMIT.
    let offset = select.offset.unwrap_or(0) as usize;
    let kept: Vec<&Vec<SqlValue>> = if offset >= kept.len() {
        Vec::new()
    } else {
        match select.limit {
            Some(n) => kept[offset..].iter().take(n as usize).copied().collect(),
            None => kept[offset..].to_vec(),
        }
    };
    // Projection.
    let mut columns = Vec::new();
    let mut projections: Vec<usize> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for (pos, col) in schema.columns.iter().enumerate() {
                    columns.push(col.name.clone());
                    projections.push(pos);
                }
            }
            SelectItem::Column { name, alias } => {
                let pos = schema
                    .column_index(name)
                    .ok_or_else(|| SqlError::NoSuchColumn(name.clone()))?;
                columns.push(alias.clone().unwrap_or_else(|| name.clone()));
                projections.push(pos);
            }
            SelectItem::Agg { .. } => unreachable!("aggregate path handled above"),
        }
    }
    let rows = kept
        .into_iter()
        .map(|row| projections.iter().map(|p| row[*p].clone()).collect())
        .collect();
    Ok(ExecOutcome::Rows { columns, rows })
}

fn eval_aggregate(
    agg: Aggregate,
    col: Option<usize>,
    rows: &[&Vec<SqlValue>],
) -> Result<SqlValue, SqlError> {
    match agg {
        Aggregate::Count => match col {
            None => Ok(SqlValue::Int(rows.len() as i64)),
            Some(pos) => Ok(SqlValue::Int(
                rows.iter().filter(|r| !r[pos].is_null()).count() as i64,
            )),
        },
        Aggregate::Max | Aggregate::Min => {
            let pos =
                col.ok_or_else(|| SqlError::Unsupported("MAX/MIN require a column".into()))?;
            let mut best: Option<&SqlValue> = None;
            for row in rows {
                if row[pos].is_null() {
                    continue;
                }
                best = Some(match best {
                    None => &row[pos],
                    Some(b) => {
                        let ord = row[pos].order_cmp(b);
                        let take = if agg == Aggregate::Max {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        };
                        if take {
                            &row[pos]
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(SqlValue::Null))
        }
        Aggregate::Sum => {
            let pos = col.ok_or_else(|| SqlError::Unsupported("SUM requires a column".into()))?;
            let mut any = false;
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut is_float = false;
            for row in rows {
                match &row[pos] {
                    SqlValue::Null => {}
                    SqlValue::Int(i) => {
                        any = true;
                        match int_sum.checked_add(*i) {
                            Some(s) => int_sum = s,
                            None => return Err(SqlError::Arithmetic("SUM overflow".into())),
                        }
                    }
                    SqlValue::Float(f) => {
                        any = true;
                        is_float = true;
                        float_sum += f;
                    }
                    other => return Err(SqlError::TypeError(format!("SUM over {other}"))),
                }
            }
            if !any {
                Ok(SqlValue::Null)
            } else if is_float {
                Ok(SqlValue::Float(float_sum + int_sum as f64))
            } else {
                Ok(SqlValue::Int(int_sum))
            }
        }
    }
}

/// Thread-safe database handle providing strict serializability through a
/// global lock.
///
/// # Examples
///
/// ```
/// use orochi_sqldb::{Database, SharedDatabase};
///
/// let shared = SharedDatabase::new(Database::new());
/// let mut txn = shared.begin();
/// txn.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)").unwrap();
/// txn.execute("INSERT INTO t (v) VALUES ('a')").unwrap();
/// let (seq, ok) = txn.commit();
/// assert!(ok);
/// assert_eq!(seq, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SharedDatabase {
    inner: Arc<Mutex<Database>>,
}

impl SharedDatabase {
    /// Wraps a database for shared use.
    pub fn new(db: Database) -> Self {
        Self {
            inner: Arc::new(Mutex::new(db)),
        }
    }

    /// Begins a transaction, blocking until the global lock is available.
    /// The lock is held until [`Transaction::commit`] or
    /// [`Transaction::rollback`].
    ///
    /// # Panics
    ///
    /// Panics if the database already has an open transaction, which
    /// cannot happen through this API (the lock serializes transactions).
    pub fn begin(&self) -> Transaction {
        let mut guard = Mutex::lock_arc(&self.inner);
        guard.begin().expect("lock serializes transactions");
        Transaction { guard }
    }

    /// Executes one auto-committed statement; returns the outcome and the
    /// assigned sequence number.
    pub fn execute_autocommit(&self, sql: &str) -> (Result<ExecOutcome, SqlError>, u64) {
        let mut guard = self.inner.lock();
        guard.execute_autocommit(sql)
    }

    /// Runs `f` with shared access to the database (no sequence number
    /// consumed); for setup and inspection, not for request processing.
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut guard = self.inner.lock();
        f(&mut guard)
    }
}

/// An open transaction holding the global lock.
pub struct Transaction {
    guard: ArcMutexGuard<RawMutex, Database>,
}

impl Transaction {
    /// Executes one statement inside the transaction.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome, SqlError> {
        self.guard.execute_in_txn(sql)
    }

    /// True if a previous statement failed and poisoned the transaction.
    pub fn poisoned(&self) -> bool {
        self.guard.txn_poisoned()
    }

    /// Commits, returning `(seq, succeeded)` and releasing the lock.
    pub fn commit(mut self) -> (u64, bool) {
        self.guard.commit().expect("transaction open")
    }

    /// Rolls back, returning the assigned sequence number.
    pub fn rollback(mut self) -> u64 {
        self.guard.rollback().expect("transaction open")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_table() -> Database {
        let mut db = Database::new();
        let (r, _) = db.execute_autocommit(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, score INT)",
        );
        r.unwrap();
        let (r, _) = db.execute_autocommit(
            "INSERT INTO t (name, score) VALUES ('a', 10), ('b', 20), ('c', 30)",
        );
        r.unwrap();
        db
    }

    fn select_rows(db: &mut Database, sql: &str) -> Vec<Vec<SqlValue>> {
        let (r, _) = db.execute_autocommit(sql);
        match r.unwrap() {
            ExecOutcome::Rows { rows, .. } => rows,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn auto_increment_assigns_ids() {
        let mut db = db_with_table();
        let rows = select_rows(&mut db, "SELECT id FROM t ORDER BY id");
        assert_eq!(
            rows,
            vec![
                vec![SqlValue::Int(1)],
                vec![SqlValue::Int(2)],
                vec![SqlValue::Int(3)]
            ]
        );
        let (r, _) = db.execute_autocommit("INSERT INTO t (name, score) VALUES ('d', 5)");
        let out = r.unwrap();
        assert_eq!(out.write().unwrap().last_insert_id, Some(4));
    }

    #[test]
    fn explicit_id_bumps_auto_increment() {
        let mut db = db_with_table();
        db.execute_autocommit("INSERT INTO t (id, name, score) VALUES (10, 'x', 1)")
            .0
            .unwrap();
        let (r, _) = db.execute_autocommit("INSERT INTO t (name, score) VALUES ('y', 2)");
        assert_eq!(r.unwrap().write().unwrap().last_insert_id, Some(11));
    }

    #[test]
    fn duplicate_pk_rejected_and_rolled_back() {
        let mut db = db_with_table();
        let (r, _) = db.execute_autocommit(
            "INSERT INTO t (id, name, score) VALUES (99, 'x', 1), (1, 'dup', 2)",
        );
        assert!(matches!(r, Err(SqlError::DuplicateKey(_))));
        // Statement rolled back entirely: row 99 must not exist.
        let rows = select_rows(&mut db, "SELECT id FROM t WHERE id = 99");
        assert!(rows.is_empty());
        assert_eq!(db.row_count("t"), Some(3));
    }

    #[test]
    fn update_with_expression() {
        let mut db = db_with_table();
        let (r, _) = db.execute_autocommit("UPDATE t SET score = score + 5 WHERE score >= 20");
        assert_eq!(r.unwrap().write().unwrap().affected, 2);
        let rows = select_rows(&mut db, "SELECT score FROM t ORDER BY score");
        assert_eq!(
            rows,
            vec![
                vec![SqlValue::Int(10)],
                vec![SqlValue::Int(25)],
                vec![SqlValue::Int(35)]
            ]
        );
    }

    #[test]
    fn delete_and_count() {
        let mut db = db_with_table();
        let (r, _) = db.execute_autocommit("DELETE FROM t WHERE score < 25");
        assert_eq!(r.unwrap().write().unwrap().affected, 2);
        let rows = select_rows(&mut db, "SELECT COUNT(*) FROM t");
        assert_eq!(rows, vec![vec![SqlValue::Int(1)]]);
    }

    #[test]
    fn select_order_limit_offset() {
        let mut db = db_with_table();
        let rows = select_rows(
            &mut db,
            "SELECT name FROM t ORDER BY score DESC LIMIT 1 OFFSET 1",
        );
        assert_eq!(rows, vec![vec![SqlValue::Text("b".into())]]);
    }

    #[test]
    fn aggregates() {
        let mut db = db_with_table();
        let rows = select_rows(
            &mut db,
            "SELECT COUNT(*), MAX(score), MIN(score), SUM(score) FROM t",
        );
        assert_eq!(
            rows,
            vec![vec![
                SqlValue::Int(3),
                SqlValue::Int(30),
                SqlValue::Int(10),
                SqlValue::Int(60)
            ]]
        );
    }

    #[test]
    fn aggregates_over_empty_set() {
        let mut db = db_with_table();
        let rows = select_rows(
            &mut db,
            "SELECT COUNT(*), MAX(score), SUM(score) FROM t WHERE id > 100",
        );
        assert_eq!(
            rows,
            vec![vec![SqlValue::Int(0), SqlValue::Null, SqlValue::Null]]
        );
    }

    #[test]
    fn like_and_in() {
        let mut db = db_with_table();
        let rows = select_rows(&mut db, "SELECT name FROM t WHERE name LIKE '_'");
        assert_eq!(rows.len(), 3);
        let rows = select_rows(&mut db, "SELECT name FROM t WHERE name IN ('a', 'c')");
        assert_eq!(rows.len(), 2);
        let rows = select_rows(&mut db, "SELECT name FROM t WHERE name NOT IN ('a')");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("hello", "he%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%c"));
    }

    #[test]
    fn null_semantics_in_where() {
        let mut db = Database::new();
        db.execute_autocommit("CREATE TABLE n (id INT PRIMARY KEY, v INT)")
            .0
            .unwrap();
        db.execute_autocommit("INSERT INTO n (id, v) VALUES (1, NULL), (2, 5)")
            .0
            .unwrap();
        // NULL = NULL is unknown, so no rows.
        let rows = select_rows(&mut db, "SELECT id FROM n WHERE v = NULL");
        assert!(rows.is_empty());
        let rows = select_rows(&mut db, "SELECT id FROM n WHERE v IS NULL");
        assert_eq!(rows, vec![vec![SqlValue::Int(1)]]);
        let rows = select_rows(&mut db, "SELECT id FROM n WHERE v IS NOT NULL");
        assert_eq!(rows, vec![vec![SqlValue::Int(2)]]);
    }

    #[test]
    fn transaction_commit_and_rollback() {
        let mut db = db_with_table();
        db.begin().unwrap();
        db.execute_in_txn("INSERT INTO t (name, score) VALUES ('tx', 1)")
            .unwrap();
        let seq = db.rollback().unwrap();
        assert!(seq > 0);
        assert_eq!(db.row_count("t"), Some(3));
        // Auto-inc restored: next insert reuses id 4.
        let (r, _) = db.execute_autocommit("INSERT INTO t (name, score) VALUES ('z', 2)");
        assert_eq!(r.unwrap().write().unwrap().last_insert_id, Some(4));
    }

    #[test]
    fn failed_statement_poisons_transaction() {
        let mut db = db_with_table();
        db.begin().unwrap();
        db.execute_in_txn("UPDATE t SET score = 0 WHERE id = 1")
            .unwrap();
        let err = db
            .execute_in_txn("INSERT INTO t (id, name, score) VALUES (1, 'dup', 0)")
            .unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        // Further statements fail.
        assert_eq!(
            db.execute_in_txn("SELECT * FROM t").unwrap_err(),
            SqlError::TransactionAborted
        );
        let (_seq, ok) = db.commit().unwrap();
        assert!(!ok);
        // The earlier UPDATE was rolled back too.
        let rows = select_rows(&mut db, "SELECT score FROM t WHERE id = 1");
        assert_eq!(rows, vec![vec![SqlValue::Int(10)]]);
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let mut db = db_with_table(); // Consumed seqs 1, 2.
        let (_, s3) = db.execute_autocommit("SELECT * FROM t");
        let (_, s4) = db.execute_autocommit("BAD SQL");
        let (_, s5) = db.execute_autocommit("SELECT * FROM t");
        assert_eq!((s3, s4, s5), (3, 4, 5));
    }

    #[test]
    fn shared_database_serializes_transactions() {
        let shared = SharedDatabase::new(Database::new());
        shared
            .execute_autocommit("CREATE TABLE c (id INT PRIMARY KEY, v INT)")
            .0
            .unwrap();
        shared
            .execute_autocommit("INSERT INTO c (id, v) VALUES (1, 0)")
            .0
            .unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let mut txn = shared.begin();
                    let rows = match txn.execute("SELECT v FROM c WHERE id = 1").unwrap() {
                        ExecOutcome::Rows { rows, .. } => rows,
                        other => panic!("expected rows, got {other:?}"),
                    };
                    let v = rows[0][0].as_i64().unwrap();
                    txn.execute(&format!("UPDATE c SET v = {} WHERE id = 1", v + 1))
                        .unwrap();
                    let (_, ok) = txn.commit();
                    assert!(ok);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Read-modify-write under the global lock is atomic: no lost
        // updates.
        let (r, _) = shared.execute_autocommit("SELECT v FROM c WHERE id = 1");
        match r.unwrap() {
            ExecOutcome::Rows { rows, .. } => {
                assert_eq!(rows[0][0], SqlValue::Int(200));
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn create_table_rolls_back() {
        let mut db = Database::new();
        db.begin().unwrap();
        db.execute_in_txn("CREATE TABLE tmp (id INT PRIMARY KEY)")
            .unwrap();
        db.execute_in_txn("INSERT INTO tmp (id) VALUES (1)")
            .unwrap();
        db.rollback().unwrap();
        assert!(db.schema("tmp").is_none());
    }

    #[test]
    fn division_semantics() {
        let mut db = db_with_table();
        // Division always yields float (MySQL-style `/`); store into a
        // float column via UPDATE (projection expressions are not in the
        // dialect).
        db.execute_autocommit("CREATE TABLE f (id INT PRIMARY KEY, x FLOAT)")
            .0
            .unwrap();
        db.execute_autocommit("INSERT INTO f (id, x) VALUES (1, 10)")
            .0
            .unwrap();
        db.execute_autocommit("UPDATE f SET x = x / 4 WHERE id = 1")
            .0
            .unwrap();
        let rows = select_rows(&mut db, "SELECT x FROM f");
        assert_eq!(rows, vec![vec![SqlValue::Float(2.5)]]);
        // Division by zero yields NULL, MySQL-style.
        db.execute_autocommit("UPDATE f SET x = x / 0 WHERE id = 1")
            .0
            .unwrap();
        let rows = select_rows(&mut db, "SELECT x FROM f");
        assert_eq!(rows, vec![vec![SqlValue::Null]]);
    }

    #[test]
    fn type_errors_detected() {
        let mut db = db_with_table();
        let (r, _) = db.execute_autocommit("INSERT INTO t (name, score) VALUES (5, 'oops')");
        assert!(matches!(r, Err(SqlError::TypeError(_))));
    }

    #[test]
    fn wildcard_projection_in_declared_order() {
        let mut db = db_with_table();
        let (r, _) = db.execute_autocommit("SELECT * FROM t WHERE id = 1");
        match r.unwrap() {
            ExecOutcome::Rows { columns, rows } => {
                assert_eq!(columns, vec!["id", "name", "score"]);
                assert_eq!(
                    rows[0],
                    vec![
                        SqlValue::Int(1),
                        SqlValue::Text("a".into()),
                        SqlValue::Int(10)
                    ]
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }
}
