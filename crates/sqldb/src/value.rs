//! SQL values and their comparison/coercion semantics.
//!
//! The engine stores four scalar types: `NULL`, 64-bit integers, doubles,
//! and text. Comparison rules follow the usual SQL conventions the
//! evaluation applications rely on: `NULL` compares equal to nothing
//! (predicates over `NULL` are false except `IS NULL`), numbers compare
//! numerically across int/float, and text compares bytewise.

use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use std::cmp::Ordering;
use std::fmt;

/// A single SQL scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl SqlValue {
    /// True if this is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Numeric view, when the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SqlValue::Int(i) => Some(*i as f64),
            SqlValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, when the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SqlValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is `NULL`
    /// or the types are incomparable.
    pub fn sql_cmp(&self, other: &SqlValue) -> Option<Ordering> {
        match (self, other) {
            (SqlValue::Null, _) | (_, SqlValue::Null) => None,
            (SqlValue::Text(a), SqlValue::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Equality under SQL semantics (`NULL = anything` is not true).
    pub fn sql_eq(&self, other: &SqlValue) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering used by `ORDER BY` and index keys: NULLs sort
    /// first, then numbers, then text. Unlike [`Self::sql_cmp`] this is a
    /// total order so sorting is always defined.
    pub fn order_cmp(&self, other: &SqlValue) -> Ordering {
        fn rank(v: &SqlValue) -> u8 {
            match v {
                SqlValue::Null => 0,
                SqlValue::Int(_) | SqlValue::Float(_) => 1,
                SqlValue::Text(_) => 2,
            }
        }
        match (self, other) {
            (SqlValue::Null, SqlValue::Null) => Ordering::Equal,
            (SqlValue::Text(a), SqlValue::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let (x, y) = (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0));
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Key used by hash indexes. Integers and integral floats share a
    /// key so `WHERE id = 3` matches a row stored as `3.0`.
    pub fn index_key(&self) -> IndexKey {
        match self {
            SqlValue::Null => IndexKey::Null,
            SqlValue::Int(i) => IndexKey::Int(*i),
            SqlValue::Float(f) => {
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    IndexKey::Int(*f as i64)
                } else {
                    IndexKey::FloatBits(f.to_bits())
                }
            }
            SqlValue::Text(s) => IndexKey::Text(s.clone()),
        }
    }

    /// Truthiness for WHERE results (SQL treats non-zero as true).
    pub fn is_truthy(&self) -> bool {
        match self {
            SqlValue::Null => false,
            SqlValue::Int(i) => *i != 0,
            SqlValue::Float(f) => *f != 0.0,
            SqlValue::Text(s) => !s.is_empty(),
        }
    }
}

/// Hashable key form of a [`SqlValue`] for use in hash indexes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// NULL key (never matched by equality predicates, but storable).
    Null,
    /// Integer (also integral floats).
    Int(i64),
    /// Non-integral float, by bit pattern.
    FloatBits(u64),
    /// Text.
    Text(String),
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Float(x) => write!(f, "{x}"),
            SqlValue::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl Wire for SqlValue {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SqlValue::Null => enc.byte(0),
            SqlValue::Int(i) => {
                enc.byte(1);
                enc.i64(*i);
            }
            SqlValue::Float(x) => {
                enc.byte(2);
                enc.f64(*x);
            }
            SqlValue::Text(s) => {
                enc.byte(3);
                enc.str(s);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.byte()? {
            0 => SqlValue::Null,
            1 => SqlValue::Int(dec.i64()?),
            2 => SqlValue::Float(dec.f64()?),
            3 => SqlValue::Text(dec.str()?),
            _ => return Err(WireError::Malformed("unknown sql value tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(SqlValue::Null.sql_eq(&SqlValue::Null), None);
        assert_eq!(SqlValue::Null.sql_cmp(&SqlValue::Int(1)), None);
        assert_eq!(SqlValue::Int(1).sql_eq(&SqlValue::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            SqlValue::Int(2).sql_cmp(&SqlValue::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            SqlValue::Int(2).sql_cmp(&SqlValue::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_comparison_bytewise() {
        assert_eq!(
            SqlValue::Text("a".into()).sql_cmp(&SqlValue::Text("b".into())),
            Some(Ordering::Less)
        );
        // Text vs number is incomparable under sql_cmp.
        assert_eq!(SqlValue::Text("1".into()).sql_cmp(&SqlValue::Int(1)), None);
    }

    #[test]
    fn order_cmp_is_total() {
        let mut vals = [
            SqlValue::Text("b".into()),
            SqlValue::Null,
            SqlValue::Int(3),
            SqlValue::Float(1.5),
            SqlValue::Text("a".into()),
        ];
        vals.sort_by(|a, b| a.order_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], SqlValue::Float(1.5));
        assert_eq!(vals[2], SqlValue::Int(3));
        assert_eq!(vals[3], SqlValue::Text("a".into()));
    }

    #[test]
    fn index_key_unifies_int_and_integral_float() {
        assert_eq!(
            SqlValue::Int(3).index_key(),
            SqlValue::Float(3.0).index_key()
        );
        assert_ne!(
            SqlValue::Int(3).index_key(),
            SqlValue::Float(3.5).index_key()
        );
        assert_ne!(
            SqlValue::Text("3".into()).index_key(),
            SqlValue::Int(3).index_key()
        );
    }

    #[test]
    fn display_escapes_quotes() {
        assert_eq!(SqlValue::Text("o'brien".into()).to_string(), "'o''brien'");
    }

    #[test]
    fn wire_roundtrip() {
        for v in [
            SqlValue::Null,
            SqlValue::Int(-5),
            SqlValue::Float(2.75),
            SqlValue::Text("hi".into()),
        ] {
            let bytes = v.to_wire_bytes();
            assert_eq!(SqlValue::from_wire_bytes(&bytes).unwrap(), v);
        }
    }
}
