//! SQL tokenizer.
//!
//! Produces a flat token stream for the recursive-descent parser.
//! Keywords are case-insensitive; identifiers keep their case. String
//! literals use single quotes with `''` escaping (the dialect the
//! applications' `db_quote` helper emits).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched by the
    /// parser; the original text is preserved).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// Punctuation or operator: `( ) , * = != <> < <= > >= + - / . ;`.
    Sym(&'static str),
}

impl Token {
    /// True if the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// Lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a SQL string.
///
/// # Examples
///
/// ```
/// use orochi_sqldb::lexer::{tokenize, Token};
///
/// let toks = tokenize("SELECT id FROM t WHERE name = 'x'").unwrap();
/// assert!(toks[0].is_kw("select"));
/// assert_eq!(toks.last().unwrap(), &Token::Str("x".into()));
/// ```
pub fn tokenize(sql: &str) -> Result<Vec<Token>, LexError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token::Sym("("));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Sym(")"));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Sym(","));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Sym("*"));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Sym(";"));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Sym("+"));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Sym("/"));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Sym("%"));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Sym("="));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym("!="));
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Sym("<="));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Sym("!="));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Sym("<"));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '-' => {
                // Comment `-- ...` or minus.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Sym("-"));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                pos: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Decode at char granularity for UTF-8.
                            let rest = &sql[i..];
                            let ch = rest.chars().next().expect("non-empty rest");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad float literal {text}"),
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("integer literal out of range: {text}"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '`' => {
                // Backquoted identifiers are allowed and stripped.
                let quoted = c == '`';
                if quoted {
                    i += 1;
                }
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = sql[start..i].to_string();
                if quoted {
                    if bytes.get(i) != Some(&b'`') {
                        return Err(LexError {
                            pos: i,
                            message: "unterminated backquoted identifier".into(),
                        });
                    }
                    i += 1;
                }
                if word.is_empty() {
                    return Err(LexError {
                        pos: start,
                        message: "empty identifier".into(),
                    });
                }
                tokens.push(Token::Word(word));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_symbols() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 10 AND b != 'x'").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Sym("!=")));
        assert!(toks.contains(&Token::Str("x".into())));
    }

    #[test]
    fn ne_spellings_normalize() {
        let a = tokenize("a <> b").unwrap();
        let b = tokenize("a != b").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn string_escaping() {
        let toks = tokenize("'o''brien'").unwrap();
        assert_eq!(toks, vec![Token::Str("o'brien".into())]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.5 -7").unwrap();
        assert_eq!(toks[0], Token::Int(42));
        assert_eq!(toks[1], Token::Float(3.5));
        // Minus is a symbol; the parser folds unary minus.
        assert_eq!(toks[2], Token::Sym("-"));
        assert_eq!(toks[3], Token::Int(7));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn backquoted_identifiers() {
        let toks = tokenize("SELECT `from_col` FROM `table`").unwrap();
        assert_eq!(toks[1], Token::Word("from_col".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn utf8_in_strings() {
        let toks = tokenize("'héllo wörld'").unwrap();
        assert_eq!(toks, vec![Token::Str("héllo wörld".into())]);
    }

    #[test]
    fn unexpected_character_errors() {
        let err = tokenize("SELECT @x").unwrap_err();
        assert!(err.message.contains("unexpected"));
    }
}
