//! Property tests for the log2 histogram: bucket percentile bounds
//! must bracket the exact nearest-rank percentile computed by
//! `orochi_common::metrics::percentile`, and snapshot merging must be
//! associative so stripes can fold in any grouping.

use orochi_obs::HistogramSnapshot;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On any fuzzed latency distribution and percentile, the bucket
    /// bounds returned by `quantile_bounds` bracket the exact
    /// nearest-rank percentile of the same samples.
    #[test]
    fn bucket_bounds_bracket_exact_percentile(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        p_scaled in 1u32..1001,
    ) {
        let p = p_scaled as f64 / 10.0; // 0.1..=100.0
        let mut hist = HistogramSnapshot::new();
        for &v in &samples {
            hist.record(v);
        }
        let as_f64: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        let exact = orochi_common::metrics::percentile(&as_f64, p).unwrap();
        let (lo, hi) = hist.quantile_bounds(p).unwrap();
        prop_assert!(
            lo as f64 <= exact && exact <= hi as f64,
            "p{} exact {} outside bucket [{}, {}]",
            p, exact, lo, hi
        );
    }

    /// Merging is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) for any
    /// three stripe snapshots — so cross-stripe folds can happen in
    /// any tree shape.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..50),
        b in proptest::collection::vec(0u64..1_000_000, 0..50),
        c in proptest::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let snap = |vals: &[u64]| {
            let mut s = HistogramSnapshot::new();
            for &v in vals {
                s.record(v);
            }
            s
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// Merging two stripes then reading quantiles gives the same
    /// result as recording all samples into one histogram.
    #[test]
    fn merge_equals_single_recording(
        a in proptest::collection::vec(0u64..1_000_000, 1..50),
        b in proptest::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let mut merged = HistogramSnapshot::new();
        for &v in &a {
            merged.record(v);
        }
        let mut sb = HistogramSnapshot::new();
        for &v in &b {
            sb.record(v);
        }
        merged.merge(&sb);

        let mut single = HistogramSnapshot::new();
        for &v in a.iter().chain(b.iter()) {
            single.record(v);
        }
        prop_assert_eq!(merged, single);
    }
}
