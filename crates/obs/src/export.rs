//! Exporters: a JSON snapshot of the registry (merged into
//! `BENCH_ci.json` rows by the bench bins) and a Prometheus-style
//! text dump.

use crate::registry::{snapshot_all, HistogramSnapshot, MetricValue};

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn histogram_json(s: &HistogramSnapshot) -> String {
    // Buckets are emitted sparsely as [index, count] pairs — 65 mostly
    // zero entries per histogram would dwarf the rest of the snapshot.
    let mut buckets = String::from("[");
    let mut first = true;
    for (idx, &n) in s.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        buckets.push_str(&format!("[{idx},{n}]"));
    }
    buckets.push(']');
    let p50 = s.quantile_est(50.0).map(fmt_f64).unwrap_or("null".into());
    let p99 = s.quantile_est(99.0).map(fmt_f64).unwrap_or("null".into());
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":{}}}",
        s.count,
        s.sum,
        fmt_f64(s.mean()),
        p50,
        p99,
        buckets
    )
}

/// Renders every registered metric as one JSON object, keys sorted by
/// metric name. Counters and gauges are numbers; histograms are
/// objects with `count`/`sum`/`mean`/`p50`/`p99` and sparse
/// `[bucket, count]` pairs.
pub fn json_snapshot() -> String {
    let snap = snapshot_all();
    let mut out = String::from("{");
    let mut first = true;
    for (name, value) in &snap {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{name}\":"));
        match value {
            MetricValue::Counter(v) => out.push_str(&v.to_string()),
            MetricValue::Gauge(v) => out.push_str(&v.to_string()),
            MetricValue::Histogram(s) => out.push_str(&histogram_json(s)),
        }
    }
    out.push('}');
    out
}

/// Renders every registered metric in the Prometheus text exposition
/// format. Histograms expose `_count`, `_sum`, and cumulative
/// `_bucket{le="..."}` series at each nonzero log2 boundary.
pub fn prometheus_text() -> String {
    let snap = snapshot_all();
    let mut out = String::new();
    for (name, value) in &snap {
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            MetricValue::Histogram(s) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cum = 0u64;
                for (idx, &n) in s.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    let le = if idx >= 64 {
                        u64::MAX
                    } else if idx == 0 {
                        0
                    } else {
                        (1u64 << idx) - 1
                    };
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
                out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", s.sum, s.count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn json_snapshot_is_object() {
        registry::counter("test_export_counter").add(7);
        registry::histogram("test_export_hist_ns").record(1000);
        let json = json_snapshot();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"test_export_counter\":"));
        assert!(json.contains("\"test_export_hist_ns\":{\"count\":"));
    }

    #[test]
    fn prometheus_text_has_type_lines() {
        registry::counter("test_export_prom_total").inc();
        registry::histogram("test_export_prom_ns").record(42);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_export_prom_total counter"));
        assert!(text.contains("# TYPE test_export_prom_ns histogram"));
        assert!(text.contains("test_export_prom_ns_bucket{le=\"+Inf\"}"));
        assert!(text.contains("test_export_prom_ns_count"));
    }
}
