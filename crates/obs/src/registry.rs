//! The lock-free metrics registry: counters, gauges, and log2
//! histograms registered once by name and updated with relaxed atomic
//! operations only.
//!
//! Metric handles are `&'static` references into a leaked arena, so a
//! hot path holds a plain pointer and never touches the registry lock
//! after first use. The [`LazyCounter`] / [`LazyGauge`] /
//! [`LazyHistogram`] wrappers make that pattern a one-liner:
//!
//! ```
//! use orochi_obs::LazyCounter;
//! static REQUESTS: LazyCounter = LazyCounter::new("example_requests_total");
//! REQUESTS.inc();
//! ```

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing relaxed-atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depth, inflight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket
/// `k >= 1` holds values in `[2^(k-1), 2^k - 1]`, so 65 buckets cover
/// the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
#[inline]
fn bucket_range(idx: usize) -> (u64, u64) {
    if idx == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (idx - 1);
        let hi = if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        };
        (lo, hi)
    }
}

/// A fixed-bucket log2 histogram: 65 relaxed atomic buckets plus a
/// running count and sum. Recording is wait-free (two `fetch_add`s and
/// one bucket `fetch_add`); reading takes a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array element by element
        // via a const-friendly literal.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// An owned, mergeable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records into the owned snapshot directly (for per-run instances
    /// that are merged later rather than shared atomically).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Folds another snapshot into this one. Merging is associative
    /// and commutative (it is a per-field sum), so stripe snapshots
    /// can be combined in any order or grouping.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive `[lo, hi]` bounds on the p-th percentile (nearest-rank,
    /// `0 < p <= 100`). The true nearest-rank percentile of the recorded
    /// values — as computed by `orochi_common::metrics::percentile` —
    /// always lies within the returned bucket range.
    pub fn quantile_bounds(&self, p: f64) -> Option<(u64, u64)> {
        if self.count == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_range(idx));
            }
        }
        // Unreachable when count > 0, but stay total.
        Some(bucket_range(HISTOGRAM_BUCKETS - 1))
    }

    /// Point estimate of the p-th percentile: the midpoint of the
    /// bucket containing the nearest-rank sample.
    pub fn quantile_est(&self, p: f64) -> Option<f64> {
        let (lo, hi) = self.quantile_bounds(p)?;
        Some((lo as f64 + hi as f64) / 2.0)
    }
}

/// One named metric in the global registry.
pub enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Registry {
    entries: Vec<(&'static str, Metric)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            entries: Vec::new(),
        })
    })
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Finds or registers the counter named `name`. The handle is
/// `'static`: cache it (or use [`LazyCounter`]) so hot paths skip the
/// registry lock.
pub fn counter(name: &'static str) -> &'static Counter {
    counter_owned(name)
}

/// [`counter`] for a runtime-constructed name (per-engine metrics like
/// `vm_dispatch_executed_register_total`). The name is leaked only on
/// first registration, so repeated lookups do not accumulate memory.
pub fn counter_owned(name: &str) -> &'static Counter {
    let mut reg = lock_registry();
    for (n, m) in &reg.entries {
        if *n == name {
            match m {
                Metric::Counter(c) => return c,
                _ => panic!("metric `{name}` already registered with a different type"),
            }
        }
    }
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.entries.push((name, Metric::Counter(c)));
    c
}

/// Finds or registers the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    gauge_owned(name)
}

/// [`gauge`] for a runtime-constructed name (per-app gauges like
/// `saturation_knee_rate_wiki`). The name is leaked only on first
/// registration, so repeated lookups do not accumulate memory.
pub fn gauge_owned(name: &str) -> &'static Gauge {
    let mut reg = lock_registry();
    for (n, m) in &reg.entries {
        if *n == name {
            match m {
                Metric::Gauge(g) => return g,
                _ => panic!("metric `{name}` already registered with a different type"),
            }
        }
    }
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    reg.entries.push((name, Metric::Gauge(g)));
    g
}

/// Finds or registers the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    histogram_owned(name)
}

/// [`histogram`] for a runtime-constructed name (per-worker metrics
/// like `frontend_worker3_service_ns`). The name is leaked only on
/// first registration, so repeated lookups do not accumulate memory.
pub fn histogram_owned(name: &str) -> &'static Histogram {
    let mut reg = lock_registry();
    for (n, m) in &reg.entries {
        if *n == name {
            match m {
                Metric::Histogram(h) => return h,
                _ => panic!("metric `{name}` already registered with a different type"),
            }
        }
    }
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.entries.push((name, Metric::Histogram(h)));
    h
}

/// A point-in-time value of one registered metric. The histogram
/// snapshot is boxed: at 65 buckets it dwarfs the scalar variants, and
/// snapshots are taken at export time, never on a hot path.
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<HistogramSnapshot>),
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot_all() -> Vec<(&'static str, MetricValue)> {
    let reg = lock_registry();
    let mut out: Vec<(&'static str, MetricValue)> = reg
        .entries
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
            };
            (*name, v)
        })
        .collect();
    out.sort_by_key(|(name, _)| *name);
    out
}

/// Zeroes every registered metric. For benchmark arms that need a
/// clean slate; tests should prefer delta assertions since the
/// registry is process-global.
pub fn reset_all() {
    let reg = lock_registry();
    for (_, m) in &reg.entries {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// A counter static that registers itself on first use. After the
/// first call, the cost of `inc` is one `OnceLock` load plus one
/// relaxed `fetch_add`.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    #[inline]
    pub fn value(&self) -> u64 {
        self.get().get()
    }
}

/// A gauge static that registers itself on first use.
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn get(&self) -> &'static Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.get().add(n);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.get().sub(n);
    }

    #[inline]
    pub fn value(&self) -> i64 {
        self.get().get()
    }
}

/// A histogram static that registers itself on first use.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn get(&self) -> &'static Histogram {
        self.cell.get_or_init(|| histogram(self.name))
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.get().record(v);
    }

    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.get().record_duration(d);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.get().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for idx in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_range(idx);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
        }
    }

    #[test]
    fn histogram_counts_and_sum() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 111);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[bucket_index(5)], 2);
    }

    #[test]
    fn quantile_bounds_bracket_exact_values() {
        let mut s = HistogramSnapshot::new();
        let values = [3u64, 7, 7, 120, 4096];
        for v in values {
            s.record(v);
        }
        // p50 nearest-rank over 5 samples is the 3rd smallest: 7.
        let (lo, hi) = s.quantile_bounds(50.0).unwrap();
        assert!(lo <= 7 && 7 <= hi);
        // p100 is the max.
        let (lo, hi) = s.quantile_bounds(100.0).unwrap();
        assert!(lo <= 4096 && 4096 <= hi);
    }

    #[test]
    fn snapshot_merge_is_sum() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        a.record(10);
        a.record(20);
        b.record(3000);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 3030);
        assert_eq!(merged.buckets[bucket_index(3000)], 1);
    }

    #[test]
    fn registry_find_or_create_returns_same_handle() {
        let a = counter("test_registry_same_handle");
        let b = counter("test_registry_same_handle");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn lazy_counter_registers_once() {
        static C: LazyCounter = LazyCounter::new("test_lazy_counter_total");
        let before = C.value();
        C.inc();
        C.add(2);
        assert_eq!(C.value(), before + 3);
    }

    #[test]
    fn snapshot_all_is_sorted() {
        counter("test_zzz_counter");
        gauge("test_aaa_gauge");
        let snap = snapshot_all();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
