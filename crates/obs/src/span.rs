//! RAII phase timers.
//!
//! A [`Span`] measures the wall time between its creation and drop,
//! then pushes one event into its journal lane and (optionally)
//! records the duration into a histogram. Construction is gated on
//! [`crate::enabled`]: when telemetry is off, [`span`] returns `None`
//! without ever reading the clock, so the disabled cost is one relaxed
//! atomic load.

use std::time::Instant;

use crate::journal::{self, LaneId};
use crate::registry::Histogram;

/// An in-flight phase measurement; completes on drop. Spans complete
/// even on unwind, so a panicking phase still journals its partial
/// wall time.
pub struct Span {
    lane: LaneId,
    name: &'static str,
    t0: Instant,
    hist: Option<&'static Histogram>,
}

/// Opens a span on `lane`, or returns `None` when telemetry is
/// disabled. Bind the result to a `_guard`-style local so it drops at
/// the end of the phase:
///
/// ```
/// orochi_obs::set_enabled(true);
/// let lane = orochi_obs::journal::lane("doc-worker");
/// {
///     let _span = orochi_obs::span(lane, "handle");
///     // ... phase body ...
/// }
/// ```
#[inline]
pub fn span(lane: LaneId, name: &'static str) -> Option<Span> {
    if !crate::enabled() {
        return None;
    }
    Some(Span {
        lane,
        name,
        t0: Instant::now(),
        hist: None,
    })
}

/// Like [`span`], but also records the elapsed nanoseconds into
/// `hist` when the span completes.
#[inline]
pub fn span_timed(lane: LaneId, name: &'static str, hist: &'static Histogram) -> Option<Span> {
    if !crate::enabled() {
        return None;
    }
    Some(Span {
        lane,
        name,
        t0: Instant::now(),
        hist: Some(hist),
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.t0.elapsed();
        journal::push(self.lane, self.name, self.t0, dur);
        if let Some(h) = self.hist {
            h.record_duration(dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_none() {
        crate::set_enabled(false);
        let lane = journal::lane("test-span-disabled");
        assert!(span(lane, "noop").is_none());
        crate::set_enabled(true);
        assert!(span(lane, "yes").is_some());
        crate::set_enabled(false);
    }

    #[test]
    fn span_records_into_histogram_and_lane() {
        crate::set_enabled(true);
        let lane = journal::lane("test-span-records");
        let hist = crate::registry::histogram("test_span_ns");
        let before = hist.snapshot().count;
        {
            let _s = span_timed(lane, "phase", hist);
        }
        assert!(hist.snapshot().count > before);
        let counts = journal::lane_event_counts();
        let (_, n) = counts
            .iter()
            .find(|(name, _)| name == "test-span-records")
            .unwrap();
        assert!(*n >= 1);
        crate::set_enabled(false);
    }
}
