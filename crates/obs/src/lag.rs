//! Audit lag: the wall time from the moment trace data is sealed to
//! the moment the auditor reaches a verdict over it.
//!
//! The ROADMAP's streaming-epoch audit wants this as a first-class,
//! continuously observable metric. The mechanism is deliberately
//! lock-free and streaming-friendly: sealers (the frontend draining
//! its collector, the trace-store writer finishing a spill) call
//! [`mark_sealed`], which stores a microsecond timestamp in one
//! atomic; the auditor calls [`record_verdict`] when a verdict lands,
//! which records now−seal into the `audit_lag_ns` histogram. A
//! streaming audit marks a seal per epoch and records a verdict per
//! epoch, and the histogram becomes the lag distribution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::journal;
use crate::registry::{LazyCounter, LazyGauge, LazyHistogram};

/// Microseconds since the journal epoch of the most recent seal, plus
/// one so that zero means "never sealed".
static LAST_SEAL_US: AtomicU64 = AtomicU64::new(0);

static AUDIT_LAG_NS: LazyHistogram = LazyHistogram::new("audit_lag_ns");

/// Epochs the streaming audit has completed (batch audits count one).
static AUDIT_EPOCHS: LazyCounter = LazyCounter::new("audit_epochs_total");

/// Bytes of state the streaming audit carried across the most recent
/// epoch boundary (interner + open payloads + OpMap + output bitmap).
static AUDIT_CARRY_BYTES: LazyGauge = LazyGauge::new("audit_carry_bytes");

/// Marks that a batch of trace data was just sealed (collector
/// drained, or a trace-store segment run finished). Gated on
/// [`crate::enabled`] so disabled runs never read the clock.
#[inline]
pub fn mark_sealed() {
    if !crate::enabled() {
        return;
    }
    let now_us = journal::since_epoch(std::time::Instant::now()).as_micros() as u64;
    LAST_SEAL_US.store(now_us + 1, Ordering::Relaxed);
}

/// Records seal→verdict lag into the `audit_lag_ns` histogram and
/// returns it, or `None` when telemetry is disabled or nothing was
/// sealed.
pub fn record_verdict() -> Option<Duration> {
    if !crate::enabled() {
        return None;
    }
    let sealed = LAST_SEAL_US.load(Ordering::Relaxed);
    if sealed == 0 {
        return None;
    }
    let now_us = journal::since_epoch(std::time::Instant::now()).as_micros() as u64;
    let lag = Duration::from_micros(now_us.saturating_sub(sealed - 1));
    AUDIT_LAG_NS.record_duration(lag);
    Some(lag)
}

/// Marks that the streaming audit finished one epoch: bumps the
/// `audit_epochs_total` counter, publishes the carried-state size in
/// the `audit_carry_bytes` gauge (both always on, per the overhead
/// contract), and — when telemetry is enabled — records the
/// seal→epoch-verdict lag via [`record_verdict`], returning it.
pub fn mark_epoch(carry_bytes: u64) -> Option<Duration> {
    AUDIT_EPOCHS.add(1);
    AUDIT_CARRY_BYTES
        .get()
        .set(i64::try_from(carry_bytes).unwrap_or(i64::MAX));
    record_verdict()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_round_trip() {
        crate::set_enabled(true);
        mark_sealed();
        let before = AUDIT_LAG_NS.snapshot().count;
        let lag = record_verdict();
        assert!(lag.is_some());
        assert!(AUDIT_LAG_NS.snapshot().count > before);
        crate::set_enabled(false);
        assert!(record_verdict().is_none());
    }

    #[test]
    fn epoch_marks_count_even_when_disabled() {
        crate::set_enabled(false);
        let before = AUDIT_EPOCHS.value();
        assert!(mark_epoch(4096).is_none());
        assert_eq!(AUDIT_EPOCHS.value(), before + 1);
        assert_eq!(AUDIT_CARRY_BYTES.value(), 4096);
    }
}
