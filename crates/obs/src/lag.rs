//! Audit lag: the wall time from the moment trace data is sealed to
//! the moment the auditor reaches a verdict over it.
//!
//! The ROADMAP's streaming-epoch audit wants this as a first-class,
//! continuously observable metric. The mechanism is deliberately
//! lock-free and streaming-friendly: sealers (the frontend draining
//! its collector, the trace-store writer finishing a spill) call
//! [`mark_sealed`], which stores a microsecond timestamp in one
//! atomic; the auditor calls [`record_verdict`] when a verdict lands,
//! which records now−seal into the `audit_lag_ns` histogram. A
//! streaming audit marks a seal per epoch and records a verdict per
//! epoch, and the histogram becomes the lag distribution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::journal;
use crate::registry::LazyHistogram;

/// Microseconds since the journal epoch of the most recent seal, plus
/// one so that zero means "never sealed".
static LAST_SEAL_US: AtomicU64 = AtomicU64::new(0);

static AUDIT_LAG_NS: LazyHistogram = LazyHistogram::new("audit_lag_ns");

/// Marks that a batch of trace data was just sealed (collector
/// drained, or a trace-store segment run finished). Gated on
/// [`crate::enabled`] so disabled runs never read the clock.
#[inline]
pub fn mark_sealed() {
    if !crate::enabled() {
        return;
    }
    let now_us = journal::since_epoch(std::time::Instant::now()).as_micros() as u64;
    LAST_SEAL_US.store(now_us + 1, Ordering::Relaxed);
}

/// Records seal→verdict lag into the `audit_lag_ns` histogram and
/// returns it, or `None` when telemetry is disabled or nothing was
/// sealed.
pub fn record_verdict() -> Option<Duration> {
    if !crate::enabled() {
        return None;
    }
    let sealed = LAST_SEAL_US.load(Ordering::Relaxed);
    if sealed == 0 {
        return None;
    }
    let now_us = journal::since_epoch(std::time::Instant::now()).as_micros() as u64;
    let lag = Duration::from_micros(now_us.saturating_sub(sealed - 1));
    AUDIT_LAG_NS.record_duration(lag);
    Some(lag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_round_trip() {
        crate::set_enabled(true);
        mark_sealed();
        let before = AUDIT_LAG_NS.snapshot().count;
        let lag = record_verdict();
        assert!(lag.is_some());
        assert!(AUDIT_LAG_NS.snapshot().count > before);
        crate::set_enabled(false);
        assert!(record_verdict().is_none());
    }
}
