//! The workspace telemetry layer: a lock-free metrics registry,
//! lightweight spans, and a bounded event journal.
//!
//! The paper's whole evaluation is an observability exercise — latency
//! percentiles (Fig. 8), per-phase audit CPU (Fig. 9), instruction
//! accounting (Fig. 10) — and the pipeline's production concerns
//! (queue pressure, shard contention, trace-store throughput, audit
//! lag) are the same numbers measured continuously. This crate is the
//! substrate every layer reports into:
//!
//! * [`registry`] — atomic counters, gauges, and fixed-bucket log2
//!   histograms, registered once by name and updated with relaxed
//!   atomic operations only (no lock is ever taken on an update path).
//!   Histogram snapshots merge associatively, so per-stripe and
//!   per-worker instances fold into one distribution.
//! * [`mod@span`] — RAII phase timers. A span records its wall time into a
//!   histogram and, when the journal is enabled, emits one event into
//!   its lane.
//! * [`journal`] — a bounded ring-buffer event journal with one lane
//!   per serve worker / audit worker / trace-store writer, exportable
//!   as chrome://tracing JSON so a whole serve→spill→cold-audit run
//!   can be opened in a trace viewer.
//! * [`export`] — a JSON snapshot (merged into `BENCH_ci.json` rows)
//!   and a Prometheus-style text dump.
//! * [`lag`] — the audit-lag epoch marks: trace-seal → verdict wall,
//!   the first-class metric the streaming-epoch audit will stream.
//!
//! # Overhead contract
//!
//! Instrumentation must be cheap enough to leave compiled in. The
//! rules, enforced by the `obs_overhead` bench row in CI:
//!
//! * **Counters and gauges are always on.** Their cost is one relaxed
//!   atomic RMW — the same primitive the server already uses for
//!   `busy_ns` — so hot paths increment them unconditionally.
//! * **Anything that needs a clock is gated on [`enabled`].** Spans,
//!   admission-wait timestamps, and journal pushes only run when
//!   `OROCHI_OBS` turned the layer on; the disabled path is a single
//!   relaxed atomic load.
//! * The journal is bounded per lane (oldest events overwritten), so
//!   an enabled long run cannot grow without bound.

pub mod export;
pub mod journal;
pub mod lag;
pub mod registry;
pub mod span;

pub use journal::LaneId;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, LazyCounter, LazyGauge, LazyHistogram,
};
pub use span::{span, span_timed, Span};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = not yet read from the environment, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether the clock-bearing side of the telemetry layer (spans,
/// journal, admission-wait timestamps) is on. Initialized lazily from
/// `OROCHI_OBS` (`1`/`true` = on); [`set_enabled`] overrides it. The
/// disabled fast path is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = matches!(std::env::var("OROCHI_OBS"),
                              Ok(v) if v == "1" || v.eq_ignore_ascii_case("true"));
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns the clock-bearing telemetry on or off, overriding the
/// environment. Counters and gauges record regardless.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
