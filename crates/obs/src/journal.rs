//! The bounded ring-buffer event journal, exportable as
//! chrome://tracing JSON.
//!
//! Each pipeline actor — a serve worker, an audit worker, the
//! trace-store writer — owns one *lane*. Spans push complete events
//! (`ph: "X"`) into their lane; each lane is bounded, overwriting its
//! oldest events, so an enabled long run cannot grow without bound.
//! [`chrome_trace_json`] renders the whole journal in the Trace Event
//! Format that `chrome://tracing` / Perfetto open directly.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Maximum events retained per lane before the oldest are overwritten.
pub const LANE_CAPACITY: usize = 16_384;

/// Identifies one journal lane; doubles as the `tid` in the exported
/// chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneId(pub(crate) usize);

#[derive(Debug, Clone)]
struct JEvent {
    name: &'static str,
    /// Microseconds since the journal epoch.
    start_us: u64,
    dur_us: u64,
}

struct Lane {
    name: String,
    events: Mutex<VecDeque<JEvent>>,
}

fn lanes() -> &'static Mutex<Vec<Arc<Lane>>> {
    static LANES: OnceLock<Mutex<Vec<Arc<Lane>>>> = OnceLock::new();
    LANES.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The journal's time origin: first use wins, shared by every lane so
/// events from different threads line up on one timeline.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn since_epoch(t: Instant) -> Duration {
    t.checked_duration_since(epoch()).unwrap_or(Duration::ZERO)
}

/// Finds or creates the lane named `name` and returns its id. Lane
/// ids are stable for the life of the process, so actors resolve
/// their lane once and push by id afterwards.
pub fn lane(name: &str) -> LaneId {
    let mut all = lock(lanes());
    if let Some(idx) = all.iter().position(|l| l.name == name) {
        return LaneId(idx);
    }
    all.push(Arc::new(Lane {
        name: name.to_string(),
        events: Mutex::new(VecDeque::new()),
    }));
    LaneId(all.len() - 1)
}

/// Pushes one complete event into `lane`. `start` is an instant from
/// the same clock as the journal epoch (first use wins, shared by all
/// lanes); events older than the lane capacity are discarded
/// oldest-first.
pub fn push(lane: LaneId, name: &'static str, start: Instant, dur: Duration) {
    let lane = {
        let all = lock(lanes());
        match all.get(lane.0) {
            Some(l) => Arc::clone(l),
            None => return,
        }
    };
    let mut events = lock(&lane.events);
    if events.len() >= LANE_CAPACITY {
        events.pop_front();
    }
    events.push_back(JEvent {
        name,
        start_us: since_epoch(start).as_micros() as u64,
        dur_us: dur.as_micros() as u64,
    });
}

/// Number of buffered events per lane, in lane order.
pub fn lane_event_counts() -> Vec<(String, usize)> {
    let all = lock(lanes());
    all.iter()
        .map(|l| (l.name.clone(), lock(&l.events).len()))
        .collect()
}

/// Drops every buffered event (lanes themselves persist, keeping ids
/// stable).
pub fn clear() {
    let all = lock(lanes());
    for l in all.iter() {
        lock(&l.events).clear();
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders the journal as a chrome://tracing JSON document: one
/// `thread_name` metadata record per lane plus one complete (`"X"`)
/// event per buffered span, all under `pid` 1 with `tid` = lane id.
pub fn chrome_trace_json() -> String {
    let all: Vec<Arc<Lane>> = lock(lanes()).iter().map(Arc::clone).collect();
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (tid, lane) in all.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        ));
        escape_json(&lane.name, &mut out);
        out.push_str("\"}}");
        let events = lock(&lane.events);
        for ev in events.iter() {
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}}}",
                ev.name, ev.start_us, ev.dur_us
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ids_are_stable() {
        let a = lane("test-lane-stable");
        let b = lane("test-lane-stable");
        assert_eq!(a, b);
    }

    #[test]
    fn push_and_export() {
        let id = lane("test-lane-export");
        let t0 = epoch();
        push(id, "work", t0, Duration::from_micros(25));
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"test-lane-export\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":25"));
        let counts = lane_event_counts();
        let (_, n) = counts
            .iter()
            .find(|(name, _)| name == "test-lane-export")
            .unwrap();
        assert!(*n >= 1);
    }

    #[test]
    fn lane_is_bounded() {
        let id = lane("test-lane-bounded");
        let t0 = epoch();
        for _ in 0..(LANE_CAPACITY + 10) {
            push(id, "tick", t0, Duration::ZERO);
        }
        let counts = lane_event_counts();
        let (_, n) = counts
            .iter()
            .find(|(name, _)| name == "test-lane-bounded")
            .unwrap();
        assert_eq!(*n, LANE_CAPACITY);
    }

    #[test]
    fn escapes_lane_names() {
        let id = lane("test-\"quoted\"-lane");
        let t0 = epoch();
        push(id, "e", t0, Duration::ZERO);
        let json = chrome_trace_json();
        assert!(json.contains("test-\\\"quoted\\\"-lane"));
    }
}
