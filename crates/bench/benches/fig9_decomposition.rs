//! Bench E3 (Fig. 9): the audit phases measured separately — the
//! prologue (ProcessOpReports + DB redo) vs the full audit. The
//! `fig9_decomposition` binary prints the per-phase table.

use criterion::{criterion_group, criterion_main, Criterion};
use orochi_core::audit::{AuditConfig, AuditContext};
use orochi_harness::{run_audit, serve, AppWorkload, ServeOptions};
use orochi_workload::forum;

fn bench_fig9(c: &mut Criterion) {
    let params = forum::Params::scaled(0.01);
    let work = AppWorkload {
        app: orochi_apps::forum::app(),
        workload: forum::generate(&params, 1),
        seed_sql: forum::seed_sql(&params),
    };
    let served = serve(&work, &ServeOptions::default());
    let config: AuditConfig = work.audit_config();
    let mut group = c.benchmark_group("fig9_phases");
    group.sample_size(10);
    group.bench_function("prologue_procopreports_and_redo", |b| {
        b.iter(|| {
            AuditContext::prepare(&served.bundle.trace, &served.bundle.reports, &config)
                .expect("prologue succeeds")
        })
    });
    group.bench_function("full_audit", |b| {
        b.iter(|| run_audit(&served.bundle, &work, true, true).expect("accepts"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
