//! Bench E6 (§3.5, Fig. 6, Lemma 11): the graph-layer ablation.
//!
//! Four construction arms over the same §A.8 epoch traces, across
//! request counts and concurrency widths:
//!
//! * `dense_naive` — the quadratic reference (`O(X²)`), one edge per
//!   related pair;
//! * `frontier` — the Fig. 6 streaming frontier materialized as an
//!   edge list (`create_time_precedence_graph`);
//! * `two_phase` — the full Fig. 5 graph built the pre-CSR way:
//!   materialized edge list, per-endpoint hash lookups, `Vec<Vec>`
//!   adjacency, `HashMap` OpMap, O(E) indegree recount;
//! * `streamed_csr` — the full Fig. 5 graph via `process_op_reports`:
//!   frontier edges streamed straight into the two-pass CSR builder,
//!   zero hashing after the interning pass.
//!
//! Plus a `cycle_check` microbench: Kahn's algorithm alone over a
//! prebuilt CSR graph, reusing one indegree scratch buffer across
//! iterations (the contract `AuditGraph::is_acyclic_with` exists for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orochi_bench::{epoch_trace, zero_op_reports};
use orochi_core::graph::{process_op_reports, two_phase};
use orochi_core::precedence::{create_time_precedence_graph, dense_time_precedence};

fn bench_timeprec(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeprec");
    group.sample_size(10);
    for &(epochs, width) in &[(100usize, 4usize), (500, 4), (100, 16), (25, 64)] {
        let trace = epoch_trace(epochs, width);
        let reports = zero_op_reports(&trace);
        let balanced = trace.ensure_balanced().unwrap();
        let x = epochs * width;
        let id = format!("X{x}_P{width}");
        group.bench_with_input(BenchmarkId::new("frontier", &id), &balanced, |b, t| {
            b.iter(|| create_time_precedence_graph(t))
        });
        group.bench_with_input(BenchmarkId::new("dense_naive", &id), &balanced, |b, t| {
            b.iter(|| dense_time_precedence(t))
        });
        group.bench_with_input(BenchmarkId::new("two_phase", &id), &balanced, |b, t| {
            b.iter(|| two_phase::process_op_reports(t, &reports).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("streamed_csr", &id), &balanced, |b, t| {
            b.iter(|| process_op_reports(t, &reports).unwrap())
        });
        let (graph, _) = process_op_reports(&balanced, &reports).unwrap();
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("cycle_check", &id), &graph, |b, g| {
            b.iter(|| assert!(g.is_acyclic_with(&mut scratch)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timeprec);
criterion_main!(benches);
