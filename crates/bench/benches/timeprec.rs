//! Bench E6 (§3.5, Fig. 6): the streaming frontier algorithm for
//! materializing the time-precedence partial order vs the dense
//! (quadratic) reference construction, across request counts and
//! concurrency widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orochi_bench::epoch_trace;
use orochi_core::precedence::{create_time_precedence_graph, dense_time_precedence};

fn bench_timeprec(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeprec");
    group.sample_size(10);
    for &(epochs, width) in &[(100usize, 4usize), (500, 4), (100, 16), (25, 64)] {
        let trace = epoch_trace(epochs, width);
        let balanced = trace.ensure_balanced().unwrap();
        let x = epochs * width;
        group.bench_with_input(
            BenchmarkId::new("frontier", format!("X{x}_P{width}")),
            &balanced,
            |b, t| b.iter(|| create_time_precedence_graph(t)),
        );
        group.bench_with_input(
            BenchmarkId::new("dense_naive", format!("X{x}_P{width}")),
            &balanced,
            |b, t| b.iter(|| dense_time_precedence(t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_timeprec);
criterion_main!(benches);
