//! Bench E1 (Fig. 8 left): OROCHI audit vs simple re-execution on the
//! wiki workload. The `fig8_table` binary prints the full table for all
//! three applications; this bench measures the two audit arms so the
//! speedup ratio is tracked over time.

use criterion::{criterion_group, criterion_main, Criterion};
use orochi_harness::{run_audit, serve, AppWorkload, ServeOptions};
use orochi_workload::wiki;

fn bench_fig8(c: &mut Criterion) {
    let work = AppWorkload {
        app: orochi_apps::wiki::app(),
        workload: wiki::generate(&wiki::Params::scaled(0.01), 1),
        seed_sql: Vec::new(),
    };
    let served = serve(&work, &ServeOptions::default());
    let mut group = c.benchmark_group("fig8_audit");
    group.sample_size(10);
    group.bench_function("orochi_grouped_dedup", |b| {
        b.iter(|| run_audit(&served.bundle, &work, true, true).expect("accepts"))
    });
    group.bench_function("baseline_simple_reexecution", |b| {
        b.iter(|| run_audit(&served.bundle, &work, false, false).expect("accepts"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
