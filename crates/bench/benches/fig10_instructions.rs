//! Bench E4 (Fig. 10): per-instruction-category cost on the unmodified
//! scalar runtime vs acc-PHP univalent vs multivalent execution. The
//! `fig10_instructions` binary derives the fixed/marginal multivalent
//! costs from two lane counts.

use criterion::{criterion_group, criterion_main, Criterion};
use orochi_bench::{fig10_script, run_fig10_scalar, Fig10Group, FIG10_CATEGORIES};

const ITERS: usize = 2_000;

fn bench_fig10(c: &mut Criterion) {
    for (name, body) in FIG10_CATEGORIES {
        let nondet = if *name == "Microtime" { ITERS } else { 0 };
        let script = fig10_script(body, ITERS);
        let mut group = c.benchmark_group(format!("fig10/{name}"));
        group.sample_size(10);
        group.bench_function("unmodified_php", |b| {
            // The scalar arm draws nondeterminism from the null backend,
            // like unmodified PHP draws from the OS.
            b.iter(|| run_fig10_scalar(&script, "7", "9"));
        });
        let uni = Fig10Group::new(4, true, nondet);
        group.bench_function("accphp_univalent_4lanes", |b| {
            b.iter(|| uni.run(&script));
        });
        let multi = Fig10Group::new(4, false, nondet);
        group.bench_function("accphp_multivalent_4lanes", |b| {
            b.iter(|| multi.run(&script));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
