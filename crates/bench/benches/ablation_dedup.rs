//! Bench E7 (§5.2): sources of acceleration — {SIMD-on-demand on/off} ×
//! {read-query dedup on/off} on the wiki workload.

use criterion::{criterion_group, criterion_main, Criterion};
use orochi_harness::{run_audit, serve, AppWorkload, ServeOptions};
use orochi_workload::wiki;

fn bench_ablation(c: &mut Criterion) {
    let work = AppWorkload {
        app: orochi_apps::wiki::app(),
        workload: wiki::generate(&wiki::Params::scaled(0.01), 2),
        seed_sql: Vec::new(),
    };
    let served = serve(&work, &ServeOptions::default());
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (label, grouped, dedup) in [
        ("grouped+dedup", true, true),
        ("grouped", true, false),
        ("scalar+dedup", false, true),
        ("scalar", false, false),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| run_audit(&served.bundle, &work, grouped, dedup).expect("accepts"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
