//! Regenerates the Fig. 9 audit-time CPU decomposition for all three
//! applications.
//!
//! Usage: `cargo run --release -p orochi-bench --bin fig9_decomposition`

use orochi_harness::experiments::{fig9_decomposition, print_fig9, scale_from_env};

fn main() {
    let scale = scale_from_env();
    println!("== Fig. 9: audit-time CPU decomposition (scale {scale}) ==");
    let rows = fig9_decomposition(scale, 42);
    print_fig9(&rows);
}
