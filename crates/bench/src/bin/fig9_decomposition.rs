//! Regenerates the Fig. 9 audit-time CPU decomposition for all three
//! applications, plus the sequential-vs-parallel audit wall-time
//! comparison the CI pipeline tracks.
//!
//! Usage: `cargo run --release -p orochi_bench --bin fig9_decomposition
//!         [--skew <theta[,len]>] [--session-len <len>]`
//!
//! * `OROCHI_AUDIT_THREADS` — worker threads for the parallel arm
//!   (default/`auto`: every available core, clamped to the machine).
//! * `OROCHI_BENCH_JSON=path` — also write the results as JSON for the
//!   `bench-smoke` CI artifact.
//! * `--skew` / `--session-len` — set `OROCHI_WORKLOAD_SKEW` for all
//!   four workload generators.

use orochi_bench::json::Json;
use orochi_harness::audit_threads_from_env;
use orochi_harness::experiments::{
    fig9_decomposition, parallel_speedup, print_fig9, print_parallel, scale_from_env, Fig9Row,
    ParallelRow,
};

fn json_doc(scale: f64, rows: &[Fig9Row], par: &[ParallelRow], threads: usize) -> Json {
    Json::obj([
        ("experiment", Json::str("fig9_decomposition")),
        ("scale", Json::Num(scale)),
        (
            "fig9",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("app", Json::str(r.app)),
                            ("proc_op_rep_s", Json::Num(r.proc_op_rep.as_secs_f64())),
                            ("graph_build_s", Json::Num(r.graph_build.as_secs_f64())),
                            ("graph_nodes", Json::from(r.graph_nodes)),
                            ("graph_edges", Json::from(r.graph_edges)),
                            ("db_redo_s", Json::Num(r.db_redo.as_secs_f64())),
                            ("db_query_s", Json::Num(r.db_query.as_secs_f64())),
                            ("php_s", Json::Num(r.php.as_secs_f64())),
                            ("other_s", Json::Num(r.other.as_secs_f64())),
                            (
                                "baseline_total_s",
                                Json::Num(r.baseline_total.as_secs_f64()),
                            ),
                            ("vm_dispatch_total", Json::from(r.vm_dispatch_total)),
                            ("vm_dispatch_executed", Json::from(r.vm_dispatch_executed)),
                            ("vm_dispatch_dedup", Json::Num(r.dispatch_dedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "parallel_audit",
            Json::obj([
                ("threads", Json::from(threads)),
                (
                    "rows",
                    Json::Arr(
                        par.iter()
                            .map(|r| {
                                Json::obj([
                                    ("app", Json::str(r.app)),
                                    ("requests", Json::from(r.requests)),
                                    ("seq_wall_s", Json::Num(r.seq_wall.as_secs_f64())),
                                    ("par_wall_s", Json::Num(r.par_wall.as_secs_f64())),
                                    ("speedup", Json::Num(r.speedup())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn main() {
    orochi_bench::cli::apply_skew_args("fig9_decomposition", std::env::args().skip(1));
    let scale = scale_from_env();
    println!("== Fig. 9: audit-time CPU decomposition (scale {scale}) ==");
    let rows = fig9_decomposition(scale, 42);
    print_fig9(&rows);

    let threads = audit_threads_from_env();
    println!("== Parallel audit: sequential vs {threads} worker threads ==");
    let par = parallel_speedup(scale, 42, threads);
    print_parallel(&par);

    if let Ok(path) = std::env::var("OROCHI_BENCH_JSON") {
        let doc = json_doc(scale, &rows, &par, threads);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
