//! Regenerates the §5.2 sources-of-acceleration ablation:
//! {SIMD-on-demand on/off} × {read-query dedup on/off}.
//!
//! Usage: `cargo run --release -p orochi-bench --bin ablation`

use orochi_harness::experiments::{ablation, scale_from_env};

fn main() {
    let scale = scale_from_env();
    println!("== Ablation: sources of acceleration (wiki, scale {scale}) ==");
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>14} {:>14}",
        "arm", "wall(s)", "deduped", "issued", "vm-dispatched", "vm-executed"
    );
    for arm in ablation(scale, 42) {
        println!(
            "{:<20} {:>10.3} {:>10} {:>10} {:>14} {:>14}",
            arm.label,
            arm.wall.as_secs_f64(),
            arm.deduped,
            arm.issued,
            arm.vm_dispatch_total,
            arm.vm_dispatch_executed,
        );
    }
}
