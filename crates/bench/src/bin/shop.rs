//! The shop experiment: the session-heavy storefront end-to-end.
//!
//! Serves the shop workload, measures the honest audit sequentially and
//! pooled, the sequential-vs-object-sharded report assembly, the
//! register/KV-path share, and one rejected audit per tampering variant
//! (forged cart total, stale inventory read, replayed KV write).
//!
//! Usage: `cargo run --release -p orochi_bench --bin shop
//!         [--skew <theta[,len]>] [--session-len <len>]`
//!
//! * `OROCHI_FULL=1` — the full-scale session count.
//! * `OROCHI_AUDIT_THREADS` — worker threads for the pooled arms.
//! * `OROCHI_BENCH_JSON=path` — write the results as JSON for the
//!   `bench-smoke` CI artifact.

use orochi_bench::json::Json;
use orochi_harness::audit_threads_from_env;
use orochi_harness::experiments::{print_shop, scale_from_env, shop_experiment, ShopReport};

fn json_doc(scale: f64, r: &ShopReport) -> Json {
    Json::obj([
        ("experiment", Json::str("shop")),
        ("scale", Json::Num(scale)),
        ("requests", Json::from(r.requests)),
        ("reg_kv_share", Json::Num(r.reg_kv_share)),
        (
            "audit",
            Json::obj([
                ("threads", Json::from(r.threads)),
                ("seq_wall_s", Json::Num(r.honest_seq_wall.as_secs_f64())),
                ("par_wall_s", Json::Num(r.honest_par_wall.as_secs_f64())),
                ("speedup", Json::Num(r.audit_speedup())),
            ]),
        ),
        (
            "assembly",
            Json::obj([
                ("threads", Json::from(r.threads)),
                ("seq_ms", Json::Num(r.assembly_seq.as_secs_f64() * 1000.0)),
                ("par_ms", Json::Num(r.assembly_par.as_secs_f64() * 1000.0)),
                ("speedup", Json::Num(r.assembly_speedup())),
            ]),
        ),
        (
            "tampers",
            Json::Arr(
                r.tampers
                    .iter()
                    .map(|t| {
                        Json::obj([
                            ("variant", Json::str(t.variant)),
                            ("rejected", Json::Bool(t.rejected)),
                            ("diagnostic", Json::str(t.diagnostic.clone())),
                            ("wall_s", Json::Num(t.wall.as_secs_f64())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    orochi_bench::cli::apply_skew_args("shop", std::env::args().skip(1));
    let scale = scale_from_env();
    let threads = audit_threads_from_env();
    println!("== Shop: session-heavy storefront (scale {scale}) ==");
    let report = shop_experiment(scale, 42, threads);
    print_shop(&report);

    if let Ok(path) = std::env::var("OROCHI_BENCH_JSON") {
        let doc = json_doc(scale, &report);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
