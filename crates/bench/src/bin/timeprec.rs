//! The graph-layer ablation at fig8-like trace scale: dense vs.
//! frontier vs. two-phase vs. streamed-CSR wall times, plus the
//! cycle-check microbench, printed as a table and (with
//! `OROCHI_BENCH_JSON=path`) emitted as the `timeprec` row of the CI
//! `BENCH_ci.json` artifact.
//!
//! Usage: `cargo run --release -p orochi_bench --bin timeprec`
//!
//! * dense — `dense_time_precedence`, the `O(X²)` reference;
//! * frontier — the Fig. 6 streaming frontier materialized as an edge
//!   list;
//! * two_phase — the full Fig. 5 graph via the preserved pre-CSR
//!   construction (`graph::two_phase`): edge-list materialization,
//!   per-endpoint hashing, `Vec<Vec>` adjacency, O(E) indegree recount;
//! * streamed_csr — the full Fig. 5 graph via `process_op_reports`
//!   (frontier edges streamed into the two-pass CSR builder);
//! * csr_par — the same build with the fill pass parallelized
//!   (`process_op_reports_with` at the machine's core count); the count
//!   pass fixes every row extent, so sources fill disjoint slots and
//!   the output stays byte-identical to the sequential build;
//! * cycle_check — Kahn's algorithm alone over the prebuilt CSR graph.
//!
//! `OROCHI_FULL=1` raises the trace to the paper-scale request count.

use orochi_bench::json::Json;
use orochi_bench::{epoch_trace, zero_op_reports};
use orochi_core::graph::{process_op_reports, process_op_reports_with, two_phase};
use orochi_core::precedence::{create_time_precedence_graph, dense_time_precedence};
use std::time::{Duration, Instant};

/// Minimum of `runs` timed executions of `f` (the same noise
/// suppression the harness experiments use on CI-scale measurements).
fn min_wall(runs: usize, mut f: impl FnMut()) -> Duration {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .expect("at least one run")
}

fn main() {
    let full =
        matches!(std::env::var("OROCHI_FULL"), Ok(v) if v == "1" || v.eq_ignore_ascii_case("true"));
    // Smoke scale matches the CI fig8 trace sizes; full scale matches
    // the paper's request counts (dense is O(X²) — this is the arm that
    // bounds the budget).
    let (epochs, width) = if full { (1250, 16) } else { (500, 8) };
    let requests = epochs * width;
    let runs = 3;

    let trace = epoch_trace(epochs, width);
    let reports = zero_op_reports(&trace);
    let balanced = trace.ensure_balanced().unwrap();

    println!("== timeprec: graph-layer ablation (X={requests}, P={width}) ==");
    let dense = min_wall(runs, || {
        dense_time_precedence(&balanced);
    });
    let frontier = min_wall(runs, || {
        create_time_precedence_graph(&balanced);
    });
    let two_phase_wall = min_wall(runs, || {
        two_phase::process_op_reports(&balanced, &reports).unwrap();
    });
    let csr = min_wall(runs, || {
        process_op_reports(&balanced, &reports).unwrap();
    });
    let fill_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let csr_par = min_wall(runs, || {
        process_op_reports_with(&balanced, &reports, fill_threads).unwrap();
    });
    let (graph, _) = process_op_reports(&balanced, &reports).unwrap();
    let mut scratch = Vec::new();
    let cycle = min_wall(runs, || {
        assert!(graph.is_acyclic_with(&mut scratch));
    });
    let edges = create_time_precedence_graph(&balanced).edges.len();

    let rows = [
        ("dense (O(X^2))", dense),
        ("frontier (Fig. 6)", frontier),
        ("two_phase (pre-CSR)", two_phase_wall),
        ("streamed_csr", csr),
        ("csr_par (fill)", csr_par),
        ("cycle_check (Kahn)", cycle),
    ];
    println!("{:<22} {:>12}", "arm", "wall");
    for (label, wall) in rows {
        println!("{label:<22} {:>9.3}ms", wall.as_secs_f64() * 1000.0);
    }
    let frontier_speedup = dense.as_secs_f64() / frontier.as_secs_f64().max(1e-9);
    let csr_speedup = two_phase_wall.as_secs_f64() / csr.as_secs_f64().max(1e-9);
    let par_speedup = csr.as_secs_f64() / csr_par.as_secs_f64().max(1e-9);
    println!(
        "frontier beats dense {frontier_speedup:.1}x; \
         streamed CSR beats two-phase {csr_speedup:.2}x; \
         parallel fill at {fill_threads} threads {par_speedup:.2}x over sequential \
         ({} time-precedence edges, {} graph nodes, {} graph edges)",
        edges,
        graph.num_nodes(),
        graph.num_edges(),
    );

    if let Ok(path) = std::env::var("OROCHI_BENCH_JSON") {
        let doc = Json::obj([
            ("experiment", Json::str("timeprec")),
            ("requests", Json::from(requests)),
            ("width", Json::from(width)),
            ("timeprec_edges", Json::from(edges)),
            ("graph_nodes", Json::from(graph.num_nodes())),
            ("graph_edges", Json::from(graph.num_edges())),
            ("dense_wall_s", Json::Num(dense.as_secs_f64())),
            ("frontier_wall_s", Json::Num(frontier.as_secs_f64())),
            ("two_phase_wall_s", Json::Num(two_phase_wall.as_secs_f64())),
            ("csr_wall_s", Json::Num(csr.as_secs_f64())),
            ("csr_par_wall_s", Json::Num(csr_par.as_secs_f64())),
            ("csr_par_threads", Json::from(fill_threads)),
            ("cycle_check_wall_s", Json::Num(cycle.as_secs_f64())),
            ("frontier_speedup", Json::Num(frontier_speedup)),
            ("csr_speedup", Json::Num(csr_speedup)),
            ("csr_par_speedup", Json::Num(par_speedup)),
        ]);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
