//! The saturation sweep: peak sustained serving throughput per app.
//!
//! For each paper workload and each front-end worker count (1 and the
//! pooled arm), measure the pool's capacity with a saturating burst
//! probe, then sweep offered open-loop rates around that capacity — a
//! bounded admission queue with load shedding — up to the p99 knee.
//! The ROADMAP's Fig. 8 credibility argument lives or dies here: the
//! recording server must sustain production arrival rates before its
//! audit-side numbers mean anything.
//!
//! Usage: `cargo run --release -p orochi_bench --bin saturation
//!         [--skew <theta[,len]>] [--session-len <len>]
//!         [--serve-threads <n|auto>] [--queue-depth <n>]`
//!
//! * `OROCHI_FULL=1` — full-scale sweep (longer request streams).
//! * `OROCHI_SERVE_THREADS` — the pooled arm's worker count
//!   (`auto` = all cores; default 4).
//! * `OROCHI_SERVE_QUEUE` — admission-queue depth (default
//!   8 × workers).
//! * `OROCHI_BENCH_JSON=path` — write the results as JSON for the
//!   `bench-smoke` CI artifact.

use orochi_bench::json::Json;
use orochi_harness::experiments::{print_saturation, saturation, scale_from_env, SaturationRow};
use orochi_harness::{serve_queue_from_env, serve_threads_from_env};

fn json_doc(scale: f64, hw: usize, rows: &[SaturationRow]) -> Json {
    Json::obj([
        ("experiment", Json::str("saturation")),
        ("scale", Json::Num(scale)),
        ("hw_threads", Json::from(hw)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("app", Json::str(r.app)),
                            ("workers", Json::from(r.workers)),
                            ("queue_depth", Json::from(r.queue_depth)),
                            ("peak_sustained", Json::Num(r.peak_sustained)),
                            ("knee_rate", Json::Num(r.knee_rate)),
                            (
                                "points",
                                Json::Arr(
                                    r.points
                                        .iter()
                                        .map(|p| {
                                            Json::obj([
                                                ("offered_rate", Json::Num(p.offered_rate)),
                                                ("throughput", Json::Num(p.throughput)),
                                                ("p50_ms", Json::Num(p.p50_ms)),
                                                ("p99_ms", Json::Num(p.p99_ms)),
                                                ("shed", Json::from(p.shed)),
                                                ("requests", Json::from(p.requests)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    orochi_bench::cli::apply_skew_args("saturation", std::env::args().skip(1));
    let scale = scale_from_env();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pooled = serve_threads_from_env();
    let queue_depth = serve_queue_from_env();
    let max_requests = if scale >= 1.0 { 4000 } else { 400 };
    let worker_counts: &[usize] = if pooled <= 1 { &[1] } else { &[1, pooled] };
    println!("== Saturation sweep (scale {scale}, workers {worker_counts:?}, hw {hw} threads) ==");
    let rows = saturation(scale, 42, worker_counts, queue_depth, max_requests);
    print_saturation(&rows);

    if let Ok(path) = std::env::var("OROCHI_BENCH_JSON") {
        let doc = json_doc(scale, hw, &rows);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
