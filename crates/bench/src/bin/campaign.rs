//! The adversarial campaign: serve the mixed four-app workload once,
//! then for N seeded campaigns mutate k sites of the trace/reports
//! bundle with the generative operator library and assert every mutant
//! is rejected with byte-identical diagnostics at 1 and N audit
//! threads and across the batch and streaming audit paths. The honest
//! control (spilled to the trace store, audited cold batch + cold
//! streaming) must accept. Printed as a summary plus any surviving
//! mutant verbatim (plan seed, operator, site), and (with
//! `OROCHI_BENCH_JSON=path` or `--bench-json`) emitted as the
//! `campaign` row of the CI `BENCH_ci.json` artifact.
//!
//! Usage: `cargo run --release -p orochi_bench --bin campaign [flags]`
//! (the shared [`orochi_harness::Config`] flags apply: `--campaigns
//! <n>`, `--campaign-k <k>`, `--campaign-seed <seed>`, `--full`,
//! `--audit-threads <n|auto>`, `--bench-json <path>`, …).
//!
//! Sizing: the smoke run (CI default) audits 240 campaigns at CI
//! scale; `--full` audits 1,000 at a larger serve — the mutant count,
//! not the workload size, is the fuzzing axis. `--campaign-k 0` (the
//! default) cycles k through 1–3 so multi-site plans are covered. The
//! row carries the guards CI enforces: `catch_rate == 1.0`,
//! `campaigns >= 200`, `distinct_operators >= 10`, and `honest_ok`.

use orochi_bench::cli::apply_skew_args;
use orochi_bench::json::Json;
use orochi_harness::experiments::{campaign, print_campaign};
use orochi_harness::Threads;

fn main() {
    let config = apply_skew_args("campaign", std::env::args().skip(1));
    // An explicit --audit-threads is honored unclamped; auto resolves
    // to the hardware.
    let threads = match config.audit_threads {
        Threads::Exact(n) if n > 0 => n,
        _ => config.resolved_audit_threads(),
    };
    let campaigns = if config.campaigns != 0 {
        config.campaigns
    } else if config.full {
        1000
    } else {
        240
    };
    let scale = if config.full { 0.05 } else { 0.01 };
    let epoch_events = if config.epoch_events != 0 {
        config.epoch_events
    } else if config.full {
        512
    } else {
        64
    };
    // Telemetry off: the mutation loop is the measured region, and the
    // clock-bearing layer would blur mutations-caught-per-CPU-second.
    orochi_obs::set_enabled(false);

    let report = campaign(
        scale,
        config.campaign_seed,
        campaigns,
        config.campaign_k,
        threads,
        epoch_events,
    );

    println!(
        "== campaign: adversarial mutation sweep (requests={}, campaigns={campaigns}, \
         k={}, threads={threads}, epoch_events={epoch_events}) ==",
        report.requests,
        if config.campaign_k == 0 {
            "1-3".to_string()
        } else {
            config.campaign_k.to_string()
        }
    );
    print_campaign(&report);

    assert!(
        report.honest_ok,
        "the honest mixed-workload control must accept on every audit path"
    );
    assert!(
        report.survivors.is_empty(),
        "{} mutant(s) escaped — see the SURVIVOR lines above",
        report.survivors.len()
    );
    // Coverage guards only make sense at sweep scale; a hand-shrunk
    // `--campaigns 5` debugging run shouldn't trip them.
    if campaigns >= 200 {
        assert!(
            report.operators.len() >= 10,
            "a full sweep must exercise >= 10 distinct operators, got {}",
            report.operators.len()
        );
    }

    if let Some(path) = &config.bench_json {
        let doc = Json::obj([
            ("experiment", Json::str("campaign")),
            ("requests", Json::from(report.requests as usize)),
            ("campaigns", Json::from(report.campaigns)),
            ("sites", Json::from(report.sites)),
            ("caught", Json::from(report.caught)),
            ("catch_rate", Json::Num(report.catch_rate())),
            ("distinct_operators", Json::from(report.operators.len())),
            ("survivors", Json::from(report.survivors.len())),
            ("honest_ok", Json::Bool(report.honest_ok)),
            (
                "mutations_caught_per_cpu_s",
                Json::Num(report.caught_per_cpu_s()),
            ),
            ("audit_threads", Json::from(threads)),
        ]);
        std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
