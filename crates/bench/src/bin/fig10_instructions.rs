//! Regenerates the Fig. 10 instruction-cost table: per-category cost
//! under unmodified PHP, acc-PHP univalent execution, and acc-PHP
//! multivalent execution decomposed into fixed and marginal components
//! (derived from two lane counts).
//!
//! Usage: `cargo run --release -p orochi-bench --bin fig10_instructions`

use orochi_bench::{fig10_script, run_fig10_scalar, Fig10Group, FIG10_CATEGORIES};
use std::time::Instant;

const ITERS: usize = 20_000;
const REPS: usize = 5;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn time_ns(mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64 / ITERS as f64
        })
        .collect();
    median(samples)
}

fn main() {
    println!("== Fig. 10: per-instruction cost (ns/op; {ITERS} ops/run) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>16}",
        "category", "unmodified", "univalent", "multi-fixed", "multi-marginal"
    );
    for (name, body) in FIG10_CATEGORIES {
        let nondet = if *name == "Microtime" { ITERS } else { 0 };
        let script = fig10_script(body, ITERS);
        let unmodified = time_ns(|| run_fig10_scalar(&script, "7", "9"));
        let uni_group = Fig10Group::new(4, true, nondet);
        let univalent = time_ns(|| {
            uni_group.run(&script);
        });
        // Multivalent at two lane counts: cost(L) = fixed + marginal*L.
        let (l1, l2) = (2usize, 8usize);
        let g1 = Fig10Group::new(l1, false, nondet);
        let g2 = Fig10Group::new(l2, false, nondet);
        let t1 = time_ns(|| {
            g1.run(&script);
        });
        let t2 = time_ns(|| {
            g2.run(&script);
        });
        let marginal = (t2 - t1) / (l2 - l1) as f64;
        let fixed = t1 - marginal * l1 as f64;
        println!(
            "{:<10} {:>11.1} {:>11.1} {:>13.1} {:>15.1}",
            name, unmodified, univalent, fixed, marginal
        );
    }
    println!(
        "\nExpected shape (§5.2): multivalent cost exceeds unmodified — the gain \
         comes from collapsing, not vectorization."
    );
}
