//! Regenerates the Fig. 10 instruction-cost table: per-category cost
//! under unmodified PHP, acc-PHP univalent execution, and acc-PHP
//! multivalent execution decomposed into fixed and marginal components
//! (derived from two lane counts) — plus the engine comparison the CI
//! pipeline tracks: grouped re-execution throughput of the register
//! bytecode VM against the retained stack-bytecode baseline on a
//! call-heavy script.
//!
//! Usage: `cargo run --release -p orochi_bench --bin fig10_instructions`
//!
//! * `OROCHI_BENCH_JSON=path` — also write the engine comparison as
//!   JSON for the `bench-smoke` CI artifact.
//! * `OROCHI_FULL=1` — raise the iteration counts to full scale.

use orochi_accphp::VmEngine;
use orochi_bench::json::Json;
use orochi_bench::{
    fig10_call_heavy_script, fig10_script, run_fig10_scalar, Fig10Group, FIG10_CATEGORIES,
};
use std::time::Instant;

const REPS: usize = 5;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median of `REPS` wall times of `f`, in nanoseconds.
fn wall_ns(mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    median(samples)
}

fn main() {
    let full =
        matches!(std::env::var("OROCHI_FULL"), Ok(v) if v == "1" || v.eq_ignore_ascii_case("true"));
    let iters = if full { 100_000 } else { 20_000 };

    println!("== Fig. 10: per-instruction cost (ns/op; {iters} ops/run) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>16}",
        "category", "unmodified", "univalent", "multi-fixed", "multi-marginal"
    );
    for (name, body) in FIG10_CATEGORIES {
        let nondet = if *name == "Microtime" { iters } else { 0 };
        let script = fig10_script(body, iters);
        let unmodified = wall_ns(|| run_fig10_scalar(&script, "7", "9")) / iters as f64;
        let uni_group = Fig10Group::new(4, true, nondet);
        let univalent = wall_ns(|| {
            uni_group.run(&script);
        }) / iters as f64;
        // Multivalent at two lane counts: cost(L) = fixed + marginal*L.
        let (l1, l2) = (2usize, 8usize);
        let g1 = Fig10Group::new(l1, false, nondet);
        let g2 = Fig10Group::new(l2, false, nondet);
        let t1 = wall_ns(|| {
            g1.run(&script);
        }) / iters as f64;
        let t2 = wall_ns(|| {
            g2.run(&script);
        }) / iters as f64;
        let marginal = (t2 - t1) / (l2 - l1) as f64;
        let fixed = t1 - marginal * l1 as f64;
        println!(
            "{:<10} {:>11.1} {:>11.1} {:>13.1} {:>15.1}",
            name, unmodified, univalent, fixed, marginal
        );
    }
    println!(
        "\nExpected shape (§5.2): multivalent cost exceeds unmodified — the gain \
         comes from collapsing, not vectorization."
    );

    // Engine comparison: grouped re-execution of a call-heavy script
    // (function frames dominate) under the register VM vs the stack
    // baseline, univalent (8 identical lanes) and multivalent (8
    // distinct lanes).
    let lanes = 8usize;
    let script = fig10_call_heavy_script(iters);
    let uni = Fig10Group::new(lanes, true, 0);
    let multi = Fig10Group::new(lanes, false, 0);
    let mut walls = Vec::new();
    println!("\n== Engine comparison: grouped re-execution, call-heavy script ({lanes} lanes) ==");
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "group", "register", "stack", "speedup"
    );
    for (label, group) in [("univalent", &uni), ("multivalent", &multi)] {
        let reg = wall_ns(|| {
            group.run_with(&script, VmEngine::Register);
        });
        let stack = wall_ns(|| {
            group.run_with(&script, VmEngine::Stack);
        });
        println!(
            "{:<14} {:>12.2}ms {:>12.2}ms {:>9.2}x",
            label,
            reg / 1e6,
            stack / 1e6,
            stack / reg,
        );
        walls.push((label, reg, stack));
    }
    let outcome = uni.run_with(&script, VmEngine::Register);
    let (u, m) = (outcome.univalent, outcome.multivalent);
    let n = lanes as u64;
    println!(
        "dispatch accounting (univalent group): {} represented, {} executed ({:.2}x dedup)",
        n * (u + m),
        u + n * m,
        (n * (u + m)) as f64 / (u + n * m) as f64,
    );

    if let Ok(path) = std::env::var("OROCHI_BENCH_JSON") {
        let mut fields = vec![
            ("experiment", Json::str("fig10_instructions")),
            ("iters", Json::from(iters)),
            ("lanes", Json::from(lanes)),
            ("dispatch_total", Json::from(n * (u + m))),
            ("dispatch_executed", Json::from(u + n * m)),
        ];
        for (label, reg, stack) in &walls {
            fields.push((
                match *label {
                    "univalent" => "register_uni_wall_s",
                    _ => "register_multi_wall_s",
                },
                Json::Num(reg / 1e9),
            ));
            fields.push((
                match *label {
                    "univalent" => "stack_uni_wall_s",
                    _ => "stack_multi_wall_s",
                },
                Json::Num(stack / 1e9),
            ));
            fields.push((
                match *label {
                    "univalent" => "register_uni_speedup",
                    _ => "register_multi_speedup",
                },
                Json::Num(stack / reg),
            ));
        }
        let doc = Json::obj(fields);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
