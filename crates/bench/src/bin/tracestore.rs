//! The segmented trace store at shop-workload scale: spill cost,
//! on-disk compression, and cold-replay audit wall vs the in-RAM audit,
//! printed as a table and (with `OROCHI_BENCH_JSON=path` or
//! `--bench-json`) emitted as the `tracestore` row of the CI
//! `BENCH_ci.json` artifact.
//!
//! Usage: `cargo run --release -p orochi_bench --bin tracestore [flags]`
//! (the shared [`orochi_harness::Config`] flags apply: `--full`,
//! `--bench-json <path>`, `--store-dir <dir>`, `--segment-bytes <n>`,
//! `--audit-threads <n|auto>`, …).
//!
//! The row carries three guards CI enforces:
//!
//! * `bytes_per_event < 24` — the columnar dictionary encoding must
//!   keep the store below 24 bytes per trace event;
//! * `verdict_match` — the cold-replay audit verdict is byte-identical
//!   to the in-RAM audit;
//! * `segment_bounded` — no sealed segment exceeded the configured
//!   budget plus one event of overshoot, which is what bounds the
//!   auditor's resident ingest buffer.

use orochi_bench::cli::apply_skew_args;
use orochi_bench::json::Json;
use orochi_harness::experiments::shop_workload;
use orochi_harness::{
    run_audit_cold, run_audit_with, serve, spill_bundle, AuditOptions, ServeOptions,
};
use orochi_trace::{TraceStoreReader, DEFAULT_SEGMENT_BYTES};
use std::time::Instant;

fn main() {
    let config = apply_skew_args("tracestore", std::env::args().skip(1));
    // At smoke scale, default to small segments so the bench actually
    // exercises multi-segment stores; an explicit --segment-bytes or
    // OROCHI_SEGMENT_BYTES wins.
    let segment_budget = if config.segment_bytes != DEFAULT_SEGMENT_BYTES {
        config.segment_bytes
    } else if config.full {
        DEFAULT_SEGMENT_BYTES
    } else {
        64 * 1024
    };
    let threads = config.resolved_audit_threads();

    let work = shop_workload(config.scale(), 42);
    let served = serve(&work, &ServeOptions::default());
    let events = served.bundle.trace.len();

    let tmp_dir;
    let dir = match &config.store_dir {
        Some(dir) => dir.clone(),
        None => {
            tmp_dir = std::env::temp_dir()
                .join(format!("orochi-bench-tracestore-{}", std::process::id()));
            tmp_dir.clone()
        }
    };
    let _ = std::fs::remove_dir_all(&dir);

    let t0 = Instant::now();
    let summary = spill_bundle(&served.bundle, &dir, segment_budget).expect("spill");
    let spill_wall = t0.elapsed();

    let opts = AuditOptions {
        threads,
        ..Default::default()
    };
    let ram = run_audit_with(&served.bundle, &work, &opts);
    let ram_wall = ram.as_ref().map(|r| r.wall).unwrap_or_default();

    // Cold path: the in-RAM trace is dropped before the audit replays
    // the sealed segments.
    let bundle = served.bundle;
    let ram_verdict = match &ram {
        Ok(run) => format!("accept:{}", run.outcome.stats.requests_reexecuted),
        Err(r) => format!("reject:{r}"),
    };
    drop(bundle);
    let t0 = Instant::now();
    let reader = TraceStoreReader::open(&dir).expect("open store");
    let cold = run_audit_cold(&reader, &work, &opts);
    let cold_wall = t0.elapsed();
    let cold_verdict = match &cold {
        Ok(run) => format!("accept:{}", run.outcome.stats.requests_reexecuted),
        Err(r) => format!("reject:{r}"),
    };
    let verdict_match = ram_verdict == cold_verdict;

    // One event of overshoot is legal: a segment seals when its
    // estimate crosses the budget, i.e. after the crossing event.
    let segment_cap = segment_budget + 64 * 1024;
    let segment_bounded = summary.max_segment_bytes <= segment_cap;
    let bytes_per_event = summary.segment_bytes as f64 / events.max(1) as f64;

    println!("== tracestore: spill + cold replay (events={events}, threads={threads}) ==");
    println!("{:<22} {:>12}", "segments", summary.segments);
    println!("{:<22} {:>9} B", "disk (segments)", summary.segment_bytes);
    println!("{:<22} {:>9} B", "disk (blobs)", summary.blob_bytes);
    println!("{:<22} {:>9.2} B", "bytes/event", bytes_per_event);
    println!(
        "{:<22} {:>9} B (cap {})",
        "max segment", summary.max_segment_bytes, segment_cap
    );
    println!(
        "{:<22} {:>9.3}ms",
        "spill wall",
        spill_wall.as_secs_f64() * 1000.0
    );
    println!(
        "{:<22} {:>9.3}ms",
        "audit (RAM)",
        ram_wall.as_secs_f64() * 1000.0
    );
    println!(
        "{:<22} {:>9.3}ms",
        "audit (cold)",
        cold_wall.as_secs_f64() * 1000.0
    );
    println!("verdict RAM={ram_verdict} cold={cold_verdict} match={verdict_match}");
    assert!(verdict_match, "cold verdict must match the in-RAM audit");
    assert!(segment_bounded, "segments exceeded the configured budget");

    if let Some(path) = &config.bench_json {
        let doc = Json::obj([
            ("experiment", Json::str("tracestore")),
            ("events", Json::from(events)),
            ("segments", Json::from(summary.segments)),
            ("disk_bytes", Json::from(summary.segment_bytes as usize)),
            ("blob_bytes", Json::from(summary.blob_bytes as usize)),
            ("bytes_per_event", Json::Num(bytes_per_event)),
            ("max_segment_bytes", Json::from(summary.max_segment_bytes)),
            ("segment_cap_bytes", Json::from(segment_cap)),
            ("segment_bounded", Json::Bool(segment_bounded)),
            ("spill_wall_s", Json::Num(spill_wall.as_secs_f64())),
            ("ram_audit_wall_s", Json::Num(ram_wall.as_secs_f64())),
            ("cold_audit_wall_s", Json::Num(cold_wall.as_secs_f64())),
            ("audit_threads", Json::from(threads)),
            ("verdict_match", Json::Bool(verdict_match)),
        ]);
        std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if config.store_dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
