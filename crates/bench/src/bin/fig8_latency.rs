//! Regenerates the Fig. 8 (right) latency-vs-throughput plot data for
//! the forum application, with recording on (OROCHI) and off (baseline).
//!
//! Usage: `cargo run --release -p orochi-bench --bin fig8_latency`

use orochi_harness::experiments::{fig8_latency, scale_from_env};

fn main() {
    let scale = (scale_from_env() * 0.2).max(0.005);
    let rates = [100.0, 200.0, 400.0, 800.0, 1600.0];
    println!("== Fig. 8 (right): latency vs throughput, forum app ==");
    for (label, recording) in [("baseline", false), ("orochi", true)] {
        println!("-- {label} --");
        println!(
            "{:>10} {:>12} {:>9} {:>9} {:>9}",
            "rate", "throughput", "p50(ms)", "p90(ms)", "p99(ms)"
        );
        for point in fig8_latency(scale, 42, &rates, recording) {
            println!(
                "{:>10.0} {:>12.1} {:>9.2} {:>9.2} {:>9.2}",
                point.offered_rate, point.throughput, point.p50_ms, point.p90_ms, point.p99_ms
            );
        }
    }
}
