//! The streaming epoch audit at shop-workload scale: batch-cold vs
//! streaming-cold audit wall and peak heap, plus the per-epoch lag
//! distribution from an obs-on audit-while-serving run. Printed as a
//! table and (with `OROCHI_BENCH_JSON=path` or `--bench-json`) emitted
//! as the `streaming` row of the CI `BENCH_ci.json` artifact.
//!
//! Usage: `cargo run --release -p orochi_bench --bin streaming [flags]`
//! (the shared [`orochi_harness::Config`] flags apply: `--full`,
//! `--epoch-events <n>`, `--audit-threads <n|auto>`, `--bench-json
//! <path>`, …).
//!
//! Peak heap is measured by the counting global allocator
//! ([`TrackingAllocator`]): each arm resets the high-water mark, runs
//! the audit, and reports the peak growth over the pre-arm resident
//! set. The row carries two guards CI enforces:
//!
//! * `verdict_match` — the streaming verdict (and its
//!   requests-reexecuted count) is byte-identical to the batch audit;
//! * `peak_bounded` — the streaming audit's peak heap growth stays
//!   under half the batch audit's, the bounded-carry claim at
//!   epoch-budget scale.

use orochi_bench::cli::apply_skew_args;
use orochi_bench::json::Json;
use orochi_common::metrics::{alloc_tracking, TrackingAllocator};
use orochi_core::Rejection;
use orochi_harness::experiments::shop_workload;
use orochi_harness::{
    run_audit_cold, run_audit_streaming, serve, serve_and_audit, spill_bundle, AuditOptions,
    AuditRun, ServeOptions, Threads,
};
use orochi_trace::{TraceStoreReader, DEFAULT_SEGMENT_BYTES};
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn verdict(run: &Result<AuditRun, Rejection>) -> String {
    match run {
        Ok(run) => format!("accept:{}", run.outcome.stats.requests_reexecuted),
        Err(r) => format!("reject:{r}"),
    }
}

fn main() {
    let config = apply_skew_args("streaming", std::env::args().skip(1));
    // An explicit --audit-threads is honored unclamped (measurement
    // bins want the requested pool even on small runners); auto
    // resolves to the hardware.
    let threads = match config.audit_threads {
        Threads::Exact(n) if n > 0 => n,
        _ => config.resolved_audit_threads(),
    };
    let epoch_events = if config.epoch_events != 0 {
        config.epoch_events
    } else if config.full {
        8192
    } else {
        256
    };
    let segment_budget = if config.segment_bytes != DEFAULT_SEGMENT_BYTES {
        config.segment_bytes
    } else if config.full {
        DEFAULT_SEGMENT_BYTES
    } else {
        64 * 1024
    };
    // Telemetry off for the measured arms so the clock-bearing layer
    // doesn't blur the memory comparison; a separate obs-on run below
    // collects the epoch-lag distribution.
    orochi_obs::set_enabled(false);

    let work = shop_workload(config.scale(), 42);
    let served = serve(&work, &ServeOptions::default());
    let events = served.bundle.trace.len();
    let dir = std::env::temp_dir().join(format!("orochi-bench-streaming-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    spill_bundle(&served.bundle, &dir, segment_budget).expect("spill");
    drop(served); // cold arms replay the sealed segments only

    let opts = AuditOptions {
        threads,
        ..Default::default()
    };
    let reader = TraceStoreReader::open(&dir).expect("open store");

    // Batch-cold arm: the whole trace materializes before phase 2.
    let floor = alloc_tracking::current_bytes();
    alloc_tracking::reset_peak();
    let t0 = Instant::now();
    let batch = run_audit_cold(&reader, &work, &opts);
    let batch_wall = t0.elapsed();
    let batch_peak = alloc_tracking::peak_bytes().saturating_sub(floor);
    let batch_verdict = verdict(&batch);
    drop(batch);

    // Streaming-cold arm: same store, same pool, bounded carry.
    let floor = alloc_tracking::current_bytes();
    alloc_tracking::reset_peak();
    let t0 = Instant::now();
    let streaming = run_audit_streaming(&reader, &work, &opts, epoch_events);
    let streaming_wall = t0.elapsed();
    let streaming_peak = alloc_tracking::peak_bytes().saturating_sub(floor);
    let streaming_verdict = verdict(&streaming);
    drop(streaming);
    drop(reader);
    let _ = std::fs::remove_dir_all(&dir);

    let verdict_match = batch_verdict == streaming_verdict;
    let peak_ratio = streaming_peak as f64 / batch_peak.max(1) as f64;
    let peak_bounded = peak_ratio < 0.5;

    // Obs-on arm: audit-while-serving, sealing one store segment per
    // epoch, to populate the seal→epoch-verdict lag histogram.
    orochi_obs::set_enabled(true);
    let dir2 =
        std::env::temp_dir().join(format!("orochi-bench-streaming-sa-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir2);
    let sa = serve_and_audit(
        &work,
        &ServeOptions::default(),
        &opts,
        &dir2,
        segment_budget,
        epoch_events,
    )
    .unwrap_or_else(|r| panic!("obs-on serve_and_audit rejected: {r}"));
    let _ = std::fs::remove_dir_all(&dir2);
    orochi_obs::set_enabled(false);
    let lag = orochi_obs::registry::histogram("audit_lag_ns").snapshot();
    let p99_epoch_lag_us = lag.quantile_est(99.0).map_or(0.0, |ns| ns / 1000.0);

    println!(
        "== streaming: batch vs epoch audit (events={events}, epoch_events={epoch_events}, \
         threads={threads}) =="
    );
    println!("{:<22} {:>12}", "epochs (obs run)", sa.epochs);
    println!(
        "{:<22} {:>9.3}ms",
        "audit (batch cold)",
        batch_wall.as_secs_f64() * 1000.0
    );
    println!(
        "{:<22} {:>9.3}ms",
        "audit (streaming)",
        streaming_wall.as_secs_f64() * 1000.0
    );
    println!("{:<22} {:>9} B", "peak heap (batch)", batch_peak);
    println!("{:<22} {:>9} B", "peak heap (streaming)", streaming_peak);
    println!("{:<22} {:>12.3}", "peak ratio", peak_ratio);
    println!("{:<22} {:>9.1}us", "p99 epoch lag", p99_epoch_lag_us);
    println!("verdict batch={batch_verdict} streaming={streaming_verdict} match={verdict_match}");
    assert!(
        verdict_match,
        "streaming verdict must match the batch audit"
    );
    assert!(
        peak_bounded,
        "streaming peak heap {streaming_peak} must stay under half the batch peak {batch_peak}"
    );

    if let Some(path) = &config.bench_json {
        let doc = Json::obj([
            ("experiment", Json::str("streaming")),
            ("events", Json::from(events)),
            ("epoch_events", Json::from(epoch_events)),
            ("epochs", Json::from(sa.epochs as usize)),
            ("batch_audit_wall_s", Json::Num(batch_wall.as_secs_f64())),
            (
                "streaming_audit_wall_s",
                Json::Num(streaming_wall.as_secs_f64()),
            ),
            ("batch_peak_bytes", Json::from(batch_peak)),
            ("streaming_peak_bytes", Json::from(streaming_peak)),
            ("peak_ratio", Json::Num(peak_ratio)),
            ("peak_bounded", Json::Bool(peak_bounded)),
            ("p99_epoch_lag_us", Json::Num(p99_epoch_lag_us)),
            ("audit_threads", Json::from(threads)),
            ("verdict_match", Json::Bool(verdict_match)),
        ]);
        std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
