//! Regenerates the Fig. 11 control-flow group characteristics for the
//! wiki workload.
//!
//! Usage: `cargo run --release -p orochi-bench --bin fig11_groups`

use orochi_harness::experiments::{fig11_groups, print_fig11, scale_from_env};

fn main() {
    let scale = scale_from_env();
    println!("== Fig. 11: control-flow groups, wiki workload (scale {scale}) ==");
    let summary = fig11_groups(scale, 42);
    print_fig11(&summary);
}
