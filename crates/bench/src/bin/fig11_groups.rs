//! Regenerates the Fig. 11 control-flow group characteristics for the
//! wiki workload.
//!
//! Usage: `cargo run --release -p orochi_bench --bin fig11_groups`
//! (`OROCHI_AUDIT_THREADS` selects the audit worker pool; the triples
//! are scheduling-independent, so any thread count reports the same
//! groups).

use orochi_harness::audit_threads_from_env;
use orochi_harness::experiments::{fig11_groups, print_fig11, scale_from_env};

fn main() {
    let scale = scale_from_env();
    let threads = audit_threads_from_env();
    println!(
        "== Fig. 11: control-flow groups, wiki workload (scale {scale}, {threads} audit threads) =="
    );
    let summary = fig11_groups(scale, 42, threads);
    print_fig11(&summary);
}
