//! Telemetry overhead guard: runs the full shop pipeline (serve →
//! spill → cold audit) with telemetry disabled and enabled, interleaved
//! min-of-N, and emits the `obs` row of the CI `BENCH_ci.json`
//! artifact (with `OROCHI_BENCH_JSON=path` or `--bench-json`).
//!
//! Usage: `cargo run --release -p orochi_bench --bin obs_overhead
//! [flags]` (the shared [`orochi_harness::Config`] flags apply:
//! `--full`, `--bench-json <path>`, `--obs-out <prefix>`,
//! `--audit-threads <n|auto>`, …).
//!
//! The row carries the telemetry layer's contract:
//!
//! * `guard_ok` — the disabled-mode pipeline wall is within 3% of the
//!   instrumented build with telemetry off (or within 0.1 s absolute,
//!   which covers timer noise at smoke scale); CI gates on it;
//! * `trace_valid` — the enabled run journals events into every
//!   pipeline lane family (`serve-worker-*`, `audit-worker-*`,
//!   `trace-store`), asserted in-bin;
//! * the enabled run records nonzero admission-wait, audit-lag, and
//!   audit-phase metrics, and the trace-store counters reconcile
//!   exactly with the spill summary — all asserted in-bin.

use orochi_bench::cli::apply_skew_args;
use orochi_bench::json::Json;
use orochi_harness::experiments::shop_workload;
use orochi_harness::{
    export_obs, run_audit_cold, serve, spill_bundle, AppWorkload, AuditOptions, ServeOptions,
};
use orochi_obs::{journal, registry};
use orochi_trace::{TraceStoreReader, TraceStoreSummary, DEFAULT_SEGMENT_BYTES};
use std::path::Path;
use std::time::{Duration, Instant};

/// Interleaved repetitions per mode; the minimum wall of each mode is
/// compared, which discards scheduler noise instead of averaging it in.
const REPS: usize = 3;

/// One full pipeline pass: serve the workload, spill it to a fresh
/// segmented store at `dir`, drop the in-RAM trace, and cold-audit the
/// segments. Returns the end-to-end wall and the spill summary.
fn run_pipeline(
    work: &AppWorkload,
    dir: &Path,
    segment_bytes: usize,
    threads: usize,
) -> (Duration, TraceStoreSummary) {
    let _ = std::fs::remove_dir_all(dir);
    let t0 = Instant::now();
    let served = serve(work, &ServeOptions::default());
    let summary = spill_bundle(&served.bundle, dir, segment_bytes).expect("spill");
    drop(served); // cold path: only the sealed segments remain
    let reader = TraceStoreReader::open(dir).expect("open store");
    let opts = AuditOptions {
        threads,
        ..Default::default()
    };
    let run = run_audit_cold(&reader, work, &opts)
        .unwrap_or_else(|r| panic!("obs_overhead audit rejected: {r}"));
    assert!(run.outcome.stats.requests_reexecuted > 0);
    (t0.elapsed(), summary)
}

fn main() {
    let config = apply_skew_args("obs_overhead", std::env::args().skip(1));
    // Small segments at smoke scale so the spill seals more than one
    // segment; an explicit --segment-bytes or OROCHI_SEGMENT_BYTES wins.
    let segment_bytes = if config.segment_bytes != DEFAULT_SEGMENT_BYTES {
        config.segment_bytes
    } else if config.full {
        DEFAULT_SEGMENT_BYTES
    } else {
        64 * 1024
    };
    let threads = config.resolved_audit_threads();
    let work = shop_workload(config.scale(), 42);
    let dir = std::env::temp_dir().join(format!("orochi-bench-obs-{}", std::process::id()));

    let mut disabled_min = Duration::MAX;
    let mut enabled_min = Duration::MAX;
    let mut events = 0u64;
    let mut wait_samples = 0u64;
    let mut lag_samples = 0u64;
    for _ in 0..REPS {
        orochi_obs::set_enabled(false);
        let (wall, _) = run_pipeline(&work, &dir, segment_bytes, threads);
        disabled_min = disabled_min.min(wall);

        orochi_obs::set_enabled(true);
        // Counters are always on, so deltas captured around one enabled
        // arm isolate exactly that arm's pipeline.
        let bytes0 = registry::counter("tracestore_bytes_total").get();
        let events0 = registry::counter("tracestore_events_total").get();
        let wait0 = registry::histogram("frontend_admission_wait_ns")
            .snapshot()
            .count;
        let lag0 = registry::histogram("audit_lag_ns").snapshot().count;
        let (wall, summary) = run_pipeline(&work, &dir, segment_bytes, threads);
        enabled_min = enabled_min.min(wall);
        events = summary.events;
        // The trace-store counters must reconcile exactly with what the
        // spill reported sealing.
        let bytes_delta = registry::counter("tracestore_bytes_total").get() - bytes0;
        let events_delta = registry::counter("tracestore_events_total").get() - events0;
        assert_eq!(
            bytes_delta, summary.segment_bytes,
            "sealed-bytes counter drifted"
        );
        assert_eq!(
            events_delta, summary.events,
            "sealed-events counter drifted"
        );
        wait_samples = registry::histogram("frontend_admission_wait_ns")
            .snapshot()
            .count
            - wait0;
        lag_samples = registry::histogram("audit_lag_ns").snapshot().count - lag0;
        assert!(wait_samples > 0, "enabled run recorded no admission waits");
        assert!(lag_samples > 0, "enabled run recorded no audit lag");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Per-phase audit walls mirrored into the registry (satellite of the
    // AuditStats refactor): every fig9 phase must have accumulated time.
    for phase in [
        "audit_phase_balance_ns",
        "audit_phase_procoprep_ns",
        "audit_phase_db_redo_ns",
        "audit_phase_reexec_ns",
        "audit_phase_output_ns",
    ] {
        assert!(registry::counter(phase).get() > 0, "{phase} is zero");
    }

    // Journal validity: one populated lane per pipeline actor family.
    let lanes = journal::lane_event_counts();
    let lane_events = |prefix: &str| -> usize {
        lanes
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, n)| *n)
            .sum()
    };
    let serve_events = lane_events("serve-worker-");
    let audit_events = lane_events("audit-worker-");
    let store_events = lane_events("trace-store");
    let chrome = journal::chrome_trace_json();
    let trace_valid =
        serve_events > 0 && audit_events > 0 && store_events > 0 && chrome.contains("\"ph\":\"X\"");
    assert!(
        trace_valid,
        "chrome trace invalid: serve={serve_events} audit={audit_events} store={store_events}"
    );

    let disabled_s = disabled_min.as_secs_f64();
    let enabled_s = enabled_min.as_secs_f64();
    let overhead_abs_s = enabled_s - disabled_s;
    let overhead_pct = overhead_abs_s / disabled_s * 100.0;
    let guard_ok = overhead_pct <= 3.0 || overhead_abs_s <= 0.1;

    println!(
        "== obs_overhead: telemetry cost (events={events}, threads={threads}, reps={REPS}) =="
    );
    println!("{:<22} {:>9.3}ms", "disabled (min)", disabled_s * 1000.0);
    println!("{:<22} {:>9.3}ms", "enabled (min)", enabled_s * 1000.0);
    println!(
        "{:<22} {:>9.2}% ({:+.3}ms)",
        "overhead",
        overhead_pct,
        overhead_abs_s * 1000.0
    );
    println!(
        "lanes: serve={serve_events} audit={audit_events} store={store_events} \
         admission_wait={wait_samples} audit_lag={lag_samples}"
    );
    println!("guard_ok={guard_ok} trace_valid={trace_valid}");

    if let Some(path) = &config.bench_json {
        let doc = Json::obj([
            ("experiment", Json::str("obs_overhead")),
            ("reps", Json::from(REPS)),
            ("events", Json::from(events as usize)),
            ("audit_threads", Json::from(threads)),
            ("disabled_wall_s", Json::Num(disabled_s)),
            ("enabled_wall_s", Json::Num(enabled_s)),
            ("overhead_pct", Json::Num(overhead_pct)),
            ("overhead_abs_s", Json::Num(overhead_abs_s)),
            ("guard_ok", Json::Bool(guard_ok)),
            ("trace_valid", Json::Bool(trace_valid)),
            ("serve_lane_events", Json::from(serve_events)),
            ("audit_lane_events", Json::from(audit_events)),
            ("tracestore_lane_events", Json::from(store_events)),
            ("admission_wait_samples", Json::from(wait_samples as usize)),
            ("audit_lag_samples", Json::from(lag_samples as usize)),
        ]);
        std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    for written in export_obs(&config).expect("exporting telemetry artifacts") {
        println!("wrote {}", written.display());
    }
}
