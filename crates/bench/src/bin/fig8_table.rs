//! Regenerates the Fig. 8 (left) main-results table.
//!
//! Usage: `cargo run --release -p orochi_bench --bin fig8_table
//!         [--skew <theta[,len]>] [--session-len <len>]`
//! (`OROCHI_FULL=1` for the paper's full request counts;
//! `OROCHI_BENCH_JSON=path` to also write the rows as JSON for the CI
//! artifact; the skew flags set `OROCHI_WORKLOAD_SKEW` for all four
//! workload generators).

use orochi_bench::json::Json;
use orochi_harness::experiments::{fig8_table, print_fig8, scale_from_env, Fig8Row};

fn json_doc(scale: f64, rows: &[Fig8Row]) -> Json {
    Json::obj([
        ("experiment", Json::str("fig8_table")),
        ("scale", Json::Num(scale)),
        (
            "fig8",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("app", Json::str(r.app)),
                            ("requests", Json::from(r.requests)),
                            ("audit_speedup", Json::Num(r.audit_speedup)),
                            ("server_cpu_overhead", Json::Num(r.server_cpu_overhead)),
                            ("avg_request_bytes", Json::Num(r.avg_request_bytes)),
                            ("baseline_report_bytes", Json::Num(r.baseline_report_bytes)),
                            ("orochi_report_bytes", Json::Num(r.orochi_report_bytes)),
                            ("report_overhead", Json::Num(r.report_overhead)),
                            ("db_temp_overhead", Json::Num(r.db_temp_overhead)),
                            ("db_permanent_overhead", Json::Num(r.db_permanent_overhead)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    orochi_bench::cli::apply_skew_args("fig8_table", std::env::args().skip(1));
    let scale = scale_from_env();
    println!("== Fig. 8 (left): main results (scale {scale}) ==");
    let rows = fig8_table(scale, 42);
    print_fig8(&rows);

    if let Ok(path) = std::env::var("OROCHI_BENCH_JSON") {
        let doc = json_doc(scale, &rows);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
