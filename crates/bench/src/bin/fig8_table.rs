//! Regenerates the Fig. 8 (left) main-results table.
//!
//! Usage: `cargo run --release -p orochi-bench --bin fig8_table`
//! (`OROCHI_FULL=1` for the paper's full request counts).

use orochi_harness::experiments::{fig8_table, print_fig8, scale_from_env};

fn main() {
    let scale = scale_from_env();
    println!("== Fig. 8 (left): main results (scale {scale}) ==");
    let rows = fig8_table(scale, 42);
    print_fig8(&rows);
}
