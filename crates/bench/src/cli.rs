//! Tiny argument handling shared by the bench binaries.
//!
//! The workload generators read their shared skew knob from
//! `OROCHI_WORKLOAD_SKEW`; the binaries accept `--skew <theta[,len]>`
//! and `--session-len <len>` flags and translate them into that
//! variable, so CLI and environment configure the same code path.

/// Applies `--skew` / `--session-len` from `args` by setting
/// `OROCHI_WORKLOAD_SKEW` (CLI wins over a pre-set variable). Unknown
/// arguments panic with a usage message naming `bin`.
///
/// # Panics
///
/// Panics on unknown flags, missing values, or a malformed skew.
pub fn apply_skew_args(bin: &str, args: impl Iterator<Item = String>) {
    let mut args = args.peekable();
    let mut theta: Option<String> = None;
    let mut session_len: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{bin}: {flag} needs a value"))
        };
        match arg.as_str() {
            "--skew" => theta = Some(value_of("--skew")),
            "--session-len" => session_len = Some(value_of("--session-len")),
            other => panic!(
                "{bin}: unknown argument {other:?} \
                 (supported: --skew <theta[,session_len]>, --session-len <len>)"
            ),
        }
    }
    if theta.is_none() && session_len.is_none() {
        return;
    }
    // `--skew` may already carry a ",len" part; an explicit
    // `--session-len` overrides it.
    let base = theta.unwrap_or_default();
    let (theta_part, embedded_len) = match base.split_once(',') {
        Some((t, l)) => (t.to_string(), Some(l.to_string())),
        None => (base, None),
    };
    let len_part = session_len.or(embedded_len).unwrap_or_default();
    let combined = format!("{theta_part},{len_part}");
    let combined = combined.trim_end_matches(',').to_string();
    // Validate eagerly so a typo fails at the flag, not mid-experiment.
    orochi_workload::Skew::parse(&combined).unwrap_or_else(|e| panic!("{bin}: invalid skew: {e}"));
    std::env::set_var("OROCHI_WORKLOAD_SKEW", combined);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn combines_flags_into_env() {
        // Serialized through one test because the variable is global.
        apply_skew_args("t", args(&["--skew", "0.8"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "0.8");
        apply_skew_args("t", args(&["--skew", "0.8", "--session-len", "4"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "0.8,4");
        apply_skew_args("t", args(&["--session-len", "2"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), ",2");
        apply_skew_args("t", args(&["--skew", "1.1,9", "--session-len", "2"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "1.1,2");
        std::env::remove_var("OROCHI_WORKLOAD_SKEW");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flags_panic() {
        apply_skew_args("t", args(&["--frobnicate"]));
    }
}
