//! Tiny argument handling shared by the bench binaries.
//!
//! The binaries configure themselves through the consolidated
//! [`orochi_harness::Config`]: flags merge over the `OROCHI_*`
//! environment (CLI wins), and the merged configuration is exported
//! back to the environment so the workload generators and serving
//! front-end — which still read the variables — see the same values.
//! [`apply_skew_args`] is the one-call version every binary uses.

use orochi_harness::Config;

/// Parses the shared bench flags (`--skew`, `--session-len`,
/// `--serve-threads`, `--queue-depth`, `--audit-threads`, `--engine`,
/// `--full`, `--bench-json`, `--store-dir`, `--segment-bytes`,
/// `--epoch-events`, `--obs`, `--obs-out`) on top
/// of the current environment, exports the merged configuration back to
/// the `OROCHI_*` variables, and returns it. Unknown arguments panic
/// with a usage message naming `bin`.
///
/// # Panics
///
/// Panics on unknown flags, missing values, or malformed values.
pub fn apply_skew_args(bin: &str, args: impl Iterator<Item = String>) -> Config {
    let mut config = Config::from_env();
    config.apply_cli(bin, args);
    config.export_env();
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn combines_flags_into_env() {
        // Serialized through one test because the variables are global.
        std::env::remove_var("OROCHI_WORKLOAD_SKEW");
        apply_skew_args("t", args(&["--skew", "0.8"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "0.8");
        apply_skew_args("t", args(&["--session-len", "4"]));
        // CLI merges over the environment: the exported theta survives.
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "0.8,4");
        std::env::remove_var("OROCHI_WORKLOAD_SKEW");
        apply_skew_args("t", args(&["--session-len", "2"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), ",2");
        apply_skew_args("t", args(&["--skew", "1.1,9", "--session-len", "2"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "1.1,2");
        std::env::remove_var("OROCHI_WORKLOAD_SKEW");

        apply_skew_args("t", args(&["--serve-threads", "8", "--queue-depth", "64"]));
        assert_eq!(std::env::var("OROCHI_SERVE_THREADS").unwrap(), "8");
        assert_eq!(std::env::var("OROCHI_SERVE_QUEUE").unwrap(), "64");
        let config = apply_skew_args("t", args(&["--serve-threads", "auto"]));
        assert_eq!(std::env::var("OROCHI_SERVE_THREADS").unwrap(), "auto");
        assert_eq!(config.serve_queue, 64); // env round-trips through Config
        std::env::remove_var("OROCHI_SERVE_THREADS");
        std::env::remove_var("OROCHI_SERVE_QUEUE");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flags_panic() {
        apply_skew_args("t", args(&["--frobnicate"]));
    }
}
