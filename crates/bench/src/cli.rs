//! Tiny argument handling shared by the bench binaries.
//!
//! The workload generators read their shared skew knob from
//! `OROCHI_WORKLOAD_SKEW` and the serving front-end reads its pool and
//! queue knobs from `OROCHI_SERVE_THREADS`/`OROCHI_SERVE_QUEUE`; the
//! binaries accept `--skew <theta[,len]>`, `--session-len <len>`,
//! `--serve-threads <n|auto>`, and `--queue-depth <n>` flags and
//! translate them into those variables, so CLI and environment
//! configure the same code path.

/// Applies `--skew` / `--session-len` / `--serve-threads` /
/// `--queue-depth` from `args` by setting the corresponding environment
/// knobs (CLI wins over a pre-set variable). Unknown arguments panic
/// with a usage message naming `bin`.
///
/// # Panics
///
/// Panics on unknown flags, missing values, or malformed values.
pub fn apply_skew_args(bin: &str, args: impl Iterator<Item = String>) {
    let mut args = args.peekable();
    let mut theta: Option<String> = None;
    let mut session_len: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{bin}: {flag} needs a value"))
        };
        match arg.as_str() {
            "--skew" => theta = Some(value_of("--skew")),
            "--session-len" => session_len = Some(value_of("--session-len")),
            "--serve-threads" => {
                let v = value_of("--serve-threads");
                if !v.eq_ignore_ascii_case("auto") {
                    v.parse::<usize>()
                        .unwrap_or_else(|_| panic!("{bin}: --serve-threads needs a count or auto"));
                }
                std::env::set_var("OROCHI_SERVE_THREADS", v);
            }
            "--queue-depth" => {
                let v = value_of("--queue-depth");
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{bin}: --queue-depth needs a number"));
                std::env::set_var("OROCHI_SERVE_QUEUE", v);
            }
            other => panic!(
                "{bin}: unknown argument {other:?} \
                 (supported: --skew <theta[,session_len]>, --session-len <len>, \
                 --serve-threads <n|auto>, --queue-depth <n>)"
            ),
        }
    }
    if theta.is_none() && session_len.is_none() {
        return;
    }
    // `--skew` may already carry a ",len" part; an explicit
    // `--session-len` overrides it.
    let base = theta.unwrap_or_default();
    let (theta_part, embedded_len) = match base.split_once(',') {
        Some((t, l)) => (t.to_string(), Some(l.to_string())),
        None => (base, None),
    };
    let len_part = session_len.or(embedded_len).unwrap_or_default();
    let combined = format!("{theta_part},{len_part}");
    let combined = combined.trim_end_matches(',').to_string();
    // Validate eagerly so a typo fails at the flag, not mid-experiment.
    orochi_workload::Skew::parse(&combined).unwrap_or_else(|e| panic!("{bin}: invalid skew: {e}"));
    std::env::set_var("OROCHI_WORKLOAD_SKEW", combined);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn combines_flags_into_env() {
        // Serialized through one test because the variable is global.
        apply_skew_args("t", args(&["--skew", "0.8"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "0.8");
        apply_skew_args("t", args(&["--skew", "0.8", "--session-len", "4"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "0.8,4");
        apply_skew_args("t", args(&["--session-len", "2"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), ",2");
        apply_skew_args("t", args(&["--skew", "1.1,9", "--session-len", "2"]));
        assert_eq!(std::env::var("OROCHI_WORKLOAD_SKEW").unwrap(), "1.1,2");
        std::env::remove_var("OROCHI_WORKLOAD_SKEW");
    }

    #[test]
    fn serve_flags_set_front_end_env() {
        apply_skew_args("t", args(&["--serve-threads", "8", "--queue-depth", "64"]));
        assert_eq!(std::env::var("OROCHI_SERVE_THREADS").unwrap(), "8");
        assert_eq!(std::env::var("OROCHI_SERVE_QUEUE").unwrap(), "64");
        apply_skew_args("t", args(&["--serve-threads", "auto"]));
        assert_eq!(std::env::var("OROCHI_SERVE_THREADS").unwrap(), "auto");
        std::env::remove_var("OROCHI_SERVE_THREADS");
        std::env::remove_var("OROCHI_SERVE_QUEUE");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flags_panic() {
        apply_skew_args("t", args(&["--frobnicate"]));
    }
}
