//! Shared scaffolding for the benchmark suite.
//!
//! The Criterion benches and the table-printing binaries both need to
//! (a) run the Fig. 10 instruction microbenchmarks against the scalar
//! and multivalue VMs and (b) synthesize traces for the time-precedence
//! ablation; the helpers live here.

pub mod cli;
pub mod json;

use orochi_accphp::groupvm::{self, run_group, GroupOutcome};
use orochi_accphp::VmEngine;
use orochi_common::ids::{CtlFlowTag, RequestId};
use orochi_core::audit::{AuditConfig, AuditContext};
use orochi_core::nondet::{NondetLog, NondetValue};
use orochi_core::reports::Reports;
use orochi_php::backend::NullBackend;
use orochi_php::bytecode::CompiledScript;
use orochi_php::vm::{run_request, RequestInput};
use orochi_php::{compile, parse_script};
use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};

/// The ten instruction categories of Fig. 10, each as a loop body.
pub const FIG10_CATEGORIES: &[(&str, &str)] = &[
    ("Multiply", "$x = $a * $b;"),
    ("Concat", "$s = $a . $b;"),
    ("Isset", "$x = isset($a);"),
    ("Jump", "if ($a) { $x = 1; } else { $x = 2; }"),
    ("GetVal", "$x = $a;"),
    ("ArraySet", "$arr['k'] = $i;"),
    ("Iteration", "foreach ($small as $v) { $x = $v; }"),
    ("Microtime", "$t = microtime();"),
    ("Increment", "$i++;"),
    ("NewArray", "$arr2 = [];"),
];

/// Compiles the Fig. 10 microbenchmark script for one category: `iters`
/// executions of the category's operation inside a counted loop. The
/// operands `$a`/`$b` come from `$_GET`, so per-lane inputs control
/// univalent vs multivalent execution.
pub fn fig10_script(body: &str, iters: usize) -> CompiledScript {
    let src = format!(
        "<?php
         $a = $_GET['a'];
         $b = $_GET['b'];
         $small = [1, 2, 3];
         $arr = [];
         $i = 0;
         for ($n = 0; $n < {iters}; $n++) {{
             {body}
         }}
         echo 'done';"
    );
    compile("/bench.php", &parse_script(&src).unwrap()).unwrap()
}

/// Runs a Fig. 10 script on the unmodified scalar runtime.
pub fn run_fig10_scalar(script: &CompiledScript, a: &str, b: &str) {
    let mut backend = NullBackend;
    let input = RequestInput {
        method: "GET".into(),
        path: "/bench.php".into(),
        get: vec![("a".into(), a.into()), ("b".into(), b.into())],
        ..Default::default()
    };
    let result = run_request(script, &mut backend, &input).expect("bench script runs");
    assert_eq!(result.output.status, 200, "bench script must not error");
}

/// A prepared multivalue-VM bench harness: lanes, inputs, and the
/// trace/report pair that backs the audit context.
pub struct Fig10Group {
    rids: Vec<RequestId>,
    inputs: Vec<RequestInput>,
    trace: Trace,
    reports: Reports,
    config: AuditConfig,
}

impl Fig10Group {
    /// Builds a group of `lanes` requests. With `identical_inputs` the
    /// operands collapse to univalues; otherwise every lane differs and
    /// the loop body executes multivalently. `nondet_steps` pre-records
    /// the per-lane `microtime` values the Microtime category consumes.
    pub fn new(lanes: usize, identical_inputs: bool, nondet_steps: usize) -> Self {
        let mut events = Vec::new();
        let mut rids = Vec::new();
        let mut inputs = Vec::new();
        let mut nondet = NondetLog::new();
        for l in 0..lanes {
            let rid = RequestId(l as u64 + 1);
            rids.push(rid);
            let (a, b) = if identical_inputs {
                ("7".to_string(), "9".to_string())
            } else {
                ((l + 3).to_string(), (l * 2 + 5).to_string())
            };
            let req = HttpRequest::get("/bench.php", &[("a", &a), ("b", &b)]);
            inputs.push(RequestInput {
                method: "GET".into(),
                path: "/bench.php".into(),
                get: vec![("a".into(), a), ("b".into(), b)],
                ..Default::default()
            });
            events.push(Event::Request(rid, req));
            for step in 0..nondet_steps {
                let value = if identical_inputs {
                    step as f64
                } else {
                    (l * 1_000_000 + step) as f64
                };
                nondet.push(rid, NondetValue::Microtime(value));
            }
        }
        for &rid in &rids {
            events.push(Event::Response(rid, HttpResponse::ok(rid, "done")));
        }
        let reports = Reports {
            groupings: vec![(CtlFlowTag(1), rids.clone())],
            op_logs: Default::default(),
            op_counts: rids.iter().map(|r| (*r, 0)).collect(),
            nondet,
        };
        Fig10Group {
            rids,
            inputs,
            trace: Trace { events },
            reports,
            config: AuditConfig::new(),
        }
    }

    /// Runs the script once over the group; panics on divergence (bench
    /// scripts are divergence-free by construction).
    pub fn run(&self, script: &CompiledScript) -> GroupOutcome {
        self.run_with(script, VmEngine::Register)
    }

    /// [`Fig10Group::run`] with an explicit engine — the register VM or
    /// the retained stack baseline — so the engine comparison can time
    /// both on identical groups.
    pub fn run_with(&self, script: &CompiledScript, engine: VmEngine) -> GroupOutcome {
        let mut ctx = AuditContext::prepare(&self.trace, &self.reports, &self.config)
            .expect("bench reports are well-formed");
        match engine {
            VmEngine::Register => run_group(script, &self.rids, &self.inputs, &mut ctx),
            VmEngine::Stack => {
                groupvm::stack::run_group(script, &self.rids, &self.inputs, &mut ctx)
            }
        }
        .unwrap_or_else(|e| panic!("bench group failed: {e:?}"))
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.rids.len()
    }
}

/// Compiles the call-heavy engine-comparison script: `iters` iterations
/// of a loop whose body is two user-function calls (one nested). Call
/// frames dominate, which is where the register VM's pooled register
/// windows pay off against the stack VM's per-call local tables.
pub fn fig10_call_heavy_script(iters: usize) -> CompiledScript {
    let src = format!(
        "<?php
         function mix($x, $y) {{
             return ($x * 31 + $y) % 65521;
         }}
         function step($acc, $i, $a) {{
             $acc = mix($acc, $i);
             return mix($acc, $a);
         }}
         $a = $_GET['a'];
         $b = $_GET['b'];
         $acc = 0;
         for ($n = 0; $n < {iters}; $n++) {{
             $acc = step($acc, $n, $a);
         }}
         echo $acc . ' ' . $b;"
    );
    compile("/bench.php", &parse_script(&src).unwrap()).unwrap()
}

/// Zero-operation reports covering every request of `trace`: what an
/// executor that issued no state operations would ship. The graph-layer
/// ablation feeds these to `process_op_reports` so the measured cost is
/// the time-precedence + program-edge construction and the cycle check,
/// with no log-validation noise.
pub fn zero_op_reports(trace: &Trace) -> Reports {
    let rids: Vec<RequestId> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Request(rid, _) => Some(*rid),
            Event::Response(..) => None,
        })
        .collect();
    Reports {
        groupings: vec![(CtlFlowTag(1), rids.clone())],
        op_logs: Default::default(),
        op_counts: rids.iter().map(|r| (*r, 0)).collect(),
        nondet: Default::default(),
    }
}

/// Synthesizes a balanced trace of `epochs` epochs with `width`
/// mutually concurrent requests each (the §A.8 concurrency shape used
/// by the time-precedence ablation).
pub fn epoch_trace(epochs: usize, width: usize) -> Trace {
    let mut events = Vec::new();
    let mut next = 1u64;
    for _ in 0..epochs {
        let base = next;
        for i in 0..width {
            let rid = RequestId(base + i as u64);
            events.push(Event::Request(rid, HttpRequest::get("/x", &[])));
        }
        for i in 0..width {
            let rid = RequestId(base + i as u64);
            events.push(Event::Response(rid, HttpResponse::ok(rid, "ok")));
        }
        next += width as u64;
    }
    Trace { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fig10_scripts_run_scalar() {
        for (_name, body) in FIG10_CATEGORIES {
            let script = fig10_script(body, 10);
            run_fig10_scalar(&script, "7", "9");
        }
    }

    #[test]
    fn univalent_groups_stay_univalent() {
        let script = fig10_script("$x = $a * $b;", 50);
        let group = Fig10Group::new(4, true, 0);
        let outcome = group.run(&script);
        assert!(
            outcome.univalent > outcome.multivalent * 10,
            "univalent {} multivalent {}",
            outcome.univalent,
            outcome.multivalent
        );
    }

    #[test]
    fn multivalent_groups_execute_per_lane() {
        let script = fig10_script("$x = $a * $b;", 50);
        let group = Fig10Group::new(4, false, 0);
        let outcome = group.run(&script);
        assert!(
            outcome.multivalent > 50,
            "multivalent {}",
            outcome.multivalent
        );
    }

    #[test]
    fn microtime_category_consumes_nondet_per_lane() {
        let script = fig10_script("$t = microtime();", 20);
        let group = Fig10Group::new(3, false, 20);
        let outcome = group.run(&script);
        assert_eq!(outcome.outputs.len(), 3);
    }

    #[test]
    fn epoch_trace_is_balanced() {
        let t = epoch_trace(5, 4);
        let b = t.ensure_balanced().unwrap();
        assert_eq!(b.num_requests(), 20);
    }
}
