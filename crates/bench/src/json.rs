//! A minimal JSON emitter for the bench-tracking CI artifacts.
//!
//! The bench bins write machine-readable results (`BENCH_ci.json` and
//! the nightly full-scale dump) so the CI pipeline can track the audit's
//! performance trajectory. The workspace is offline — no serde — and the
//! documents are small and flat, so a tiny value tree plus a renderer is
//! all that's needed.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj([
            ("name", Json::str("fig9")),
            ("speedup", Json::Num(1.5)),
            (
                "rows",
                Json::Arr(vec![Json::obj([("n", Json::from(3u64))])]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig9","speedup":1.5,"rows":[{"n":3}]}"#
        );
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let doc = Json::Arr(vec![
            Json::str("a\"b\\c\nd"),
            Json::Num(f64::NAN),
            Json::Bool(true),
            Json::Null,
        ]);
        assert_eq!(doc.render(), "[\"a\\\"b\\\\c\\nd\",null,true,null]");
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }
}
