//! The server-side recording backend.
//!
//! Implements the PHP runtime's state and nondeterminism hooks over the
//! real shared objects, recording an operation-log entry at every
//! operation's linearization point (the objects assign the sequence
//! numbers; §4.7) and capturing nondeterministic return values (§4.6).
//! With recording off it performs the same operations without logging —
//! the baseline arm of the Fig. 8 overhead comparison.

use crate::server::ServerShared;
use orochi_common::ids::{OpNum, RequestId, SeqNum};
use orochi_core::nondet::NondetValue;
use orochi_php::backend::{BackendError, DbResult, DbScalar, NondetProvider, StateBackend};
use orochi_sqldb::{ExecOutcome, SqlError, SqlValue, Transaction};
use orochi_state::object::{DbWriteResult, ObjectName, OpContents};
use orochi_state::recorder::SubLog;

/// An open multi-statement transaction with its pending log entry.
struct OpenTxn {
    txn: Transaction,
    queries: Vec<String>,
    write_results: Vec<Option<DbWriteResult>>,
    /// Set once a statement fails: later queries observe failure
    /// without being logged (mirrors re-execution, which cannot see
    /// past the logged failure point).
    failed: bool,
}

/// Per-request backend: owns the request's opnum counter, nondet record,
/// and any open transaction.
pub struct RecordingBackend<'s> {
    shared: &'s ServerShared,
    sublog: SubLog,
    rid: RequestId,
    opnum: u32,
    nondet: Vec<NondetValue>,
    txn: Option<OpenTxn>,
    pid: i64,
    recording: bool,
}

impl<'s> RecordingBackend<'s> {
    /// Creates the backend for one request.
    pub fn new(shared: &'s ServerShared, rid: RequestId, pid: i64, recording: bool) -> Self {
        RecordingBackend {
            sublog: shared.recorder.new_sublog(),
            shared,
            rid,
            opnum: 0,
            nondet: Vec::new(),
            txn: None,
            pid,
            recording,
        }
    }

    /// The request's final operation count `M(rid)`.
    pub fn op_count(&self) -> u32 {
        self.opnum
    }

    /// The recorded nondeterministic values, in consumption order.
    pub fn take_nondet(&mut self) -> Vec<NondetValue> {
        std::mem::take(&mut self.nondet)
    }

    fn next_opnum(&mut self) -> OpNum {
        self.opnum += 1;
        OpNum(self.opnum)
    }

    fn record(&mut self, object: ObjectName, seq: SeqNum, opnum: OpNum, contents: OpContents) {
        if self.recording {
            self.sublog.record(object, seq, self.rid, opnum, contents);
        }
    }

    fn record_nondet(&mut self, value: NondetValue) {
        if self.recording {
            self.nondet.push(value);
        }
    }

    fn guard_not_in_txn(&self) -> Result<(), BackendError> {
        if self.txn.is_some() {
            // The SSCO model forbids object operations inside a
            // transaction (§4.4); deterministic fatal on both sides.
            return Err(BackendError::Fatal(
                "state operation inside open transaction".into(),
            ));
        }
        Ok(())
    }
}

fn write_outcome_to_result(w: orochi_sqldb::WriteOutcome) -> DbWriteResult {
    DbWriteResult {
        affected: w.affected,
        last_insert_id: w.last_insert_id,
    }
}

fn rows_to_db_result(columns: Vec<String>, rows: Vec<Vec<SqlValue>>) -> DbResult {
    DbResult::Rows(
        rows.into_iter()
            .map(|row| {
                columns
                    .iter()
                    .cloned()
                    .zip(row.into_iter().map(|v| match v {
                        SqlValue::Null => DbScalar::Null,
                        SqlValue::Int(i) => DbScalar::Int(i),
                        SqlValue::Float(f) => DbScalar::Float(f),
                        SqlValue::Text(s) => DbScalar::Text(s),
                    }))
                    .collect()
            })
            .collect(),
    )
}

impl StateBackend for RecordingBackend<'_> {
    fn register_read(&mut self, object: &str) -> Result<Option<Vec<u8>>, BackendError> {
        self.guard_not_in_txn()?;
        let reg_name = object
            .strip_prefix("reg:")
            .ok_or_else(|| BackendError::Fatal(format!("not a register: {object}")))?;
        let reg = self.shared.registers.get_or_create(reg_name);
        let (value, seq) = reg.read();
        let opnum = self.next_opnum();
        self.record(
            ObjectName(object.to_string()),
            seq,
            opnum,
            OpContents::RegisterRead,
        );
        Ok(value)
    }

    fn register_write(&mut self, object: &str, value: Vec<u8>) -> Result<(), BackendError> {
        self.guard_not_in_txn()?;
        let reg_name = object
            .strip_prefix("reg:")
            .ok_or_else(|| BackendError::Fatal(format!("not a register: {object}")))?;
        let reg = self.shared.registers.get_or_create(reg_name);
        let seq = reg.write(value.clone());
        let opnum = self.next_opnum();
        self.record(
            ObjectName(object.to_string()),
            seq,
            opnum,
            OpContents::RegisterWrite { value },
        );
        Ok(())
    }

    fn kv_get(&mut self, object: &str, key: &str) -> Result<Option<Vec<u8>>, BackendError> {
        self.guard_not_in_txn()?;
        let (value, seq) = self.shared.kv.get(key);
        let opnum = self.next_opnum();
        self.record(
            ObjectName(object.to_string()),
            seq,
            opnum,
            OpContents::KvGet {
                key: key.to_string(),
            },
        );
        Ok(value)
    }

    fn kv_set(
        &mut self,
        object: &str,
        key: &str,
        value: Option<Vec<u8>>,
    ) -> Result<(), BackendError> {
        self.guard_not_in_txn()?;
        let seq = self.shared.kv.set(key, value.clone());
        let opnum = self.next_opnum();
        self.record(
            ObjectName(object.to_string()),
            seq,
            opnum,
            OpContents::KvSet {
                key: key.to_string(),
                value,
            },
        );
        Ok(())
    }

    fn db_begin(&mut self, _object: &str) -> Result<(), BackendError> {
        if self.txn.is_some() {
            return Err(BackendError::Fatal("nested transaction".into()));
        }
        // Blocks on the global lock: strict serializability (§4.4).
        let txn = self.shared.db.begin();
        self.txn = Some(OpenTxn {
            txn,
            queries: Vec::new(),
            write_results: Vec::new(),
            failed: false,
        });
        Ok(())
    }

    fn db_query(&mut self, object: &str, sql: &str) -> Result<DbResult, BackendError> {
        if let Some(open) = self.txn.as_mut() {
            if open.failed {
                // Past the failure point nothing is logged; re-execution
                // behaves identically.
                return Ok(DbResult::Failed);
            }
            match open.txn.execute(sql) {
                Ok(ExecOutcome::Rows { columns, rows }) => {
                    open.queries.push(sql.to_string());
                    open.write_results.push(None);
                    Ok(rows_to_db_result(columns, rows))
                }
                Ok(ExecOutcome::Write(w)) => {
                    open.queries.push(sql.to_string());
                    open.write_results.push(Some(write_outcome_to_result(w)));
                    Ok(DbResult::Write {
                        affected: w.affected,
                        insert_id: w.last_insert_id,
                    })
                }
                Err(SqlError::TransactionAborted) => Ok(DbResult::Failed),
                Err(_) => {
                    open.queries.push(sql.to_string());
                    open.write_results.push(None);
                    open.failed = true;
                    Ok(DbResult::Failed)
                }
            }
        } else {
            // Auto-commit single-statement transaction.
            let (result, seq) = self.shared.db.execute_autocommit(sql);
            let opnum = self.next_opnum();
            let (contents, out) = match result {
                Ok(ExecOutcome::Rows { columns, rows }) => (
                    OpContents::DbOp {
                        queries: vec![sql.to_string()],
                        succeeded: true,
                        write_results: vec![None],
                    },
                    rows_to_db_result(columns, rows),
                ),
                Ok(ExecOutcome::Write(w)) => (
                    OpContents::DbOp {
                        queries: vec![sql.to_string()],
                        succeeded: true,
                        write_results: vec![Some(write_outcome_to_result(w))],
                    },
                    DbResult::Write {
                        affected: w.affected,
                        insert_id: w.last_insert_id,
                    },
                ),
                Err(_) => (
                    OpContents::DbOp {
                        queries: vec![sql.to_string()],
                        succeeded: false,
                        write_results: vec![None],
                    },
                    DbResult::Failed,
                ),
            };
            self.record(ObjectName(object.to_string()), SeqNum(seq), opnum, contents);
            Ok(out)
        }
    }

    fn db_commit(&mut self, object: &str) -> Result<bool, BackendError> {
        let open = self
            .txn
            .take()
            .ok_or_else(|| BackendError::Fatal("commit without transaction".into()))?;
        let (seq, ok) = open.txn.commit();
        let opnum = self.next_opnum();
        self.record(
            ObjectName(object.to_string()),
            SeqNum(seq),
            opnum,
            OpContents::DbOp {
                queries: open.queries,
                succeeded: ok,
                write_results: open.write_results,
            },
        );
        Ok(ok)
    }

    fn db_rollback(&mut self, object: &str) -> Result<(), BackendError> {
        let open = self
            .txn
            .take()
            .ok_or_else(|| BackendError::Fatal("rollback without transaction".into()))?;
        let seq = open.txn.rollback();
        let opnum = self.next_opnum();
        self.record(
            ObjectName(object.to_string()),
            SeqNum(seq),
            opnum,
            OpContents::DbOp {
                queries: open.queries,
                succeeded: false,
                write_results: open.write_results,
            },
        );
        Ok(())
    }

    fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    fn end_of_request(&mut self) -> Result<(), BackendError> {
        if self.txn.is_some() {
            // Leaked transaction: roll it back (and log it) so the
            // verifier sees the same operation, then fail the request
            // with the deterministic message the verifier reproduces.
            self.db_rollback("db:main")?;
            return Err(BackendError::Fatal(
                "script ended with open transaction".into(),
            ));
        }
        Ok(())
    }
}

impl NondetProvider for RecordingBackend<'_> {
    fn time(&mut self) -> Result<i64, BackendError> {
        let t = self.shared.clock_seconds();
        self.record_nondet(NondetValue::Time(t));
        Ok(t)
    }

    fn microtime(&mut self) -> Result<f64, BackendError> {
        let t = self.shared.clock_micros() as f64 / 1_000_000.0;
        self.record_nondet(NondetValue::Microtime(t));
        Ok(t)
    }

    fn getpid(&mut self) -> Result<i64, BackendError> {
        self.record_nondet(NondetValue::Pid(self.pid));
        Ok(self.pid)
    }

    fn mt_rand(&mut self) -> Result<i64, BackendError> {
        let raw = self.shared.draw_random();
        self.record_nondet(NondetValue::Rand(raw));
        Ok(raw)
    }

    fn uniqid(&mut self) -> Result<String, BackendError> {
        let id = format!("{:013x}", self.shared.clock_micros());
        self.record_nondet(NondetValue::Uniqid(id.clone()));
        Ok(id)
    }
}
