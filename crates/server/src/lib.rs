//! The online executor: a concurrent PHP application server that records
//! the untrusted reports.
//!
//! This is the paper's "server" (§4): each request runs the scalar PHP
//! runtime on its own thread against real shared objects — the register
//! bank (sessions), the key-value store (APC), and the
//! strictly-serializable SQL database. While executing, the server
//! records everything the audit later needs:
//!
//! * the **control-flow digest** per request (the grouping tag, §4.3),
//! * per-object **operation logs** via per-request sub-logs stitched at
//!   report-assembly time (§4.7),
//! * the per-request **operation count** `M(rid)`,
//! * the return values of **nondeterministic builtins** (§4.6).
//!
//! Recording can be disabled ([`ServerConfig::recording`]) to measure
//! the baseline server cost (Fig. 8's "server CPU overhead" compares the
//! two). The recording path is untrusted by construction: nothing the
//! server writes here is believed by the verifier.
//!
//! Production-shaped serving goes through the [`frontend`] module: a
//! bounded admission queue (with backpressure or load shedding) feeding
//! a fixed worker pool, with per-worker trace stripes, report-row
//! buffers, and latency buffers merged deterministically at drain.

pub mod backend;
pub mod frontend;
pub mod server;

pub use frontend::{Frontend, FrontendConfig, FrontendReport, ShedPolicy};
pub use server::{Server, ServerConfig};
