//! The server proper: request handling, report assembly, and the audit
//! bundle.
//!
//! [`Server::handle`] is thread-safe; the workload driver calls it from
//! as many client threads as it likes (each request runs to completion
//! on the calling thread, matching the model's one-thread-per-request
//! concurrency, §3.2). When the workload is drained,
//! [`Server::into_bundle`] assembles the trace and the four report types
//! and snapshots the final state that seeds the next audit period
//! (§4.1).

use crate::backend::RecordingBackend;
use orochi_common::ids::{CtlFlowTag, RequestId};
use orochi_common::rng::SplitMix64;
use orochi_core::nondet::NondetLog;
use orochi_core::reports::Reports;
use orochi_php::bytecode::CompiledScript;
use orochi_php::vm::{not_found_output, run_request, RequestInput};
use orochi_sqldb::{Database, SharedDatabase};
use orochi_state::kv::KvStore;
use orochi_state::recorder::Recorder;
use orochi_state::register::RegisterBank;
use orochi_trace::{Collector, HttpRequest, HttpResponse, Trace};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Server construction parameters.
pub struct ServerConfig {
    /// Routing table: script path -> compiled script.
    pub scripts: HashMap<String, CompiledScript>,
    /// Initial database contents (the verifier holds the same copy).
    pub initial_db: Database,
    /// Record reports (true) or run as the unmodified baseline (false).
    pub recording: bool,
    /// Seed for the server's random draws.
    pub seed: u64,
    /// Lock stripes for the shared KV store and register-bank
    /// directory; `0` picks the default. `1` is the single-lock
    /// reference configuration the striping tests compare against.
    pub state_shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            scripts: HashMap::new(),
            initial_db: Database::new(),
            recording: true,
            seed: 42,
            state_shards: 0,
        }
    }
}

/// State shared by all request threads.
pub struct ServerShared {
    /// Session registers.
    pub registers: RegisterBank,
    /// The APC-style key-value store.
    pub kv: KvStore,
    /// The SQL database (global-lock strict serializability).
    pub db: SharedDatabase,
    /// The record library's sub-log collector.
    pub recorder: Recorder,
    /// Virtual clock, in microseconds; strictly increasing.
    clock_us: AtomicI64,
    /// Random source for `mt_rand`.
    rng: Mutex<SplitMix64>,
}

impl ServerShared {
    /// Monotonic wall-clock seconds for `time()`.
    pub fn clock_seconds(&self) -> i64 {
        self.clock_micros() / 1_000_000
    }

    /// Monotonic microseconds for `microtime()`/`uniqid()`.
    pub fn clock_micros(&self) -> i64 {
        // Each call advances the clock so values are strictly
        // increasing — the §4.6 monotonicity check holds by
        // construction for an honest server.
        self.clock_us.fetch_add(7, Ordering::Relaxed)
    }

    /// One raw draw for `mt_rand`.
    pub fn draw_random(&self) -> i64 {
        (self.rng.lock().next_u64() >> 1) as i64
    }
}

/// Accumulated per-request report rows.
#[derive(Default)]
struct ReportRows {
    /// (rid, control-flow tag) pairs.
    tags: Vec<(RequestId, CtlFlowTag)>,
    /// Operation counts.
    op_counts: HashMap<RequestId, u32>,
    /// Nondeterminism, merged across requests.
    nondet: NondetLog,
}

/// Stripe count for the per-worker report-row buffers. Matches the
/// collector's stripe count so one worker index addresses both.
const ROW_STRIPES: usize = orochi_trace::COLLECTOR_STRIPES;

/// The online executor.
pub struct Server {
    shared: ServerShared,
    scripts: HashMap<String, CompiledScript>,
    collector: Collector,
    /// Report rows, striped per worker (merged deterministically at
    /// [`Server::into_bundle_with`]): request threads holding different
    /// stripe hints never contend on a global rows lock.
    rows: Box<[Mutex<ReportRows>]>,
    recording: bool,
    /// Total busy time across request handling (CPU-cost proxy for the
    /// Fig. 8 server-overhead comparison).
    busy_ns: AtomicU64,
    requests_handled: AtomicU64,
}

/// Everything the audit needs, as produced by a drained server.
pub struct AuditBundle {
    /// The collector's trace.
    pub trace: Trace,
    /// The assembled (untrusted) reports.
    pub reports: Reports,
    /// Final database state (seeds the next audit period).
    pub final_db: Database,
    /// Final register contents.
    pub final_registers: Vec<(String, Option<Vec<u8>>)>,
    /// Final key-value contents.
    pub final_kv: Vec<(String, Vec<u8>)>,
    /// Total request-handling busy time.
    pub busy: Duration,
    /// Requests handled.
    pub requests: u64,
}

impl Server {
    /// Builds a server.
    pub fn new(config: ServerConfig) -> Self {
        let shards = if config.state_shards == 0 {
            orochi_state::kv::DEFAULT_KV_SHARDS
        } else {
            config.state_shards
        };
        Server {
            shared: ServerShared {
                registers: RegisterBank::with_shards(shards),
                kv: KvStore::with_shards(shards),
                db: SharedDatabase::new(config.initial_db),
                recorder: Recorder::new(),
                clock_us: AtomicI64::new(1_700_000_000_000_000),
                rng: Mutex::new(SplitMix64::new(config.seed)),
            },
            scripts: config.scripts,
            collector: Collector::new(),
            rows: (0..ROW_STRIPES)
                .map(|_| Mutex::new(ReportRows::default()))
                .collect(),
            recording: config.recording,
            busy_ns: AtomicU64::new(0),
            requests_handled: AtomicU64::new(0),
        }
    }

    /// Handles one request end-to-end on the calling thread: records the
    /// arrival, executes the script, records the response. Thread-safe.
    /// The collector stripe and row buffer are keyed by the calling
    /// thread; fixed worker pools should prefer [`Server::handle_from`].
    pub fn handle(&self, req: HttpRequest) -> HttpResponse {
        self.handle_from(thread_stripe(), req)
    }

    /// [`Server::handle`] with an explicit worker index: the trace
    /// collector stripe and the report-row buffer are both keyed by
    /// `worker`, so a fixed pool's workers never share a buffer lock.
    /// Any `usize` is accepted (reduced modulo the stripe count).
    pub fn handle_from(&self, worker: usize, req: HttpRequest) -> HttpResponse {
        let t0 = Instant::now();
        let rid = self.collector.record_request_in(worker, req.clone());
        let response = self.execute(worker, rid, &req);
        self.collector
            .record_response_in(worker, rid, response.clone());
        self.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.requests_handled.fetch_add(1, Ordering::Relaxed);
        response
    }

    fn execute(&self, worker: usize, rid: RequestId, req: &HttpRequest) -> HttpResponse {
        let input = RequestInput {
            method: req.method.clone(),
            path: req.path.clone(),
            get: req.query.clone(),
            post: req.post.clone(),
            cookies: req.cookies.clone(),
        };
        let Some(script) = self.scripts.get(&req.path) else {
            let out = not_found_output(&req.path);
            // 404s still need a grouping tag and an (empty) op count.
            if self.recording {
                let mut rows = self.rows[worker % ROW_STRIPES].lock();
                rows.tags.push((
                    rid,
                    CtlFlowTag(orochi_php::vm::fnv1a(
                        format!("404:{}", req.path).as_bytes(),
                    )),
                ));
                rows.op_counts.insert(rid, 0);
            }
            return HttpResponse {
                rid_label: rid,
                status: out.status,
                headers: out.headers,
                body: out.body,
            };
        };
        let pid = thread_pid();
        let mut backend = RecordingBackend::new(&self.shared, rid, pid, self.recording);
        let result =
            run_request(script, &mut backend, &input).expect("the recording backend never rejects");
        if self.recording {
            let mut rows = self.rows[worker % ROW_STRIPES].lock();
            rows.tags.push((rid, CtlFlowTag(result.digest)));
            rows.op_counts.insert(rid, backend.op_count());
            for v in backend.take_nondet() {
                rows.nondet.push(rid, v);
            }
        }
        HttpResponse {
            rid_label: rid,
            status: result.output.status,
            headers: result.output.headers,
            body: result.output.body,
        }
    }

    /// Total request-handling busy time so far.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Requests handled so far.
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled.load(Ordering::Relaxed)
    }

    /// The record library's sub-log collector. Exposed so harnesses can
    /// measure report assembly (sequential vs sharded stitch) on a
    /// drained server before consuming it with [`Server::into_bundle`].
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Drains the server: stitches the sub-logs (§4.7), assembles the
    /// four report types, and snapshots the final object state. Report
    /// assembly is sharded by object across every available core; see
    /// [`Server::into_bundle_with`] for an explicit worker count.
    pub fn into_bundle(self) -> AuditBundle {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.into_bundle_with(threads)
    }

    /// [`Server::into_bundle`] with an explicit stitch worker count.
    /// The assembled bundle is byte-identical at every thread count
    /// (objects assign the sequence numbers; sharding only moves the
    /// clone-and-sort work), mirroring how the audit prologue shards its
    /// versioned-store builds.
    pub fn into_bundle_with(self, threads: usize) -> AuditBundle {
        // Merge the per-worker row stripes in stripe order. The merge is
        // deterministic regardless of which worker served which request:
        // groupings are re-sorted below, op counts are keyed by rid, and
        // each rid's nondet values live wholly in one stripe.
        let mut rows = ReportRows::default();
        for stripe in self.rows.into_vec() {
            let mut stripe = stripe.into_inner();
            rows.tags.append(&mut stripe.tags);
            rows.op_counts.extend(stripe.op_counts);
            rows.nondet.merge(stripe.nondet);
        }
        // Groupings: requests sharing a digest share a control-flow tag.
        let mut groups: HashMap<CtlFlowTag, Vec<RequestId>> = HashMap::new();
        for (rid, tag) in rows.tags {
            groups.entry(tag).or_default().push(rid);
        }
        let mut groupings: Vec<(CtlFlowTag, Vec<RequestId>)> = groups.into_iter().collect();
        groupings.sort_by_key(|(tag, _)| tag.0);
        for (_, rids) in groupings.iter_mut() {
            rids.sort();
        }
        let reports = Reports {
            groupings,
            op_logs: self.shared.recorder.stitch_with(threads),
            op_counts: rows.op_counts,
            nondet: rows.nondet,
        };
        let busy = Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed));
        let requests = self.requests_handled.load(Ordering::Relaxed);
        AuditBundle {
            trace: self.collector.into_trace(),
            reports,
            final_db: self.shared.db.with(|db| db.deep_clone()),
            final_registers: self.shared.registers.snapshot(),
            final_kv: self.shared.kv.snapshot(),
            busy,
            requests,
        }
    }
}

/// A stable per-thread "process id" for `getpid` (constant within a
/// request because one thread runs the whole request).
fn thread_pid() -> i64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    (h.finish() & 0x7fff_ffff) as i64
}

/// Stripe hint for callers without an explicit worker identity.
/// Collisions only cost lock sharing, never correctness: the collector
/// orders by ticket and the row merge is order-insensitive.
fn thread_stripe() -> usize {
    thread_pid() as usize % ROW_STRIPES
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_php::{compile, parse_script};
    use std::sync::Arc;

    fn script(src: &str) -> CompiledScript {
        compile("/t.php", &parse_script(src).unwrap()).unwrap()
    }

    fn server_with(src: &str) -> Server {
        let mut scripts = HashMap::new();
        scripts.insert("/t.php".to_string(), script(src));
        let mut db = Database::new();
        db.execute_autocommit("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)")
            .0
            .unwrap();
        Server::new(ServerConfig {
            scripts,
            initial_db: db,
            recording: true,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn handles_and_labels_responses() {
        let server = server_with("echo 'hi ' . $_GET['n'];");
        let resp = server.handle(HttpRequest::get("/t.php", &[("n", "1")]));
        assert_eq!(resp.body, "hi 1");
        assert_eq!(resp.status, 200);
        let bundle = server.into_bundle();
        assert_eq!(bundle.trace.events.len(), 2);
        assert_eq!(bundle.requests, 1);
        // Trace is balanced and the response is labeled.
        bundle.trace.ensure_balanced().unwrap();
    }

    #[test]
    fn unknown_path_yields_404() {
        let server = server_with("echo 1;");
        let resp = server.handle(HttpRequest::get("/missing.php", &[]));
        assert_eq!(resp.status, 404);
        let bundle = server.into_bundle();
        // 404s participate in groupings with zero ops.
        assert_eq!(bundle.reports.op_count(orochi_common::ids::RequestId(1)), 0);
        assert_eq!(bundle.reports.groupings.len(), 1);
    }

    #[test]
    fn groups_by_control_flow() {
        let server = server_with("if ($_GET['x'] == 1) { echo 'a'; } else { echo 'b'; }");
        for x in ["1", "1", "2", "3"] {
            server.handle(HttpRequest::get("/t.php", &[("x", x)]));
        }
        let bundle = server.into_bundle();
        // Two control flows: x==1 (2 requests) and else (2 requests).
        assert_eq!(bundle.reports.groupings.len(), 2);
        let mut sizes: Vec<usize> = bundle
            .reports
            .groupings
            .iter()
            .map(|(_, r)| r.len())
            .collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn records_db_ops_and_counts() {
        let server = server_with(
            "db_query(\"INSERT INTO t (v) VALUES ('x')\");
             $rows = db_query('SELECT id, v FROM t');
             echo count($rows);",
        );
        server.handle(HttpRequest::get("/t.php", &[]));
        let bundle = server.into_bundle();
        assert_eq!(bundle.reports.total_ops(), 2);
        assert_eq!(bundle.reports.op_count(orochi_common::ids::RequestId(1)), 2);
        assert_eq!(bundle.final_db.row_count("t"), Some(1));
    }

    #[test]
    fn records_sessions_and_nondet() {
        let server = server_with(
            "session_start();
             $_SESSION['n'] = intval($_SESSION['n']) + 1;
             echo $_SESSION['n'], ':', time();",
        );
        let req = HttpRequest::get("/t.php", &[]).with_cookie("sess", "alice");
        let r1 = server.handle(req.clone());
        let r2 = server.handle(req);
        assert!(r1.body.starts_with("1:"));
        assert!(r2.body.starts_with("2:"));
        let bundle = server.into_bundle();
        // Each request: session read + session write = 2 register ops.
        assert_eq!(bundle.reports.total_ops(), 4);
        assert_eq!(bundle.reports.nondet.total(), 2);
        bundle.reports.nondet.validate().unwrap();
    }

    #[test]
    fn concurrent_requests_stay_consistent() {
        let mut scripts = HashMap::new();
        scripts.insert(
            "/t.php".to_string(),
            script(
                "db_begin();
                 $r = db_query('SELECT v FROM c WHERE id = 1');
                 $v = intval($r[0]['v']);
                 db_query('UPDATE c SET v = ' . ($v + 1) . ' WHERE id = 1');
                 db_commit();
                 echo 'ok';",
            ),
        );
        let mut db = Database::new();
        db.execute_autocommit("CREATE TABLE c (id INT PRIMARY KEY, v INT)")
            .0
            .unwrap();
        db.execute_autocommit("INSERT INTO c (id, v) VALUES (1, 0)")
            .0
            .unwrap();
        let server = Arc::new(Server::new(ServerConfig {
            scripts,
            initial_db: db,
            recording: true,
            seed: 1,
            ..Default::default()
        }));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let resp = server.handle(HttpRequest::get("/t.php", &[]));
                    assert_eq!(resp.body, "ok");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let server = Arc::try_unwrap(server).ok().expect("all threads joined");
        let bundle = server.into_bundle();
        // Read-modify-write under strict serializability: final count is
        // exactly 80.
        let mut final_db = bundle.final_db;
        let (r, _) = final_db.execute_autocommit("SELECT v FROM c WHERE id = 1");
        match r.unwrap() {
            orochi_sqldb::ExecOutcome::Rows { rows, .. } => {
                assert_eq!(rows[0][0], orochi_sqldb::SqlValue::Int(80));
            }
            other => panic!("expected rows, got {other:?}"),
        }
        bundle.trace.ensure_balanced().unwrap();
        assert_eq!(bundle.reports.total_ops(), 80);
    }

    #[test]
    fn baseline_mode_records_nothing() {
        let mut scripts = HashMap::new();
        scripts.insert(
            "/t.php".to_string(),
            script("session_start(); $_SESSION['x'] = 1; echo time();"),
        );
        let server = Server::new(ServerConfig {
            scripts,
            initial_db: Database::new(),
            recording: false,
            seed: 9,
            ..Default::default()
        });
        server.handle(HttpRequest::get("/t.php", &[]).with_cookie("sess", "u"));
        let bundle = server.into_bundle();
        assert_eq!(bundle.reports.total_ops(), 0);
        assert!(bundle.reports.groupings.is_empty());
        assert_eq!(bundle.reports.nondet.total(), 0);
        // The trace is still collected (the collector is trusted and
        // separate from the reports).
        assert_eq!(bundle.trace.events.len(), 2);
    }

    #[test]
    fn failed_autocommit_is_logged_as_unsucceeded() {
        let server = server_with(
            "$ok = db_query('INSERT INTO t (id, v) VALUES (1, ' . \"'a'\" . ')');
             $dup = db_query('INSERT INTO t (id, v) VALUES (1, ' . \"'b'\" . ')');
             echo $ok ? 'y' : 'n', $dup ? 'y' : 'n';",
        );
        let resp = server.handle(HttpRequest::get("/t.php", &[]));
        assert_eq!(resp.body, "yn");
        let bundle = server.into_bundle();
        let log = bundle.reports.op_logs.log(0).unwrap();
        assert_eq!(log.len(), 2);
        match &log.entries()[1].contents {
            orochi_state::object::OpContents::DbOp { succeeded, .. } => {
                assert!(!succeeded);
            }
            other => panic!("expected DbOp, got {other:?}"),
        }
    }

    #[test]
    fn sharded_assembly_matches_sequential() {
        // The same request stream served twice must assemble identical
        // reports whether the stitch runs sequentially or sharded.
        let run = |threads: usize| {
            let server = server_with(
                "session_start();
                 $_SESSION['n'] = intval($_SESSION['n']) + 1;
                 apc_store('k' . $_GET['i'], strval($_SESSION['n']));
                 $v = apc_fetch('k' . $_GET['i']);
                 db_query(\"INSERT INTO t (v) VALUES ('x')\");
                 echo $v;",
            );
            for i in 0..20 {
                let who = format!("u{}", i % 4);
                server.handle(
                    HttpRequest::get("/t.php", &[("i", &(i % 6).to_string())])
                        .with_cookie("sess", &who),
                );
            }
            server.into_bundle_with(threads)
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq.reports.op_logs, par.reports.op_logs);
        assert_eq!(seq.reports.op_counts, par.reports.op_counts);
    }

    #[test]
    fn clock_is_strictly_increasing() {
        let server = server_with("echo microtime() < microtime() ? 'up' : 'down';");
        let resp = server.handle(HttpRequest::get("/t.php", &[]));
        assert_eq!(resp.body, "up");
    }
}
