//! The serving front-end: a bounded admission queue feeding a fixed
//! worker pool.
//!
//! The online executor's concurrency model is one thread per request
//! (§3.2), but a production deployment does not spawn a thread per
//! arriving connection — it admits requests into a queue and serves
//! them from a fixed pool. [`Frontend`] is that spine, shared by every
//! serving mode in the harness:
//!
//! * **closed-loop** serving submits requests with backpressure
//!   ([`ShedPolicy::Block`]): a full queue stalls the submitter, never
//!   drops work;
//! * **open-loop** serving submits requests at their scheduled arrival
//!   times and may configure load shedding ([`ShedPolicy::Shed`]): when
//!   the bounded queue is full the request is refused at admission — it
//!   never reaches the collector, so the trace stays balanced and the
//!   audit is unaffected (a shed request is one the middlebox never saw
//!   enter the executor).
//!
//! Each worker owns its latency buffer and drives [`Server::handle_from`]
//! with its worker index, so the per-worker collector stripes and
//! report-row buffers never contend. [`Frontend::drain`] closes the
//! queue, joins the pool, and merges the per-worker buffers in worker
//! order — deterministic regardless of scheduling.

use crate::server::Server;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use orochi_obs::{HistogramSnapshot, LazyCounter, LazyGauge, LazyHistogram};
use orochi_trace::HttpRequest;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Requests admitted into the queue (counters are always on; see the
/// overhead contract in `orochi_obs`).
static ADMITTED: LazyCounter = LazyCounter::new("frontend_admitted_total");
/// Requests refused at admission under [`ShedPolicy::Shed`].
static SHED: LazyCounter = LazyCounter::new("frontend_shed_total");
/// Requests the pool finished serving.
static SERVED: LazyCounter = LazyCounter::new("frontend_served_total");
/// Instantaneous admission-queue depth (admitted − picked up).
static QUEUE_DEPTH: LazyGauge = LazyGauge::new("frontend_queue_depth");
/// Enqueue→pickup wait (clock-bearing: only recorded when telemetry
/// is enabled).
static ADMISSION_WAIT_NS: LazyHistogram = LazyHistogram::new("frontend_admission_wait_ns");

/// What to do when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Block the submitter until a slot frees (backpressure).
    Block,
    /// Refuse the request at admission (load shedding).
    Shed,
}

/// Front-end construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Worker threads serving the queue (at least 1).
    pub workers: usize,
    /// Admission-queue depth; `0` = unbounded (shedding never fires).
    pub queue_depth: usize,
    /// Full-queue policy; irrelevant when the queue is unbounded.
    pub shed: ShedPolicy,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            workers: 4,
            queue_depth: 0,
            shed: ShedPolicy::Block,
        }
    }
}

struct Job {
    req: HttpRequest,
    /// Scheduled arrival time; latency is measured from here (queueing
    /// included). `None` for closed-loop submissions.
    scheduled: Option<Instant>,
    /// Admission timestamp, set only when telemetry is enabled; feeds
    /// the `frontend_admission_wait_ns` histogram at pickup.
    enqueued: Option<Instant>,
}

/// Per-worker buffers, merged at drain.
struct WorkerLog {
    latencies: Vec<f64>,
    latency_us: HistogramSnapshot,
    handled: u64,
}

/// A drained front-end: the server plus everything the pool measured.
pub struct FrontendReport {
    /// The drained server (all workers joined).
    pub server: Server,
    /// Per-request latencies in milliseconds (scheduled submissions
    /// only), merged in worker order.
    pub latencies: Vec<f64>,
    /// Requests handled by the pool.
    pub handled: u64,
    /// Requests refused at admission (full queue under
    /// [`ShedPolicy::Shed`]).
    pub shed: u64,
    /// Scheduled-submission latency distribution in microseconds — a
    /// per-run log2 histogram merged across workers, so consumers
    /// (e.g. the saturation experiment) can read percentiles without
    /// re-sorting the raw latency vector.
    pub latency: HistogramSnapshot,
}

/// The bounded worker pool wrapping a [`Server`].
pub struct Frontend {
    server: Arc<Server>,
    tx: Sender<Job>,
    workers: Vec<JoinHandle<WorkerLog>>,
    shed_policy: ShedPolicy,
    bounded: bool,
    shed: AtomicU64,
}

impl Frontend {
    /// Starts the worker pool around `server`.
    pub fn start(server: Server, config: FrontendConfig) -> Self {
        let server = Arc::new(server);
        let (tx, rx) = if config.queue_depth == 0 {
            channel::unbounded::<Job>()
        } else {
            channel::bounded::<Job>(config.queue_depth)
        };
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let server = Arc::clone(&server);
                let rx: Receiver<Job> = rx.clone();
                std::thread::spawn(move || {
                    let mut log = WorkerLog {
                        latencies: Vec::new(),
                        latency_us: HistogramSnapshot::new(),
                        handled: 0,
                    };
                    // Lane and per-worker service histogram are resolved
                    // once per worker; the lane is only materialized when
                    // telemetry is on so disabled runs export no lanes.
                    let lane = orochi_obs::enabled()
                        .then(|| orochi_obs::journal::lane(&format!("serve-worker-{w}")));
                    let service_ns = orochi_obs::registry::histogram_owned(&format!(
                        "frontend_worker{w}_service_ns"
                    ));
                    while let Ok(job) = rx.recv() {
                        QUEUE_DEPTH.sub(1);
                        if let Some(enqueued) = job.enqueued {
                            ADMISSION_WAIT_NS.record_duration(enqueued.elapsed());
                        }
                        let span =
                            lane.and_then(|l| orochi_obs::span_timed(l, "serve", service_ns));
                        server.handle_from(w, job.req);
                        drop(span);
                        SERVED.inc();
                        if let Some(scheduled) = job.scheduled {
                            let elapsed = scheduled.elapsed();
                            log.latencies.push(elapsed.as_secs_f64() * 1000.0);
                            log.latency_us.record(elapsed.as_micros() as u64);
                        }
                        log.handled += 1;
                    }
                    log
                })
            })
            .collect();
        Frontend {
            server,
            tx,
            workers,
            shed_policy: config.shed,
            bounded: config.queue_depth > 0,
            shed: AtomicU64::new(0),
        }
    }

    /// Submits a request for eventual service. Returns `true` if the
    /// request was admitted; `false` if it was shed (bounded queue full
    /// under [`ShedPolicy::Shed`]). Under [`ShedPolicy::Block`] this
    /// blocks until a queue slot frees and always admits.
    pub fn submit(&self, req: HttpRequest) -> bool {
        self.enqueue(Job {
            req,
            scheduled: None,
            enqueued: None,
        })
    }

    /// [`Frontend::submit`] for an open-loop arrival: latency is
    /// measured from `scheduled` (queueing included).
    pub fn submit_at(&self, req: HttpRequest, scheduled: Instant) -> bool {
        self.enqueue(Job {
            req,
            scheduled: Some(scheduled),
            enqueued: None,
        })
    }

    fn enqueue(&self, mut job: Job) -> bool {
        if orochi_obs::enabled() {
            job.enqueued = Some(Instant::now());
        }
        let admitted = if self.bounded && self.shed_policy == ShedPolicy::Shed {
            match self.tx.try_send(job) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    SHED.inc();
                    false
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("front-end workers exited while accepting submissions")
                }
            }
        } else if self.tx.send(job).is_err() {
            panic!("front-end workers exited while accepting submissions")
        } else {
            true
        };
        if admitted {
            ADMITTED.inc();
            QUEUE_DEPTH.add(1);
        }
        admitted
    }

    /// The wrapped server (for busy-time or request counters mid-run).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Requests shed so far.
    pub fn shed_so_far(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Closes the queue, serves everything already admitted, joins the
    /// pool, and merges the per-worker buffers (worker order, so the
    /// result is independent of scheduling).
    pub fn drain(self) -> FrontendReport {
        let Frontend {
            server,
            tx,
            workers,
            shed,
            ..
        } = self;
        drop(tx);
        let mut latencies = Vec::new();
        let mut latency = HistogramSnapshot::new();
        let mut handled = 0u64;
        for handle in workers {
            let mut log = handle.join().expect("front-end worker panicked");
            latencies.append(&mut log.latencies);
            latency.merge(&log.latency_us);
            handled += log.handled;
        }
        let server = Arc::try_unwrap(server)
            .ok()
            .expect("all front-end workers joined");
        // Everything admitted has now been served and recorded: the
        // serve-side trace is sealed from the auditor's perspective.
        orochi_obs::lag::mark_sealed();
        FrontendReport {
            server,
            latencies,
            handled,
            shed: shed.into_inner(),
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use orochi_php::{compile, parse_script};
    use orochi_sqldb::Database;
    use std::collections::HashMap;

    fn counting_server() -> Server {
        let mut scripts = HashMap::new();
        scripts.insert(
            "/t.php".to_string(),
            compile(
                "/t.php",
                &parse_script("apc_store('k' . $_GET['i'], '1'); echo 'ok';").unwrap(),
            )
            .unwrap(),
        );
        Server::new(ServerConfig {
            scripts,
            initial_db: Database::new(),
            ..Default::default()
        })
    }

    fn req(i: usize) -> HttpRequest {
        HttpRequest::get("/t.php", &[("i", &i.to_string())])
    }

    #[test]
    fn block_policy_serves_everything() {
        let fe = Frontend::start(
            counting_server(),
            FrontendConfig {
                workers: 3,
                queue_depth: 2,
                shed: ShedPolicy::Block,
            },
        );
        for i in 0..40 {
            assert!(fe.submit(req(i)));
        }
        let report = fe.drain();
        assert_eq!(report.handled, 40);
        assert_eq!(report.shed, 0);
        assert!(report.latencies.is_empty(), "closed-loop: no schedule");
        let bundle = report.server.into_bundle();
        assert_eq!(bundle.requests, 40);
        bundle.trace.ensure_balanced().unwrap();
    }

    #[test]
    fn shed_policy_refuses_at_admission_and_accounts() {
        // One worker, depth-1 queue, and a burst far faster than the
        // worker can drain: some requests must be shed, and every shed
        // request is invisible to the collector (balanced trace).
        let fe = Frontend::start(
            counting_server(),
            FrontendConfig {
                workers: 1,
                queue_depth: 1,
                shed: ShedPolicy::Shed,
            },
        );
        let mut admitted = 0u64;
        for i in 0..200 {
            if fe.submit_at(req(i), Instant::now()) {
                admitted += 1;
            }
        }
        let report = fe.drain();
        assert_eq!(report.handled, admitted);
        assert_eq!(report.shed, 200 - admitted);
        assert_eq!(report.latencies.len(), admitted as usize);
        let bundle = report.server.into_bundle();
        assert_eq!(bundle.requests, admitted);
        bundle.trace.ensure_balanced().unwrap();
    }

    #[test]
    fn scheduled_submissions_measure_latency() {
        let fe = Frontend::start(
            counting_server(),
            FrontendConfig {
                workers: 2,
                queue_depth: 0,
                shed: ShedPolicy::Block,
            },
        );
        let t0 = Instant::now();
        for i in 0..10 {
            assert!(fe.submit_at(req(i), t0));
        }
        let report = fe.drain();
        assert_eq!(report.latencies.len(), 10);
        assert!(report.latencies.iter().all(|&l| l >= 0.0));
        // The per-run histogram sees exactly the scheduled submissions
        // and its percentile bounds bracket the exact percentile.
        assert_eq!(report.latency.count, 10);
        let exact_ms = orochi_common::metrics::percentile(&report.latencies, 99.0).unwrap();
        let (lo_us, hi_us) = report.latency.quantile_bounds(99.0).unwrap();
        let exact_us = exact_ms * 1000.0;
        assert!(
            lo_us as f64 <= exact_us.ceil() && exact_us.floor() <= hi_us as f64 + 1.0,
            "p99 {exact_us}us outside bucket [{lo_us}, {hi_us}]"
        );
    }

    #[test]
    fn shed_counter_reaches_registry() {
        let before = orochi_obs::registry::counter("frontend_shed_total").get();
        let fe = Frontend::start(
            counting_server(),
            FrontendConfig {
                workers: 1,
                queue_depth: 1,
                shed: ShedPolicy::Shed,
            },
        );
        for i in 0..200 {
            fe.submit_at(req(i), Instant::now());
        }
        let report = fe.drain();
        let after = orochi_obs::registry::counter("frontend_shed_total").get();
        // Other tests share the process-global registry, so assert a
        // delta lower bound rather than an exact value.
        assert!(after - before >= report.shed);
    }
}
