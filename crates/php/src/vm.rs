//! The scalar VM: executes compiled scripts one request at a time.
//!
//! The primary engine is a **register VM**: fixed-width 32-bit
//! instructions with explicit source/destination register operands (see
//! [`crate::bytecode::ROp`]), a flat pooled register file shared by all
//! frames (a call's window starts where the caller's ends, so calls
//! allocate nothing on the hot path), and literal/global/builtin
//! references resolved to dense table indices at compile time. The
//! previous stack-bytecode interpreter survives as [`stack`] — the
//! differential oracle for property tests and the `--engine stack`
//! baseline in benchmarks.
//!
//! Both engines maintain the **control-flow digest** (§4.3): at every
//! conditional branch and iteration step, the digest absorbs the
//! per-request *branch-event ordinal* and the direction taken, so
//! requests with identical digests followed identical control-flow
//! paths. Mixing the event ordinal (not the program counter) keeps
//! digests identical across the two encodings: the compiler emits
//! digest-mixed events in the same evaluation order in both.
//!
//! PHP semantics implemented here (arithmetic overflow to float, `/`
//! returning int only for exact integer division, string offsets, array
//! copy-on-write) are shared with the multivalue VM via
//! [`crate::builtins`] and the ops in this module's `ops` submodule.

use crate::backend::{BackendError, RuntimeBackend};
use crate::builtins::{self, Host};
use crate::bytecode::{rinsn, CompiledScript, Op, ROp};
use crate::value::{ArrayKey, PhpArray, Value};
use orochi_common::codec::Wire;
use std::fmt;
use std::sync::Arc;

pub mod stack;

/// The session cookie name every application uses.
pub const SESSION_COOKIE: &str = "sess";

/// Runtime failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A fatal PHP error: the request answers with a 500 page. The
    /// message is deterministic, so the verifier reproduces it exactly.
    Fatal(String),
    /// The verifier-side backend rejected an operation; the audit fails.
    AuditReject(String),
    /// `exit` / `die`: normal termination.
    Exit,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Fatal(m) => write!(f, "fatal error: {m}"),
            VmError::AuditReject(m) => write!(f, "audit rejection: {m}"),
            VmError::Exit => write!(f, "exit"),
        }
    }
}

impl From<BackendError> for VmError {
    fn from(e: BackendError) -> Self {
        match e {
            BackendError::AuditReject(m) => VmError::AuditReject(m),
            BackendError::Fatal(m) => VmError::Fatal(m),
        }
    }
}

/// The request as the runtime sees it (decoupled from `orochi-trace`).
#[derive(Debug, Clone, Default)]
pub struct RequestInput {
    /// HTTP method.
    pub method: String,
    /// Script path.
    pub path: String,
    /// `$_GET`.
    pub get: Vec<(String, String)>,
    /// `$_POST`.
    pub post: Vec<(String, String)>,
    /// `$_COOKIE`.
    pub cookies: Vec<(String, String)>,
}

impl RequestInput {
    /// The session cookie value, if the client sent one.
    pub fn session_cookie(&self) -> Option<&str> {
        self.cookies
            .iter()
            .find(|(k, _)| k == SESSION_COOKIE)
            .map(|(_, v)| v.as_str())
    }
}

/// What the runtime produced for a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutput {
    /// HTTP status (200 unless set; 500 on fatal error).
    pub status: u16,
    /// Headers added by the program.
    pub headers: Vec<(String, String)>,
    /// The page body.
    pub body: String,
}

/// Execution counters (feed Figs. 10 and 11).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Instructions executed (dispatch count of the engine that ran).
    pub instructions: u64,
}

/// Result of running one request.
#[derive(Debug)]
pub struct RunResult {
    /// The response content.
    pub output: RequestOutput,
    /// The control-flow digest (the server's grouping tag, §4.3).
    pub digest: u64,
    /// Execution counters.
    pub stats: ExecStats,
}

/// FNV-1a over bytes; used to seed the digest with the script path.
/// Re-exported from [`orochi_common::hash`] (one canonical definition).
pub use orochi_common::hash::fnv1a;

/// Mixes one branch decision into a digest. `event` is the per-request
/// branch-event ordinal (0, 1, 2, …), not a program counter: both
/// bytecode encodings emit the same event sequence, so the digest is
/// engine-independent.
#[inline]
pub fn digest_mix(digest: u64, event: u64, taken: bool) -> u64 {
    (digest ^ ((event << 1) | taken as u64)).wrapping_mul(orochi_common::hash::FNV_PRIME)
}

/// Which function a frame executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FnRef {
    Main,
    User(u16),
}

/// An active foreach iterator (snapshot semantics).
#[derive(Debug)]
struct ArrayIter {
    pairs: Vec<(ArrayKey, Value)>,
    pos: usize,
}

/// A pooled activation record. Frames are reused across calls (`depth`
/// tracks the live prefix of `Vm::frames`), so the iterator vector's
/// capacity survives pops.
#[derive(Debug)]
struct RFrame {
    func: FnRef,
    pc: usize,
    /// First register of this frame's window in the flat file.
    base: usize,
    /// One past the window (`base + register_count`): the callee base.
    top: usize,
    /// Absolute register that receives this frame's return value.
    ret_abs: usize,
    iters: Vec<ArrayIter>,
}

/// The scalar register virtual machine.
pub struct Vm<'a> {
    script: &'a CompiledScript,
    backend: &'a mut dyn RuntimeBackend,
    pub(crate) globals: Vec<Value>,
    /// The flat register file; frame windows are disjoint slices.
    regs: Vec<Value>,
    frames: Vec<RFrame>,
    /// Live frames (`frames[..depth]`); the rest are pooled for reuse.
    depth: usize,
    /// Scratch buffer for builtin argument marshalling (reused).
    args_buf: Vec<Value>,
    pub(crate) output: String,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) status: u16,
    digest: u64,
    branch_events: u64,
    pub(crate) session_started: bool,
    session_cookie: Option<String>,
    pub(crate) last_insert_id: i64,
    pub(crate) last_affected: i64,
    stats: ExecStats,
    step_limit: u64,
}

/// Runs one request through a compiled script (register engine).
///
/// On a fatal error the result is a deterministic 500 response — the
/// online server and the verifier produce the identical page. An
/// audit-side rejection (only possible with a checking backend) is
/// returned as `Err`.
///
/// # Examples
///
/// ```
/// use orochi_php::backend::NullBackend;
/// use orochi_php::vm::{run_request, RequestInput};
/// use orochi_php::{compile, parse_script};
///
/// let script = compile(
///     "/hello.php",
///     &parse_script("<?php echo 'hello ' . $_GET['who'];").unwrap(),
/// )
/// .unwrap();
/// let mut backend = NullBackend;
/// let input = RequestInput {
///     method: "GET".into(),
///     path: "/hello.php".into(),
///     get: vec![("who".into(), "world".into())],
///     ..Default::default()
/// };
/// let result = run_request(&script, &mut backend, &input).unwrap();
/// assert_eq!(result.output.body, "hello world");
/// assert_eq!(result.output.status, 200);
/// ```
pub fn run_request(
    script: &CompiledScript,
    backend: &mut dyn RuntimeBackend,
    input: &RequestInput,
) -> Result<RunResult, String> {
    let mut vm = Vm::new(script, backend, input);
    let outcome = vm.run_main();
    match outcome {
        Ok(()) | Err(VmError::Exit) => {
            // End-of-request hook: leaked transactions become a
            // deterministic fatal on both the server and the verifier.
            if let Err(e) = vm.backend.end_of_request() {
                match VmError::from(e) {
                    VmError::AuditReject(m) => return Err(m),
                    VmError::Fatal(m) => return Ok(vm.into_fatal_result(m)),
                    VmError::Exit => unreachable!("end_of_request cannot exit"),
                }
            }
            // Normal completion: persist the session if one was started.
            if let Err(e) = vm.write_session_back() {
                match e {
                    VmError::AuditReject(m) => return Err(m),
                    VmError::Fatal(m) => return Ok(vm.into_fatal_result(m)),
                    VmError::Exit => unreachable!("session write cannot exit"),
                }
            }
            Ok(RunResult {
                output: RequestOutput {
                    status: vm.status,
                    headers: vm.headers.clone(),
                    body: std::mem::take(&mut vm.output),
                },
                digest: vm.digest,
                stats: vm.stats,
            })
        }
        Err(VmError::Fatal(m)) => Ok(vm.into_fatal_result(m)),
        Err(VmError::AuditReject(m)) => Err(m),
    }
}

/// Builds the initial globals table for a request (shared by both
/// engines).
fn init_globals(script: &CompiledScript, input: &RequestInput) -> Vec<Value> {
    let mut globals = vec![Value::Null; script.global_names.len()];
    globals[0] = pairs_to_array(&input.get);
    globals[1] = pairs_to_array(&input.post);
    globals[2] = pairs_to_array(&input.cookies);
    globals[3] = Value::empty_array(); // $_SESSION until session_start.
    let mut server = PhpArray::new();
    server.set(
        ArrayKey::Str("REQUEST_METHOD".into()),
        Value::str(input.method.clone()),
    );
    server.set(
        ArrayKey::Str("SCRIPT_NAME".into()),
        Value::str(input.path.clone()),
    );
    globals[4] = Value::array(server);
    globals
}

impl<'a> Vm<'a> {
    fn new(
        script: &'a CompiledScript,
        backend: &'a mut dyn RuntimeBackend,
        input: &RequestInput,
    ) -> Self {
        Vm {
            script,
            backend,
            globals: init_globals(script, input),
            regs: Vec::new(),
            frames: Vec::new(),
            depth: 0,
            args_buf: Vec::new(),
            output: String::new(),
            headers: Vec::new(),
            status: 200,
            digest: fnv1a(script.path.as_bytes()),
            branch_events: 0,
            session_started: false,
            session_cookie: input.session_cookie().map(str::to_string),
            last_insert_id: 0,
            last_affected: 0,
            stats: ExecStats::default(),
            step_limit: 200_000_000,
        }
    }

    fn into_fatal_result(mut self, message: String) -> RunResult {
        RunResult {
            output: RequestOutput {
                status: 500,
                headers: Vec::new(),
                body: format!("Fatal error: {message}"),
            },
            digest: self.digest,
            stats: std::mem::take(&mut self.stats),
        }
    }

    fn write_session_back(&mut self) -> Result<(), VmError> {
        if !self.session_started {
            return Ok(());
        }
        let Some(cookie) = self.session_cookie.clone() else {
            return Ok(());
        };
        let bytes = self.globals[3].to_wire_bytes();
        self.backend
            .register_write(&format!("reg:sess:{cookie}"), bytes)?;
        Ok(())
    }

    fn run_main(&mut self) -> Result<(), VmError> {
        let top = self.script.main.register_count as usize;
        self.regs.resize(top, Value::Null);
        self.push_frame(FnRef::Main, 0, top, 0);
        self.interp()
    }

    /// Activates a frame, reusing a pooled record when one is available.
    fn push_frame(&mut self, func: FnRef, base: usize, top: usize, ret_abs: usize) {
        if self.depth == self.frames.len() {
            self.frames.push(RFrame {
                func,
                pc: 0,
                base,
                top,
                ret_abs,
                iters: Vec::new(),
            });
        } else {
            let f = &mut self.frames[self.depth];
            f.func = func;
            f.pc = 0;
            f.base = base;
            f.top = top;
            f.ret_abs = ret_abs;
            f.iters.clear();
        }
        self.depth += 1;
    }

    fn interp(&mut self) -> Result<(), VmError> {
        loop {
            if self.stats.instructions >= self.step_limit {
                return Err(VmError::Fatal("execution step limit exceeded".into()));
            }
            self.stats.instructions += 1;
            let fi = self.depth - 1;
            let (func, base) = {
                let f = &self.frames[fi];
                (f.func, f.base)
            };
            let code = match func {
                FnRef::Main => &self.script.main.reg_code,
                FnRef::User(i) => &self.script.functions[i as usize].reg_code,
            };
            let pc = self.frames[fi].pc;
            let insn = code[pc];
            self.frames[fi].pc = pc + 1;
            let a = base + rinsn::a(insn);
            match rinsn::op(insn) {
                ROp::Move => {
                    let b = base + rinsn::b(insn);
                    self.regs[a] = self.regs[b].clone();
                }
                ROp::LoadConst => {
                    self.regs[a] = self.script.consts[rinsn::bx(insn)].clone();
                }
                ROp::LoadGlobal => {
                    self.regs[a] = self.globals[rinsn::b(insn)].clone();
                }
                ROp::StoreGlobal => {
                    // A-field is the global slot for stores.
                    let b = base + rinsn::b(insn);
                    self.globals[rinsn::a(insn)] = self.regs[b].clone();
                }
                ROp::Add | ROp::Sub | ROp::Mul | ROp::Div | ROp::Mod | ROp::Concat => {
                    let b = base + rinsn::b(insn);
                    let c = base + rinsn::c(insn);
                    let sop = scalar_binop(rinsn::op(insn));
                    self.regs[a] = ops::binary(sop, &self.regs[b], &self.regs[c])?;
                }
                ROp::Eq => {
                    let r = self.regs[base + rinsn::b(insn)]
                        .loose_eq(&self.regs[base + rinsn::c(insn)]);
                    self.regs[a] = Value::Bool(r);
                }
                ROp::Ne => {
                    let r = self.regs[base + rinsn::b(insn)]
                        .loose_eq(&self.regs[base + rinsn::c(insn)]);
                    self.regs[a] = Value::Bool(!r);
                }
                ROp::Identical => {
                    let r = self.regs[base + rinsn::b(insn)]
                        .identical(&self.regs[base + rinsn::c(insn)]);
                    self.regs[a] = Value::Bool(r);
                }
                ROp::NotIdentical => {
                    let r = self.regs[base + rinsn::b(insn)]
                        .identical(&self.regs[base + rinsn::c(insn)]);
                    self.regs[a] = Value::Bool(!r);
                }
                ROp::Lt | ROp::Le | ROp::Gt | ROp::Ge => {
                    let sop = scalar_binop(rinsn::op(insn));
                    let r = ops::relational(
                        sop,
                        &self.regs[base + rinsn::b(insn)],
                        &self.regs[base + rinsn::c(insn)],
                    );
                    self.regs[a] = Value::Bool(r);
                }
                ROp::Not => {
                    let r = !self.regs[base + rinsn::b(insn)].is_truthy();
                    self.regs[a] = Value::Bool(r);
                }
                ROp::Neg => {
                    self.regs[a] = ops::negate(&self.regs[base + rinsn::b(insn)])?;
                }
                ROp::Jump => {
                    self.frames[fi].pc = rinsn::bx(insn);
                }
                ROp::JumpIfFalse => {
                    let taken = !self.regs[a].is_truthy();
                    self.digest = digest_mix(self.digest, self.branch_events, taken);
                    self.branch_events += 1;
                    if taken {
                        self.frames[fi].pc = rinsn::bx(insn);
                    }
                }
                ROp::JumpIfTrue => {
                    let taken = self.regs[a].is_truthy();
                    self.digest = digest_mix(self.digest, self.branch_events, taken);
                    self.branch_events += 1;
                    if taken {
                        self.frames[fi].pc = rinsn::bx(insn);
                    }
                }
                ROp::NewArray => {
                    self.regs[a] = Value::empty_array();
                }
                ROp::ArrayAppend => {
                    let arr = std::mem::replace(&mut self.regs[a], Value::Null);
                    let v = self.regs[base + rinsn::b(insn)].clone();
                    self.regs[a] = ops::array_append(arr, v)?;
                }
                ROp::ArrayInsert => {
                    let arr = std::mem::replace(&mut self.regs[a], Value::Null);
                    let v = self.regs[base + rinsn::c(insn)].clone();
                    let r = ops::array_insert(arr, &self.regs[base + rinsn::b(insn)], v)?;
                    self.regs[a] = r;
                }
                ROp::IndexGet => {
                    let r = ops::index_get(
                        &self.regs[base + rinsn::b(insn)],
                        &self.regs[base + rinsn::c(insn)],
                    );
                    self.regs[a] = r;
                }
                ROp::SetPathLocal => {
                    let n = rinsn::c(insn);
                    let value = self.regs[a].clone();
                    let t = base + rinsn::b(insn);
                    // Locals sit below temps, so the target register is
                    // strictly below the value/key block.
                    let (lo, hi) = self.regs.split_at_mut(a + 1);
                    ops::set_path(&mut lo[t], &hi[..n], value)?;
                }
                ROp::SetPathGlobal => {
                    let n = rinsn::c(insn);
                    let value = self.regs[a].clone();
                    let slot = rinsn::b(insn);
                    ops::set_path(&mut self.globals[slot], &self.regs[a + 1..a + 1 + n], value)?;
                }
                ROp::AppendPathLocal => {
                    let n = rinsn::c(insn);
                    let value = self.regs[a].clone();
                    let t = base + rinsn::b(insn);
                    let (lo, hi) = self.regs.split_at_mut(a + 1);
                    ops::append_path(&mut lo[t], &hi[..n - 1], value)?;
                }
                ROp::AppendPathGlobal => {
                    let n = rinsn::c(insn);
                    let value = self.regs[a].clone();
                    let slot = rinsn::b(insn);
                    ops::append_path(&mut self.globals[slot], &self.regs[a + 1..a + n], value)?;
                }
                ROp::UnsetPathLocal => {
                    let n = rinsn::c(insn);
                    let t = base + rinsn::b(insn);
                    if n == 0 {
                        ops::unset_path(&mut self.regs[t], &[]);
                    } else {
                        let (lo, hi) = self.regs.split_at_mut(a);
                        ops::unset_path(&mut lo[t], &hi[..n]);
                    }
                }
                ROp::UnsetPathGlobal => {
                    let n = rinsn::c(insn);
                    let slot = rinsn::b(insn);
                    ops::unset_path(&mut self.globals[slot], &self.regs[a..a + n]);
                }
                ROp::IssetPathLocal => {
                    let n = rinsn::c(insn);
                    let t = base + rinsn::b(insn);
                    let r = ops::isset_path(&self.regs[t], &self.regs[a..a + n]);
                    self.regs[a] = Value::Bool(r);
                }
                ROp::IssetPathGlobal => {
                    let n = rinsn::c(insn);
                    let slot = rinsn::b(insn);
                    let r = ops::isset_path(&self.globals[slot], &self.regs[a..a + n]);
                    self.regs[a] = Value::Bool(r);
                }
                ROp::IncDecLocal => {
                    let t = base + rinsn::b(insn);
                    let sop = incdec_variant(rinsn::c(insn));
                    let r = ops::incdec(&mut self.regs[t], sop)?;
                    self.regs[a] = r;
                }
                ROp::IncDecGlobal => {
                    let slot = rinsn::b(insn);
                    let sop = incdec_variant(rinsn::c(insn));
                    let r = ops::incdec(&mut self.globals[slot], sop)?;
                    self.regs[a] = r;
                }
                ROp::Call => {
                    let fidx = rinsn::a(insn) as u16;
                    let func = &self.script.functions[fidx as usize];
                    let argc = rinsn::c(insn);
                    let args_abs = base + rinsn::b(insn);
                    let callee_base = self.frames[fi].top;
                    let callee_top = callee_base + func.register_count as usize;
                    if self.regs.len() < callee_top {
                        self.regs.resize(callee_top, Value::Null);
                    }
                    let num_params = func.num_params as usize;
                    // Move args into the callee window (they are dead
                    // temps in the caller); extras are dropped like the
                    // stack engine does.
                    for i in 0..argc {
                        let v = std::mem::replace(&mut self.regs[args_abs + i], Value::Null);
                        if i < num_params {
                            self.regs[callee_base + i] = v;
                        }
                    }
                    for p in argc..num_params {
                        match func.defaults[p] {
                            Some(cidx) => {
                                self.regs[callee_base + p] =
                                    self.script.consts[cidx as usize].clone()
                            }
                            None => {
                                return Err(VmError::Fatal(format!(
                                    "too few arguments to function {}()",
                                    func.name
                                )))
                            }
                        }
                    }
                    if self.depth >= 200 {
                        return Err(VmError::Fatal("call stack depth exceeded".into()));
                    }
                    // Clear the rest of the (pooled) window so stale
                    // values from earlier activations never leak in.
                    for r in &mut self.regs[callee_base + num_params..callee_top] {
                        *r = Value::Null;
                    }
                    self.push_frame(FnRef::User(fidx), callee_base, callee_top, args_abs);
                }
                ROp::CallBuiltin => {
                    let bidx = rinsn::a(insn) as u16;
                    let argc = rinsn::c(insn);
                    let abs = base + rinsn::b(insn);
                    if builtins::is_byref(bidx) {
                        let (new_target, ret) =
                            builtins::dispatch_byref(bidx, &mut self.regs[abs..abs + argc])?;
                        self.regs[abs] = new_target;
                        self.regs[abs + 1] = ret;
                    } else {
                        let mut buf = std::mem::take(&mut self.args_buf);
                        buf.clear();
                        for i in 0..argc {
                            buf.push(std::mem::replace(&mut self.regs[abs + i], Value::Null));
                        }
                        let ret = builtins::dispatch(bidx, &buf, self);
                        self.args_buf = buf;
                        self.regs[abs] = ret?;
                    }
                }
                ROp::Return => {
                    let value = std::mem::replace(&mut self.regs[a], Value::Null);
                    let ret_abs = self.frames[fi].ret_abs;
                    self.depth -= 1;
                    if self.depth == 0 {
                        return Ok(());
                    }
                    self.regs[ret_abs] = value;
                }
                ROp::ReturnNull => {
                    let ret_abs = self.frames[fi].ret_abs;
                    self.depth -= 1;
                    if self.depth == 0 {
                        return Ok(());
                    }
                    self.regs[ret_abs] = Value::Null;
                }
                ROp::Echo => {
                    let s = self.regs[a].to_php_string();
                    self.output.push_str(&s);
                }
                ROp::IterInit => {
                    let pairs = match &self.regs[a] {
                        Value::Array(arr) => arr.to_pairs(),
                        // PHP warns and skips the loop for non-arrays.
                        _ => Vec::new(),
                    };
                    self.frames[fi].iters.push(ArrayIter { pairs, pos: 0 });
                }
                ROp::IterNext | ROp::IterNextKV => {
                    let kv = rinsn::op(insn) == ROp::IterNextKV;
                    let frame = &mut self.frames[fi];
                    let iter = frame.iters.last_mut().expect("IterInit precedes IterNext");
                    if iter.pos < iter.pairs.len() {
                        let (k, v) = iter.pairs[iter.pos].clone();
                        iter.pos += 1;
                        self.digest = digest_mix(self.digest, self.branch_events, true);
                        self.branch_events += 1;
                        if kv {
                            self.regs[a] = k.to_value();
                            self.regs[a + 1] = v;
                        } else {
                            self.regs[a] = v;
                        }
                    } else {
                        frame.pc = rinsn::bx(insn);
                        self.digest = digest_mix(self.digest, self.branch_events, false);
                        self.branch_events += 1;
                    }
                }
                ROp::IterPop => {
                    self.frames[fi].iters.pop();
                }
            }
        }
    }
}

/// Maps a register opcode to the scalar-op selector shared with the
/// stack engine (`ops::binary` / `ops::relational` match on `Op`).
fn scalar_binop(op: ROp) -> Op {
    match op {
        ROp::Add => Op::Add,
        ROp::Sub => Op::Sub,
        ROp::Mul => Op::Mul,
        ROp::Div => Op::Div,
        ROp::Mod => Op::Mod,
        ROp::Concat => Op::Concat,
        ROp::Lt => Op::Lt,
        ROp::Le => Op::Le,
        ROp::Gt => Op::Gt,
        ROp::Ge => Op::Ge,
        other => unreachable!("not a shared scalar op: {other:?}"),
    }
}

/// Maps the IncDec variant operand to the scalar-op selector.
fn incdec_variant(c: usize) -> Op {
    match c {
        0 => Op::PreIncLocal(0),
        1 => Op::PostIncLocal(0),
        2 => Op::PreDecLocal(0),
        _ => Op::PostDecLocal(0),
    }
}

impl Host for Vm<'_> {
    fn echo(&mut self, s: &str) {
        self.output.push_str(s);
    }

    fn add_header(&mut self, name: String, value: String) {
        self.headers.push((name, value));
    }

    fn set_status(&mut self, code: u16) {
        self.status = code;
    }

    fn session_start(&mut self) -> Result<(), VmError> {
        if self.session_started {
            return Ok(());
        }
        self.session_started = true;
        let Some(cookie) = self.session_cookie.clone() else {
            self.globals[3] = Value::empty_array();
            return Ok(());
        };
        let bytes = self.backend.register_read(&format!("reg:sess:{cookie}"))?;
        self.globals[3] = match bytes {
            Some(b) => Value::from_wire_bytes(&b)
                .map_err(|_| VmError::Fatal("corrupt session data".into()))?,
            None => Value::empty_array(),
        };
        Ok(())
    }

    fn kv_get(&mut self, key: &str) -> Result<Value, VmError> {
        let bytes = self.backend.kv_get("kv:apc", key)?;
        Ok(match bytes {
            Some(b) => {
                Value::from_wire_bytes(&b).map_err(|_| VmError::Fatal("corrupt apc data".into()))?
            }
            None => Value::Bool(false),
        })
    }

    fn kv_set(&mut self, key: &str, value: Option<&Value>) -> Result<(), VmError> {
        let bytes = value.map(|v| v.to_wire_bytes());
        self.backend.kv_set("kv:apc", key, bytes)?;
        Ok(())
    }

    fn db_begin(&mut self) -> Result<(), VmError> {
        self.backend.db_begin("db:main")?;
        Ok(())
    }

    fn db_query(&mut self, sql: &str) -> Result<Value, VmError> {
        let result = self.backend.db_query("db:main", sql)?;
        Ok(builtins::db_result_to_value(
            result,
            &mut self.last_insert_id,
            &mut self.last_affected,
        ))
    }

    fn db_commit(&mut self) -> Result<bool, VmError> {
        Ok(self.backend.db_commit("db:main")?)
    }

    fn db_rollback(&mut self) -> Result<(), VmError> {
        self.backend.db_rollback("db:main")?;
        Ok(())
    }

    fn db_insert_id(&mut self) -> i64 {
        self.last_insert_id
    }

    fn db_affected_rows(&mut self) -> i64 {
        self.last_affected
    }

    fn nd_time(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.time()?)
    }

    fn nd_microtime(&mut self) -> Result<f64, VmError> {
        Ok(self.backend.microtime()?)
    }

    fn nd_getpid(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.getpid()?)
    }

    fn nd_rand_raw(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.mt_rand()?)
    }

    fn nd_uniqid(&mut self) -> Result<String, VmError> {
        Ok(self.backend.uniqid()?)
    }
}

/// The deterministic 404 page for unrouted paths; the online server and
/// the verifier share it so output comparison is meaningful.
pub fn not_found_output(path: &str) -> RequestOutput {
    RequestOutput {
        status: 404,
        headers: Vec::new(),
        body: format!("Not Found: {path}"),
    }
}

/// Builds a PHP assoc array from string pairs (superglobal
/// materialization, §4.2).
pub fn pairs_to_array(pairs: &[(String, String)]) -> Value {
    let mut a = PhpArray::new();
    for (k, v) in pairs {
        a.set(
            ArrayKey::from_value(&Value::str(k.clone())),
            Value::str(v.clone()),
        );
    }
    Value::array(a)
}

/// Shared scalar operation semantics, used by both engines and the
/// multivalue VM (which applies them per lane).
pub mod ops {
    use super::*;

    /// Binary arithmetic/string ops with PHP coercions.
    pub fn binary(op: Op, a: &Value, b: &Value) -> Result<Value, VmError> {
        match op {
            Op::Concat => {
                let mut s = a.to_php_string();
                s.push_str(&b.to_php_string());
                Ok(Value::str(s))
            }
            Op::Add | Op::Sub | Op::Mul => {
                if let (Value::Array(_), _) | (_, Value::Array(_)) = (a, b) {
                    return Err(VmError::Fatal("unsupported operand types: array".into()));
                }
                match (int_view(a), int_view(b)) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            Op::Add => x.checked_add(y),
                            Op::Sub => x.checked_sub(y),
                            Op::Mul => x.checked_mul(y),
                            _ => unreachable!("arith subset"),
                        };
                        Ok(match r {
                            Some(v) => Value::Int(v),
                            // PHP overflows int arithmetic into float.
                            None => {
                                let (x, y) = (x as f64, y as f64);
                                Value::Float(match op {
                                    Op::Add => x + y,
                                    Op::Sub => x - y,
                                    Op::Mul => x * y,
                                    _ => unreachable!("arith subset"),
                                })
                            }
                        })
                    }
                    _ => {
                        let (x, y) = (a.to_php_float(), b.to_php_float());
                        Ok(Value::Float(match op {
                            Op::Add => x + y,
                            Op::Sub => x - y,
                            Op::Mul => x * y,
                            _ => unreachable!("arith subset"),
                        }))
                    }
                }
            }
            Op::Div => {
                if b.to_php_float() == 0.0 {
                    return Err(VmError::Fatal("division by zero".into()));
                }
                match (int_view(a), int_view(b)) {
                    (Some(x), Some(y)) if x % y == 0 => Ok(Value::Int(x / y)),
                    _ => Ok(Value::Float(a.to_php_float() / b.to_php_float())),
                }
            }
            Op::Mod => {
                let y = b.to_php_int();
                if y == 0 {
                    return Err(VmError::Fatal("modulo by zero".into()));
                }
                Ok(Value::Int(a.to_php_int() % y))
            }
            other => unreachable!("not a binary op: {other:?}"),
        }
    }

    /// `<`, `<=`, `>`, `>=` (incomparable pairs yield false).
    pub fn relational(op: Op, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        match a.loose_cmp(b) {
            None => false,
            Some(ord) => match op {
                Op::Lt => ord == Less,
                Op::Le => ord != Greater,
                Op::Gt => ord == Greater,
                Op::Ge => ord != Less,
                other => unreachable!("not relational: {other:?}"),
            },
        }
    }

    /// Unary minus.
    pub fn negate(v: &Value) -> Result<Value, VmError> {
        match v {
            Value::Int(i) => Ok(match i.checked_neg() {
                Some(n) => Value::Int(n),
                None => Value::Float(-(*i as f64)),
            }),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Array(_) => Err(VmError::Fatal("cannot negate array".into())),
            other => Ok(match int_view(other) {
                Some(i) => Value::Int(-i),
                None => Value::Float(-other.to_php_float()),
            }),
        }
    }

    /// Integer view used by arithmetic: ints, bools, and null (0).
    fn int_view(v: &Value) -> Option<i64> {
        match v {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            Value::Null => Some(0),
            Value::Str(s) => {
                // Fully-integer strings act as ints in arithmetic.
                let t = s.trim();
                t.parse::<i64>().ok()
            }
            _ => None,
        }
    }

    /// `++`/`--` on a storage slot (PHP: `null++` is 1, `null--` stays
    /// null).
    pub fn incdec(slot: &mut Value, op: Op) -> Result<Value, VmError> {
        let inc = matches!(
            op,
            Op::PreIncLocal(_) | Op::PostIncLocal(_) | Op::PreIncGlobal(_) | Op::PostIncGlobal(_)
        );
        let pre = matches!(
            op,
            Op::PreIncLocal(_) | Op::PreDecLocal(_) | Op::PreIncGlobal(_) | Op::PreDecGlobal(_)
        );
        let old = slot.clone();
        let new = match (&old, inc) {
            (Value::Null, true) => Value::Int(1),
            (Value::Null, false) => Value::Null,
            _ => binary(if inc { Op::Add } else { Op::Sub }, &old, &Value::Int(1))?,
        };
        *slot = new.clone();
        Ok(if pre { new } else { old })
    }

    /// `$a[] = v` on a stack value (array literals).
    pub fn array_append(arr: Value, v: Value) -> Result<Value, VmError> {
        match arr {
            Value::Array(mut rc) => {
                Arc::make_mut(&mut rc).push(v);
                Ok(Value::Array(rc))
            }
            _ => Err(VmError::Fatal("append to non-array".into())),
        }
    }

    /// `$a[k] = v` on a stack value (array literals).
    pub fn array_insert(arr: Value, k: &Value, v: Value) -> Result<Value, VmError> {
        match arr {
            Value::Array(mut rc) => {
                Arc::make_mut(&mut rc).set(ArrayKey::from_value(k), v);
                Ok(Value::Array(rc))
            }
            _ => Err(VmError::Fatal("insert into non-array".into())),
        }
    }

    /// Index read: arrays by key, strings by offset; anything else (or a
    /// missing key) yields null, as PHP does (sans the notice).
    pub fn index_get(base: &Value, key: &Value) -> Value {
        match base {
            Value::Array(a) => a
                .get(&ArrayKey::from_value(key))
                .cloned()
                .unwrap_or(Value::Null),
            Value::Str(s) => {
                let idx = key.to_php_int();
                if idx < 0 {
                    let n = s.chars().count() as i64;
                    let idx = n + idx;
                    if idx < 0 {
                        return Value::str("");
                    }
                    return Value::str(
                        s.chars()
                            .nth(idx as usize)
                            .map(|c| c.to_string())
                            .unwrap_or_default(),
                    );
                }
                Value::str(
                    s.chars()
                        .nth(idx as usize)
                        .map(|c| c.to_string())
                        .unwrap_or_default(),
                )
            }
            _ => Value::Null,
        }
    }

    /// Writes through an index path, materializing arrays along the way.
    pub fn set_path(container: &mut Value, keys: &[Value], value: Value) -> Result<(), VmError> {
        if keys.is_empty() {
            *container = value;
            return Ok(());
        }
        ensure_array(container)?;
        let Value::Array(rc) = container else {
            unreachable!("ensure_array above");
        };
        let arr = Arc::make_mut(rc);
        let key = ArrayKey::from_value(&keys[0]);
        if keys.len() == 1 {
            arr.set(key, value);
            return Ok(());
        }
        if !arr.has_key(&key) {
            arr.set(key.clone(), Value::Null);
        }
        let slot = arr.get_mut(&key).expect("inserted above");
        set_path(slot, &keys[1..], value)
    }

    /// Appends through an index path (`$a[k1]..[] = v`).
    pub fn append_path(container: &mut Value, keys: &[Value], value: Value) -> Result<(), VmError> {
        ensure_array(container)?;
        let Value::Array(rc) = container else {
            unreachable!("ensure_array above");
        };
        let arr = Arc::make_mut(rc);
        if keys.is_empty() {
            arr.push(value);
            return Ok(());
        }
        let key = ArrayKey::from_value(&keys[0]);
        if !arr.has_key(&key) {
            arr.set(key.clone(), Value::Null);
        }
        let slot = arr.get_mut(&key).expect("inserted above");
        append_path(slot, &keys[1..], value)
    }

    /// Unsets through an index path; missing steps are no-ops.
    pub fn unset_path(container: &mut Value, keys: &[Value]) {
        if keys.is_empty() {
            *container = Value::Null;
            return;
        }
        let Value::Array(rc) = container else {
            return;
        };
        let arr = Arc::make_mut(rc);
        let key = ArrayKey::from_value(&keys[0]);
        if keys.len() == 1 {
            arr.remove(&key);
            return;
        }
        if let Some(slot) = arr.get_mut(&key) {
            unset_path(slot, &keys[1..]);
        }
    }

    /// `isset` through an index path: every step must exist and the
    /// final value must not be null.
    pub fn isset_path(container: &Value, keys: &[Value]) -> bool {
        let mut cur = container;
        for k in keys {
            match cur {
                Value::Array(a) => match a.get(&ArrayKey::from_value(k)) {
                    Some(v) => cur = v,
                    None => return false,
                },
                Value::Str(s) => {
                    // isset($s[i]) on strings: offset in range.
                    let idx = k.to_php_int();
                    return idx >= 0 && (idx as usize) < s.chars().count();
                }
                _ => return false,
            }
        }
        !matches!(cur, Value::Null)
    }

    fn ensure_array(container: &mut Value) -> Result<(), VmError> {
        match container {
            Value::Array(_) => Ok(()),
            Value::Null => {
                *container = Value::empty_array();
                Ok(())
            }
            // PHP also auto-vivifies "" into an array historically;
            // modern PHP errors. We error, deterministically.
            other => Err(VmError::Fatal(format!(
                "cannot use {} as array",
                other.type_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NullBackend;
    use crate::compiler::compile;
    use crate::parser::parse_script;

    /// Runs a source snippet through BOTH engines and asserts they agree
    /// on output and digest — every VM test doubles as a differential
    /// check on the register encoding.
    fn run_both(src: &str, get: &[(&str, &str)]) -> RunResult {
        let script = compile("/t.php", &parse_script(src).unwrap()).unwrap();
        let input = RequestInput {
            method: "GET".into(),
            path: "/t.php".into(),
            get: get
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            ..Default::default()
        };
        let mut b1 = NullBackend;
        let reg = run_request(&script, &mut b1, &input).unwrap();
        let mut b2 = NullBackend;
        let stk = stack::run_request(&script, &mut b2, &input).unwrap();
        assert_eq!(reg.output, stk.output, "engines disagree on output");
        assert_eq!(reg.digest, stk.digest, "engines disagree on digest");
        reg
    }

    fn run(src: &str) -> String {
        run_with(src, &[])
    }

    fn run_with(src: &str, get: &[(&str, &str)]) -> String {
        run_both(src, get).output.body
    }

    #[test]
    fn arithmetic_and_echo() {
        assert_eq!(run("echo 1 + 2 * 3;"), "7");
        assert_eq!(run("echo 7 / 2;"), "3.5");
        assert_eq!(run("echo 6 / 2;"), "3");
        assert_eq!(run("echo 7 % 3;"), "1");
        assert_eq!(run("echo 'a' . 'b' . 3;"), "ab3");
        assert_eq!(run("echo -5 + 2;"), "-3");
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(run("$x = 4; $x += 2; echo $x;"), "6");
        assert_eq!(run("$s = 'a'; $s .= 'b'; echo $s;"), "ab");
        // Assignment is an expression.
        assert_eq!(run("$a = $b = 3; echo $a + $b;"), "6");
    }

    #[test]
    fn superglobals_materialized() {
        assert_eq!(
            run_with("echo $_GET['x'] + $_GET['y'];", &[("x", "1"), ("y", "3")]),
            "4"
        );
    }

    #[test]
    fn if_else_chains() {
        let src = "$x = 5;
            if ($x > 10) { echo 'big'; }
            elseif ($x > 3) { echo 'mid'; }
            else { echo 'small'; }";
        assert_eq!(run(src), "mid");
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(run("$i = 0; while ($i < 3) { echo $i; $i++; }"), "012");
        assert_eq!(run("for ($i = 0; $i < 4; $i++) { echo $i; }"), "0123");
        assert_eq!(
            run("for ($i = 0; $i < 5; $i++) { if ($i == 2) { continue; } if ($i == 4) { break; } echo $i; }"),
            "013"
        );
    }

    #[test]
    fn foreach_value_and_kv() {
        assert_eq!(run("foreach ([3, 4, 5] as $v) { echo $v; }"), "345");
        assert_eq!(
            run("foreach (['a' => 1, 'b' => 2] as $k => $v) { echo $k, $v; }"),
            "a1b2"
        );
        // Snapshot semantics: mutation inside the loop is invisible.
        assert_eq!(
            run("$a = [1, 2]; foreach ($a as $v) { $a[] = 9; echo $v; }"),
            "12"
        );
    }

    #[test]
    fn switch_fallthrough_and_default() {
        let src = "function f($x) {
            switch ($x) {
                case 1: return 'one';
                case 2:
                case 3: return 'few';
                default: return 'many';
            }
        }
        echo f(1), f(2), f(3), f(9);";
        assert_eq!(run(src), "onefewfewmany");
    }

    #[test]
    fn functions_defaults_and_recursion() {
        assert_eq!(
            run("function inc($x, $by = 1) { return $x + $by; } echo inc(1), inc(1, 5);"),
            "26"
        );
        assert_eq!(
            run("function fib($n) { if ($n < 2) { return $n; } return fib($n-1) + fib($n-2); } echo fib(10);"),
            "55"
        );
    }

    #[test]
    fn globals_visible_with_declaration() {
        let src = "$counter = 10;
            function bump() { global $counter; $counter++; return $counter; }
            echo bump(); echo bump(); echo $counter;";
        assert_eq!(run(src), "111212");
    }

    #[test]
    fn locals_do_not_leak() {
        let src = "$x = 'global';
            function f() { $x = 'local'; return $x; }
            echo f(), $x;";
        assert_eq!(run(src), "localglobal");
    }

    #[test]
    fn arrays_nested_paths() {
        let src = "$a = [];
            $a['u']['name'] = 'dana';
            $a['u']['n'] = 2;
            $a['u']['n'] += 3;
            $a['list'][] = 'x';
            $a['list'][] = 'y';
            echo $a['u']['name'], $a['u']['n'], count($a['list']);";
        assert_eq!(run(src), "dana52");
    }

    #[test]
    fn isset_and_unset() {
        let src = "$a = ['k' => 1, 'n' => null];
            echo isset($a['k']) ? 'y' : 'n';
            echo isset($a['n']) ? 'y' : 'n';
            echo isset($a['z']) ? 'y' : 'n';
            unset($a['k']);
            echo isset($a['k']) ? 'y' : 'n';
            echo isset($undefined) ? 'y' : 'n';";
        assert_eq!(run(src), "ynnnn");
    }

    #[test]
    fn ternary_and_elvis() {
        assert_eq!(run("echo 1 ? 'a' : 'b';"), "a");
        assert_eq!(run("echo 0 ?: 'dflt';"), "dflt");
        assert_eq!(run("echo 'v' ?: 'dflt';"), "v");
    }

    #[test]
    fn short_circuit_evaluation() {
        // The second operand must not run (division by zero would be
        // fatal).
        assert_eq!(run("echo (false && 1 / 0) ? 'y' : 'n';"), "n");
        assert_eq!(run("echo (true || 1 / 0) ? 'y' : 'n';"), "y");
    }

    #[test]
    fn string_indexing() {
        assert_eq!(run("$s = 'abc'; echo $s[1];"), "b");
        assert_eq!(run("$s = 'abc'; echo $s[-1];"), "c");
    }

    #[test]
    fn byref_builtins_through_both_engines() {
        assert_eq!(
            run("$a = [3, 1, 2]; sort($a); echo $a[0], $a[1], $a[2];"),
            "123"
        );
        assert_eq!(
            run("$a = []; array_push($a, 5, 6); echo count($a), array_pop($a);"),
            "26"
        );
        assert_eq!(
            run("$m = []; $m['row']['cells'] = [2, 1]; sort($m['row']['cells']); echo $m['row']['cells'][0];"),
            "1"
        );
    }

    #[test]
    fn fatal_errors_produce_500() {
        let script = compile("/t.php", &parse_script("echo 1 / 0;").unwrap()).unwrap();
        let input = RequestInput {
            path: "/t.php".into(),
            ..Default::default()
        };
        for runner in [run_request, stack::run_request] {
            let mut b = NullBackend;
            let result = runner(&script, &mut b, &input).unwrap();
            assert_eq!(result.output.status, 500);
            assert!(result.output.body.contains("division by zero"));
        }
    }

    #[test]
    fn digest_distinguishes_control_flow() {
        let script = compile(
            "/t.php",
            &parse_script("if ($_GET['x'] == 1) { echo 'a'; } else { echo 'b'; }").unwrap(),
        )
        .unwrap();
        let run_digest = |x: &str| {
            let input = RequestInput {
                path: "/t.php".into(),
                get: vec![("x".into(), x.into())],
                ..Default::default()
            };
            let mut b = NullBackend;
            run_request(&script, &mut b, &input).unwrap().digest
        };
        assert_eq!(run_digest("1"), run_digest("1"));
        assert_ne!(run_digest("1"), run_digest("2"));
        // Same path, different data: same digest.
        assert_eq!(run_digest("2"), run_digest("3"));
    }

    #[test]
    fn digest_depends_on_loop_count() {
        let script = compile(
            "/t.php",
            &parse_script("for ($i = 0; $i < intval($_GET['n']); $i++) { echo $i; }").unwrap(),
        )
        .unwrap();
        let run_digest = |n: &str| {
            let mut b = NullBackend;
            run_request(
                &script,
                &mut b,
                &RequestInput {
                    path: "/t.php".into(),
                    get: vec![("n".into(), n.into())],
                    ..Default::default()
                },
            )
            .unwrap()
            .digest
        };
        assert_ne!(run_digest("2"), run_digest("3"));
        assert_eq!(run_digest("3"), run_digest("3"));
    }

    #[test]
    fn overflow_promotes_to_float() {
        assert_eq!(
            run("echo 9223372036854775807 + 1 > 0 ? 'pos' : 'neg';"),
            "pos"
        );
    }

    #[test]
    fn incdec_semantics() {
        assert_eq!(run("$i = 1; echo $i++; echo $i; echo ++$i;"), "123");
        assert_eq!(run("echo $undef++; echo $undef;"), "1"); // null++ -> "" then 1.
        assert_eq!(run("$a = ['n' => 1]; $a['n']++; echo $a['n'];"), "2");
        assert_eq!(run("$a = []; echo $a['k']--; echo $a['k'];"), "-1");
    }

    #[test]
    fn stack_depth_guard() {
        let out = run("function f() { return f(); } echo f();");
        // Comes back as a deterministic fatal-error page body.
        assert!(out.is_empty() || !out.contains("55"));
    }

    #[test]
    fn register_windows_pool_across_calls() {
        // Deep call chains + loops stress window reuse; both engines
        // must still agree (checked inside run_both).
        let src = "function leaf($x) { $t = $x * 2; return $t; }
            function mid($x) { $acc = 0; for ($i = 0; $i < 3; $i++) { $acc += leaf($x + $i); } return $acc; }
            $sum = 0;
            for ($j = 0; $j < 4; $j++) { $sum += mid($j); }
            echo $sum;";
        assert_eq!(run(src), "60");
    }

    #[test]
    fn disassembler_renders_register_code() {
        let script = compile(
            "/t.php",
            &parse_script("$x = 1; if ($x) { echo $x + 2; }").unwrap(),
        )
        .unwrap();
        let text = crate::bytecode::disasm(&script.main.reg_code);
        assert!(text.contains("JumpIfFalse"));
        assert!(text.contains("Echo"));
        assert!(!script.main.reg_code.is_empty());
        assert!(script.main.register_count >= 1);
    }
}
