//! The scalar VM: executes compiled scripts one request at a time.
//!
//! This is the runtime the online server uses (with a recording backend)
//! and the verifier's per-request fallback path. It maintains the
//! **control-flow digest** (§4.3): at every conditional branch, switch
//! dispatch, and iteration step, the digest absorbs the program counter
//! and the direction taken, so requests with identical digests followed
//! identical control-flow paths.
//!
//! PHP semantics implemented here (arithmetic overflow to float, `/`
//! returning int only for exact integer division, string offsets, array
//! copy-on-write) are shared with the multivalue VM via
//! [`crate::builtins`] and the ops in this module's `ops` submodule.

use crate::backend::{BackendError, RuntimeBackend};
use crate::builtins::{self, Host};
use crate::bytecode::{CompiledFunction, CompiledScript, Op};
use crate::value::{ArrayKey, PhpArray, Value};
use orochi_common::codec::Wire;
use std::fmt;
use std::sync::Arc;

/// The session cookie name every application uses.
pub const SESSION_COOKIE: &str = "sess";

/// Runtime failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A fatal PHP error: the request answers with a 500 page. The
    /// message is deterministic, so the verifier reproduces it exactly.
    Fatal(String),
    /// The verifier-side backend rejected an operation; the audit fails.
    AuditReject(String),
    /// `exit` / `die`: normal termination.
    Exit,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Fatal(m) => write!(f, "fatal error: {m}"),
            VmError::AuditReject(m) => write!(f, "audit rejection: {m}"),
            VmError::Exit => write!(f, "exit"),
        }
    }
}

impl From<BackendError> for VmError {
    fn from(e: BackendError) -> Self {
        match e {
            BackendError::AuditReject(m) => VmError::AuditReject(m),
            BackendError::Fatal(m) => VmError::Fatal(m),
        }
    }
}

/// The request as the runtime sees it (decoupled from `orochi-trace`).
#[derive(Debug, Clone, Default)]
pub struct RequestInput {
    /// HTTP method.
    pub method: String,
    /// Script path.
    pub path: String,
    /// `$_GET`.
    pub get: Vec<(String, String)>,
    /// `$_POST`.
    pub post: Vec<(String, String)>,
    /// `$_COOKIE`.
    pub cookies: Vec<(String, String)>,
}

impl RequestInput {
    /// The session cookie value, if the client sent one.
    pub fn session_cookie(&self) -> Option<&str> {
        self.cookies
            .iter()
            .find(|(k, _)| k == SESSION_COOKIE)
            .map(|(_, v)| v.as_str())
    }
}

/// What the runtime produced for a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutput {
    /// HTTP status (200 unless set; 500 on fatal error).
    pub status: u16,
    /// Headers added by the program.
    pub headers: Vec<(String, String)>,
    /// The page body.
    pub body: String,
}

/// Execution counters (feed Figs. 10 and 11).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
}

/// Result of running one request.
#[derive(Debug)]
pub struct RunResult {
    /// The response content.
    pub output: RequestOutput,
    /// The control-flow digest (the server's grouping tag, §4.3).
    pub digest: u64,
    /// Execution counters.
    pub stats: ExecStats,
}

/// FNV-1a over bytes; used to seed the digest with the script path.
/// Re-exported from [`orochi_common::hash`] (one canonical definition).
pub use orochi_common::hash::fnv1a;

/// Mixes one branch decision into a digest.
#[inline]
pub fn digest_mix(digest: u64, pc: u32, taken: bool) -> u64 {
    (digest ^ ((pc as u64) << 1 | taken as u64)).wrapping_mul(orochi_common::hash::FNV_PRIME)
}

/// Which function a frame executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FnRef {
    Main,
    User(u16),
}

/// An active foreach iterator (snapshot semantics).
#[derive(Debug)]
struct ArrayIter {
    pairs: Vec<(ArrayKey, Value)>,
    pos: usize,
}

#[derive(Debug)]
struct Frame {
    func: FnRef,
    pc: usize,
    locals: Vec<Value>,
    iters: Vec<ArrayIter>,
    stack_base: usize,
}

/// The scalar virtual machine.
pub struct Vm<'a> {
    script: &'a CompiledScript,
    backend: &'a mut dyn RuntimeBackend,
    pub(crate) globals: Vec<Value>,
    stack: Vec<Value>,
    frames: Vec<Frame>,
    pub(crate) output: String,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) status: u16,
    digest: u64,
    pub(crate) session_started: bool,
    session_cookie: Option<String>,
    pub(crate) last_insert_id: i64,
    pub(crate) last_affected: i64,
    stats: ExecStats,
    step_limit: u64,
}

/// Runs one request through a compiled script.
///
/// On a fatal error the result is a deterministic 500 response — the
/// online server and the verifier produce the identical page. An
/// audit-side rejection (only possible with a checking backend) is
/// returned as `Err`.
///
/// # Examples
///
/// ```
/// use orochi_php::backend::NullBackend;
/// use orochi_php::vm::{run_request, RequestInput};
/// use orochi_php::{compile, parse_script};
///
/// let script = compile(
///     "/hello.php",
///     &parse_script("<?php echo 'hello ' . $_GET['who'];").unwrap(),
/// )
/// .unwrap();
/// let mut backend = NullBackend;
/// let input = RequestInput {
///     method: "GET".into(),
///     path: "/hello.php".into(),
///     get: vec![("who".into(), "world".into())],
///     ..Default::default()
/// };
/// let result = run_request(&script, &mut backend, &input).unwrap();
/// assert_eq!(result.output.body, "hello world");
/// assert_eq!(result.output.status, 200);
/// ```
pub fn run_request(
    script: &CompiledScript,
    backend: &mut dyn RuntimeBackend,
    input: &RequestInput,
) -> Result<RunResult, String> {
    let mut vm = Vm::new(script, backend, input);
    let outcome = vm.run_main();
    match outcome {
        Ok(()) | Err(VmError::Exit) => {
            // End-of-request hook: leaked transactions become a
            // deterministic fatal on both the server and the verifier.
            if let Err(e) = vm.backend.end_of_request() {
                match VmError::from(e) {
                    VmError::AuditReject(m) => return Err(m),
                    VmError::Fatal(m) => return Ok(vm.into_fatal_result(m)),
                    VmError::Exit => unreachable!("end_of_request cannot exit"),
                }
            }
            // Normal completion: persist the session if one was started.
            if let Err(e) = vm.write_session_back() {
                match e {
                    VmError::AuditReject(m) => return Err(m),
                    VmError::Fatal(m) => return Ok(vm.into_fatal_result(m)),
                    VmError::Exit => unreachable!("session write cannot exit"),
                }
            }
            Ok(RunResult {
                output: RequestOutput {
                    status: vm.status,
                    headers: vm.headers.clone(),
                    body: std::mem::take(&mut vm.output),
                },
                digest: vm.digest,
                stats: vm.stats,
            })
        }
        Err(VmError::Fatal(m)) => Ok(vm.into_fatal_result(m)),
        Err(VmError::AuditReject(m)) => Err(m),
    }
}

impl<'a> Vm<'a> {
    fn new(
        script: &'a CompiledScript,
        backend: &'a mut dyn RuntimeBackend,
        input: &RequestInput,
    ) -> Self {
        let mut globals = vec![Value::Null; script.global_names.len()];
        globals[0] = pairs_to_array(&input.get);
        globals[1] = pairs_to_array(&input.post);
        globals[2] = pairs_to_array(&input.cookies);
        globals[3] = Value::empty_array(); // $_SESSION until session_start.
        let mut server = PhpArray::new();
        server.set(
            ArrayKey::Str("REQUEST_METHOD".into()),
            Value::str(input.method.clone()),
        );
        server.set(
            ArrayKey::Str("SCRIPT_NAME".into()),
            Value::str(input.path.clone()),
        );
        globals[4] = Value::array(server);
        Vm {
            script,
            backend,
            globals,
            stack: Vec::with_capacity(64),
            frames: Vec::new(),
            output: String::new(),
            headers: Vec::new(),
            status: 200,
            digest: fnv1a(script.path.as_bytes()),
            session_started: false,
            session_cookie: input.session_cookie().map(str::to_string),
            last_insert_id: 0,
            last_affected: 0,
            stats: ExecStats::default(),
            step_limit: 200_000_000,
        }
    }

    fn into_fatal_result(mut self, message: String) -> RunResult {
        RunResult {
            output: RequestOutput {
                status: 500,
                headers: Vec::new(),
                body: format!("Fatal error: {message}"),
            },
            digest: self.digest,
            stats: std::mem::take(&mut self.stats),
        }
    }

    #[allow(dead_code)]
    fn func(&self, fref: FnRef) -> &'a CompiledFunction {
        match fref {
            FnRef::Main => &self.script.main,
            FnRef::User(i) => &self.script.functions[i as usize],
        }
    }

    fn write_session_back(&mut self) -> Result<(), VmError> {
        if !self.session_started {
            return Ok(());
        }
        let Some(cookie) = self.session_cookie.clone() else {
            return Ok(());
        };
        let bytes = self.globals[3].to_wire_bytes();
        self.backend
            .register_write(&format!("reg:sess:{cookie}"), bytes)?;
        Ok(())
    }

    fn run_main(&mut self) -> Result<(), VmError> {
        self.frames.push(Frame {
            func: FnRef::Main,
            pc: 0,
            locals: vec![Value::Null; self.script.main.num_locals as usize],
            iters: Vec::new(),
            stack_base: 0,
        });
        self.interp()
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("compiler guarantees stack depth")
    }

    fn interp(&mut self) -> Result<(), VmError> {
        loop {
            if self.stats.instructions >= self.step_limit {
                return Err(VmError::Fatal("execution step limit exceeded".into()));
            }
            self.stats.instructions += 1;
            let frame = self.frames.last_mut().expect("frame present while running");
            let code = match frame.func {
                FnRef::Main => &self.script.main.code,
                FnRef::User(i) => &self.script.functions[i as usize].code,
            };
            let pc = frame.pc;
            let op = code[pc];
            frame.pc += 1;
            match op {
                Op::Const(i) => self.stack.push(self.script.consts[i as usize].clone()),
                Op::LoadLocal(s) => {
                    let frame = self.frames.last().expect("running frame");
                    self.stack.push(frame.locals[s as usize].clone());
                }
                Op::StoreLocal(s) => {
                    let v = self.pop();
                    let frame = self.frames.last_mut().expect("running frame");
                    frame.locals[s as usize] = v;
                }
                Op::LoadGlobal(s) => self.stack.push(self.globals[s as usize].clone()),
                Op::StoreGlobal(s) => {
                    let v = self.pop();
                    self.globals[s as usize] = v;
                }
                Op::Pop => {
                    self.pop();
                }
                Op::Dup => {
                    let v = self.stack.last().expect("dup on non-empty stack").clone();
                    self.stack.push(v);
                }
                Op::Swap => {
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod | Op::Concat => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(ops::binary(op, &a, &b)?);
                }
                Op::Eq => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(a.loose_eq(&b)));
                }
                Op::Ne => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(!a.loose_eq(&b)));
                }
                Op::Identical => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(a.identical(&b)));
                }
                Op::NotIdentical => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(!a.identical(&b)));
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(ops::relational(op, &a, &b)));
                }
                Op::Not => {
                    let v = self.pop();
                    self.stack.push(Value::Bool(!v.is_truthy()));
                }
                Op::Neg => {
                    let v = self.pop();
                    self.stack.push(ops::negate(&v)?);
                }
                Op::Jump(t) => {
                    self.frames.last_mut().expect("running frame").pc = t as usize;
                }
                Op::JumpIfFalse(t) => {
                    let v = self.pop();
                    let taken = !v.is_truthy();
                    self.digest = digest_mix(self.digest, pc as u32, taken);
                    if taken {
                        self.frames.last_mut().expect("running frame").pc = t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    let v = self.pop();
                    let taken = v.is_truthy();
                    self.digest = digest_mix(self.digest, pc as u32, taken);
                    if taken {
                        self.frames.last_mut().expect("running frame").pc = t as usize;
                    }
                }
                Op::NewArray => self.stack.push(Value::empty_array()),
                Op::AppendStack => {
                    let v = self.pop();
                    let arr = self.pop();
                    self.stack.push(ops::array_append(arr, v)?);
                }
                Op::InsertStack => {
                    let v = self.pop();
                    let k = self.pop();
                    let arr = self.pop();
                    self.stack.push(ops::array_insert(arr, &k, v)?);
                }
                Op::IndexGet => {
                    let k = self.pop();
                    let base = self.pop();
                    self.stack.push(ops::index_get(&base, &k));
                }
                Op::SetPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let value = self.pop();
                    let frame = self.frames.last_mut().expect("running frame");
                    ops::set_path(&mut frame.locals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::SetPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let value = self.pop();
                    ops::set_path(&mut self.globals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::AppendPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize - 1);
                    let value = self.pop();
                    let frame = self.frames.last_mut().expect("running frame");
                    ops::append_path(&mut frame.locals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::AppendPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize - 1);
                    let value = self.pop();
                    ops::append_path(&mut self.globals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::UnsetPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let frame = self.frames.last_mut().expect("running frame");
                    ops::unset_path(&mut frame.locals[slot as usize], &keys);
                }
                Op::UnsetPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    ops::unset_path(&mut self.globals[slot as usize], &keys);
                }
                Op::IssetPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let frame = self.frames.last().expect("running frame");
                    self.stack.push(Value::Bool(ops::isset_path(
                        &frame.locals[slot as usize],
                        &keys,
                    )));
                }
                Op::IssetPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    self.stack.push(Value::Bool(ops::isset_path(
                        &self.globals[slot as usize],
                        &keys,
                    )));
                }
                Op::PreIncLocal(s)
                | Op::PostIncLocal(s)
                | Op::PreDecLocal(s)
                | Op::PostDecLocal(s) => {
                    let frame = self.frames.last_mut().expect("running frame");
                    let result = ops::incdec(&mut frame.locals[s as usize], op)?;
                    self.stack.push(result);
                }
                Op::PreIncGlobal(s)
                | Op::PostIncGlobal(s)
                | Op::PreDecGlobal(s)
                | Op::PostDecGlobal(s) => {
                    let result = ops::incdec(&mut self.globals[s as usize], op)?;
                    self.stack.push(result);
                }
                Op::Call(fidx, argc) => {
                    let func = &self.script.functions[fidx as usize];
                    let argc = argc as usize;
                    let mut locals = vec![Value::Null; func.num_locals as usize];
                    // Args are on the stack in order; fill param slots.
                    let args_start = self.stack.len() - argc;
                    for (i, v) in self.stack.drain(args_start..).enumerate() {
                        if i < func.num_params as usize {
                            locals[i] = v;
                        }
                    }
                    #[allow(clippy::needless_range_loop)]
                    for p in argc..func.num_params as usize {
                        match func.defaults[p] {
                            Some(cidx) => locals[p] = self.script.consts[cidx as usize].clone(),
                            None => {
                                return Err(VmError::Fatal(format!(
                                    "too few arguments to function {}()",
                                    func.name
                                )))
                            }
                        }
                    }
                    if self.frames.len() >= 200 {
                        return Err(VmError::Fatal("call stack depth exceeded".into()));
                    }
                    self.frames.push(Frame {
                        func: FnRef::User(fidx),
                        pc: 0,
                        locals,
                        iters: Vec::new(),
                        stack_base: self.stack.len(),
                    });
                }
                Op::CallBuiltin(bidx, argc) => {
                    let argc = argc as usize;
                    let args_start = self.stack.len() - argc;
                    let args: Vec<Value> = self.stack.drain(args_start..).collect();
                    if builtins::is_byref(bidx) {
                        let (new_target, ret) = builtins::dispatch_byref(bidx, args)?;
                        self.stack.push(new_target);
                        self.stack.push(ret);
                    } else {
                        let ret = builtins::dispatch(bidx, args, self)?;
                        self.stack.push(ret);
                    }
                }
                Op::Return => {
                    let value = self.pop();
                    let frame = self.frames.pop().expect("returning frame");
                    if self.frames.is_empty() {
                        return Ok(());
                    }
                    self.stack.truncate(frame.stack_base);
                    self.stack.push(value);
                }
                Op::ReturnNull => {
                    let frame = self.frames.pop().expect("returning frame");
                    if self.frames.is_empty() {
                        return Ok(());
                    }
                    self.stack.truncate(frame.stack_base);
                    self.stack.push(Value::Null);
                }
                Op::Echo => {
                    let v = self.pop();
                    self.output.push_str(&v.to_php_string());
                }
                Op::IterInit => {
                    let arr = self.pop();
                    let pairs = match &arr {
                        Value::Array(a) => a.to_pairs(),
                        // PHP warns and skips the loop for non-arrays.
                        _ => Vec::new(),
                    };
                    self.frames
                        .last_mut()
                        .expect("running frame")
                        .iters
                        .push(ArrayIter { pairs, pos: 0 });
                }
                Op::IterNext(t) | Op::IterNextKV(t) => {
                    let frame = self.frames.last_mut().expect("running frame");
                    let iter = frame.iters.last_mut().expect("IterInit precedes IterNext");
                    if iter.pos < iter.pairs.len() {
                        let (k, v) = iter.pairs[iter.pos].clone();
                        iter.pos += 1;
                        self.digest = digest_mix(self.digest, pc as u32, true);
                        if matches!(op, Op::IterNextKV(_)) {
                            self.stack.push(k.to_value());
                        }
                        self.stack.push(v);
                    } else {
                        self.digest = digest_mix(self.digest, pc as u32, false);
                        frame.pc = t as usize;
                    }
                }
                Op::IterPop => {
                    self.frames.last_mut().expect("running frame").iters.pop();
                }
            }
        }
    }

    fn pop_keys(&mut self, n: usize) -> Vec<Value> {
        if n == 0 {
            return Vec::new();
        }
        self.stack.split_off(self.stack.len() - n)
    }
}

impl Host for Vm<'_> {
    fn echo(&mut self, s: &str) {
        self.output.push_str(s);
    }

    fn add_header(&mut self, name: String, value: String) {
        self.headers.push((name, value));
    }

    fn set_status(&mut self, code: u16) {
        self.status = code;
    }

    fn session_start(&mut self) -> Result<(), VmError> {
        if self.session_started {
            return Ok(());
        }
        self.session_started = true;
        let Some(cookie) = self.session_cookie.clone() else {
            self.globals[3] = Value::empty_array();
            return Ok(());
        };
        let bytes = self.backend.register_read(&format!("reg:sess:{cookie}"))?;
        self.globals[3] = match bytes {
            Some(b) => Value::from_wire_bytes(&b)
                .map_err(|_| VmError::Fatal("corrupt session data".into()))?,
            None => Value::empty_array(),
        };
        Ok(())
    }

    fn kv_get(&mut self, key: &str) -> Result<Value, VmError> {
        let bytes = self.backend.kv_get("kv:apc", key)?;
        Ok(match bytes {
            Some(b) => {
                Value::from_wire_bytes(&b).map_err(|_| VmError::Fatal("corrupt apc data".into()))?
            }
            None => Value::Bool(false),
        })
    }

    fn kv_set(&mut self, key: &str, value: Option<&Value>) -> Result<(), VmError> {
        let bytes = value.map(|v| v.to_wire_bytes());
        self.backend.kv_set("kv:apc", key, bytes)?;
        Ok(())
    }

    fn db_begin(&mut self) -> Result<(), VmError> {
        self.backend.db_begin("db:main")?;
        Ok(())
    }

    fn db_query(&mut self, sql: &str) -> Result<Value, VmError> {
        let result = self.backend.db_query("db:main", sql)?;
        Ok(builtins::db_result_to_value(
            result,
            &mut self.last_insert_id,
            &mut self.last_affected,
        ))
    }

    fn db_commit(&mut self) -> Result<bool, VmError> {
        Ok(self.backend.db_commit("db:main")?)
    }

    fn db_rollback(&mut self) -> Result<(), VmError> {
        self.backend.db_rollback("db:main")?;
        Ok(())
    }

    fn db_insert_id(&mut self) -> i64 {
        self.last_insert_id
    }

    fn db_affected_rows(&mut self) -> i64 {
        self.last_affected
    }

    fn nd_time(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.time()?)
    }

    fn nd_microtime(&mut self) -> Result<f64, VmError> {
        Ok(self.backend.microtime()?)
    }

    fn nd_getpid(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.getpid()?)
    }

    fn nd_rand_raw(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.mt_rand()?)
    }

    fn nd_uniqid(&mut self) -> Result<String, VmError> {
        Ok(self.backend.uniqid()?)
    }
}

/// The deterministic 404 page for unrouted paths; the online server and
/// the verifier share it so output comparison is meaningful.
pub fn not_found_output(path: &str) -> RequestOutput {
    RequestOutput {
        status: 404,
        headers: Vec::new(),
        body: format!("Not Found: {path}"),
    }
}

/// Builds a PHP assoc array from string pairs (superglobal
/// materialization, §4.2).
pub fn pairs_to_array(pairs: &[(String, String)]) -> Value {
    let mut a = PhpArray::new();
    for (k, v) in pairs {
        a.set(
            ArrayKey::from_value(&Value::str(k.clone())),
            Value::str(v.clone()),
        );
    }
    Value::array(a)
}

/// Shared scalar operation semantics, used by both the scalar VM and the
/// multivalue VM (which applies them per lane).
pub mod ops {
    use super::*;

    /// Binary arithmetic/string ops with PHP coercions.
    pub fn binary(op: Op, a: &Value, b: &Value) -> Result<Value, VmError> {
        match op {
            Op::Concat => {
                let mut s = a.to_php_string();
                s.push_str(&b.to_php_string());
                Ok(Value::str(s))
            }
            Op::Add | Op::Sub | Op::Mul => {
                if let (Value::Array(_), _) | (_, Value::Array(_)) = (a, b) {
                    return Err(VmError::Fatal("unsupported operand types: array".into()));
                }
                match (int_view(a), int_view(b)) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            Op::Add => x.checked_add(y),
                            Op::Sub => x.checked_sub(y),
                            Op::Mul => x.checked_mul(y),
                            _ => unreachable!("arith subset"),
                        };
                        Ok(match r {
                            Some(v) => Value::Int(v),
                            // PHP overflows int arithmetic into float.
                            None => {
                                let (x, y) = (x as f64, y as f64);
                                Value::Float(match op {
                                    Op::Add => x + y,
                                    Op::Sub => x - y,
                                    Op::Mul => x * y,
                                    _ => unreachable!("arith subset"),
                                })
                            }
                        })
                    }
                    _ => {
                        let (x, y) = (a.to_php_float(), b.to_php_float());
                        Ok(Value::Float(match op {
                            Op::Add => x + y,
                            Op::Sub => x - y,
                            Op::Mul => x * y,
                            _ => unreachable!("arith subset"),
                        }))
                    }
                }
            }
            Op::Div => {
                if b.to_php_float() == 0.0 {
                    return Err(VmError::Fatal("division by zero".into()));
                }
                match (int_view(a), int_view(b)) {
                    (Some(x), Some(y)) if x % y == 0 => Ok(Value::Int(x / y)),
                    _ => Ok(Value::Float(a.to_php_float() / b.to_php_float())),
                }
            }
            Op::Mod => {
                let y = b.to_php_int();
                if y == 0 {
                    return Err(VmError::Fatal("modulo by zero".into()));
                }
                Ok(Value::Int(a.to_php_int() % y))
            }
            other => unreachable!("not a binary op: {other:?}"),
        }
    }

    /// `<`, `<=`, `>`, `>=` (incomparable pairs yield false).
    pub fn relational(op: Op, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        match a.loose_cmp(b) {
            None => false,
            Some(ord) => match op {
                Op::Lt => ord == Less,
                Op::Le => ord != Greater,
                Op::Gt => ord == Greater,
                Op::Ge => ord != Less,
                other => unreachable!("not relational: {other:?}"),
            },
        }
    }

    /// Unary minus.
    pub fn negate(v: &Value) -> Result<Value, VmError> {
        match v {
            Value::Int(i) => Ok(match i.checked_neg() {
                Some(n) => Value::Int(n),
                None => Value::Float(-(*i as f64)),
            }),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Array(_) => Err(VmError::Fatal("cannot negate array".into())),
            other => Ok(match int_view(other) {
                Some(i) => Value::Int(-i),
                None => Value::Float(-other.to_php_float()),
            }),
        }
    }

    /// Integer view used by arithmetic: ints, bools, and null (0).
    fn int_view(v: &Value) -> Option<i64> {
        match v {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            Value::Null => Some(0),
            Value::Str(s) => {
                // Fully-integer strings act as ints in arithmetic.
                let t = s.trim();
                t.parse::<i64>().ok()
            }
            _ => None,
        }
    }

    /// `++`/`--` on a storage slot (PHP: `null++` is 1, `null--` stays
    /// null).
    pub fn incdec(slot: &mut Value, op: Op) -> Result<Value, VmError> {
        let inc = matches!(
            op,
            Op::PreIncLocal(_) | Op::PostIncLocal(_) | Op::PreIncGlobal(_) | Op::PostIncGlobal(_)
        );
        let pre = matches!(
            op,
            Op::PreIncLocal(_) | Op::PreDecLocal(_) | Op::PreIncGlobal(_) | Op::PreDecGlobal(_)
        );
        let old = slot.clone();
        let new = match (&old, inc) {
            (Value::Null, true) => Value::Int(1),
            (Value::Null, false) => Value::Null,
            _ => binary(if inc { Op::Add } else { Op::Sub }, &old, &Value::Int(1))?,
        };
        *slot = new.clone();
        Ok(if pre { new } else { old })
    }

    /// `$a[] = v` on a stack value (array literals).
    pub fn array_append(arr: Value, v: Value) -> Result<Value, VmError> {
        match arr {
            Value::Array(mut rc) => {
                Arc::make_mut(&mut rc).push(v);
                Ok(Value::Array(rc))
            }
            _ => Err(VmError::Fatal("append to non-array".into())),
        }
    }

    /// `$a[k] = v` on a stack value (array literals).
    pub fn array_insert(arr: Value, k: &Value, v: Value) -> Result<Value, VmError> {
        match arr {
            Value::Array(mut rc) => {
                Arc::make_mut(&mut rc).set(ArrayKey::from_value(k), v);
                Ok(Value::Array(rc))
            }
            _ => Err(VmError::Fatal("insert into non-array".into())),
        }
    }

    /// Index read: arrays by key, strings by offset; anything else (or a
    /// missing key) yields null, as PHP does (sans the notice).
    pub fn index_get(base: &Value, key: &Value) -> Value {
        match base {
            Value::Array(a) => a
                .get(&ArrayKey::from_value(key))
                .cloned()
                .unwrap_or(Value::Null),
            Value::Str(s) => {
                let idx = key.to_php_int();
                if idx < 0 {
                    let n = s.chars().count() as i64;
                    let idx = n + idx;
                    if idx < 0 {
                        return Value::str("");
                    }
                    return Value::str(
                        s.chars()
                            .nth(idx as usize)
                            .map(|c| c.to_string())
                            .unwrap_or_default(),
                    );
                }
                Value::str(
                    s.chars()
                        .nth(idx as usize)
                        .map(|c| c.to_string())
                        .unwrap_or_default(),
                )
            }
            _ => Value::Null,
        }
    }

    /// Writes through an index path, materializing arrays along the way.
    pub fn set_path(container: &mut Value, keys: &[Value], value: Value) -> Result<(), VmError> {
        if keys.is_empty() {
            *container = value;
            return Ok(());
        }
        ensure_array(container)?;
        let Value::Array(rc) = container else {
            unreachable!("ensure_array above");
        };
        let arr = Arc::make_mut(rc);
        let key = ArrayKey::from_value(&keys[0]);
        if keys.len() == 1 {
            arr.set(key, value);
            return Ok(());
        }
        if !arr.has_key(&key) {
            arr.set(key.clone(), Value::Null);
        }
        let slot = arr.get_mut(&key).expect("inserted above");
        set_path(slot, &keys[1..], value)
    }

    /// Appends through an index path (`$a[k1]..[] = v`).
    pub fn append_path(container: &mut Value, keys: &[Value], value: Value) -> Result<(), VmError> {
        ensure_array(container)?;
        let Value::Array(rc) = container else {
            unreachable!("ensure_array above");
        };
        let arr = Arc::make_mut(rc);
        if keys.is_empty() {
            arr.push(value);
            return Ok(());
        }
        let key = ArrayKey::from_value(&keys[0]);
        if !arr.has_key(&key) {
            arr.set(key.clone(), Value::Null);
        }
        let slot = arr.get_mut(&key).expect("inserted above");
        append_path(slot, &keys[1..], value)
    }

    /// Unsets through an index path; missing steps are no-ops.
    pub fn unset_path(container: &mut Value, keys: &[Value]) {
        if keys.is_empty() {
            *container = Value::Null;
            return;
        }
        let Value::Array(rc) = container else {
            return;
        };
        let arr = Arc::make_mut(rc);
        let key = ArrayKey::from_value(&keys[0]);
        if keys.len() == 1 {
            arr.remove(&key);
            return;
        }
        if let Some(slot) = arr.get_mut(&key) {
            unset_path(slot, &keys[1..]);
        }
    }

    /// `isset` through an index path: every step must exist and the
    /// final value must not be null.
    pub fn isset_path(container: &Value, keys: &[Value]) -> bool {
        let mut cur = container;
        for k in keys {
            match cur {
                Value::Array(a) => match a.get(&ArrayKey::from_value(k)) {
                    Some(v) => cur = v,
                    None => return false,
                },
                Value::Str(s) => {
                    // isset($s[i]) on strings: offset in range.
                    let idx = k.to_php_int();
                    return idx >= 0 && (idx as usize) < s.chars().count();
                }
                _ => return false,
            }
        }
        !matches!(cur, Value::Null)
    }

    fn ensure_array(container: &mut Value) -> Result<(), VmError> {
        match container {
            Value::Array(_) => Ok(()),
            Value::Null => {
                *container = Value::empty_array();
                Ok(())
            }
            // PHP also auto-vivifies "" into an array historically;
            // modern PHP errors. We error, deterministically.
            other => Err(VmError::Fatal(format!(
                "cannot use {} as array",
                other.type_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NullBackend;
    use crate::compiler::compile;
    use crate::parser::parse_script;

    fn run(src: &str) -> String {
        run_with(src, &[])
    }

    fn run_with(src: &str, get: &[(&str, &str)]) -> String {
        let script = compile("/t.php", &parse_script(src).unwrap()).unwrap();
        let mut backend = NullBackend;
        let input = RequestInput {
            method: "GET".into(),
            path: "/t.php".into(),
            get: get
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            ..Default::default()
        };
        run_request(&script, &mut backend, &input)
            .unwrap()
            .output
            .body
    }

    #[test]
    fn arithmetic_and_echo() {
        assert_eq!(run("echo 1 + 2 * 3;"), "7");
        assert_eq!(run("echo 7 / 2;"), "3.5");
        assert_eq!(run("echo 6 / 2;"), "3");
        assert_eq!(run("echo 7 % 3;"), "1");
        assert_eq!(run("echo 'a' . 'b' . 3;"), "ab3");
        assert_eq!(run("echo -5 + 2;"), "-3");
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(run("$x = 4; $x += 2; echo $x;"), "6");
        assert_eq!(run("$s = 'a'; $s .= 'b'; echo $s;"), "ab");
        // Assignment is an expression.
        assert_eq!(run("$a = $b = 3; echo $a + $b;"), "6");
    }

    #[test]
    fn superglobals_materialized() {
        assert_eq!(
            run_with("echo $_GET['x'] + $_GET['y'];", &[("x", "1"), ("y", "3")]),
            "4"
        );
    }

    #[test]
    fn if_else_chains() {
        let src = "$x = 5;
            if ($x > 10) { echo 'big'; }
            elseif ($x > 3) { echo 'mid'; }
            else { echo 'small'; }";
        assert_eq!(run(src), "mid");
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(run("$i = 0; while ($i < 3) { echo $i; $i++; }"), "012");
        assert_eq!(run("for ($i = 0; $i < 4; $i++) { echo $i; }"), "0123");
        assert_eq!(
            run("for ($i = 0; $i < 5; $i++) { if ($i == 2) { continue; } if ($i == 4) { break; } echo $i; }"),
            "013"
        );
    }

    #[test]
    fn foreach_value_and_kv() {
        assert_eq!(run("foreach ([3, 4, 5] as $v) { echo $v; }"), "345");
        assert_eq!(
            run("foreach (['a' => 1, 'b' => 2] as $k => $v) { echo $k, $v; }"),
            "a1b2"
        );
        // Snapshot semantics: mutation inside the loop is invisible.
        assert_eq!(
            run("$a = [1, 2]; foreach ($a as $v) { $a[] = 9; echo $v; }"),
            "12"
        );
    }

    #[test]
    fn switch_fallthrough_and_default() {
        let src = "function f($x) {
            switch ($x) {
                case 1: return 'one';
                case 2:
                case 3: return 'few';
                default: return 'many';
            }
        }
        echo f(1), f(2), f(3), f(9);";
        assert_eq!(run(src), "onefewfewmany");
    }

    #[test]
    fn functions_defaults_and_recursion() {
        assert_eq!(
            run("function inc($x, $by = 1) { return $x + $by; } echo inc(1), inc(1, 5);"),
            "26"
        );
        assert_eq!(
            run("function fib($n) { if ($n < 2) { return $n; } return fib($n-1) + fib($n-2); } echo fib(10);"),
            "55"
        );
    }

    #[test]
    fn globals_visible_with_declaration() {
        let src = "$counter = 10;
            function bump() { global $counter; $counter++; return $counter; }
            echo bump(); echo bump(); echo $counter;";
        assert_eq!(run(src), "111212");
    }

    #[test]
    fn locals_do_not_leak() {
        let src = "$x = 'global';
            function f() { $x = 'local'; return $x; }
            echo f(), $x;";
        assert_eq!(run(src), "localglobal");
    }

    #[test]
    fn arrays_nested_paths() {
        let src = "$a = [];
            $a['u']['name'] = 'dana';
            $a['u']['n'] = 2;
            $a['u']['n'] += 3;
            $a['list'][] = 'x';
            $a['list'][] = 'y';
            echo $a['u']['name'], $a['u']['n'], count($a['list']);";
        assert_eq!(run(src), "dana52");
    }

    #[test]
    fn isset_and_unset() {
        let src = "$a = ['k' => 1, 'n' => null];
            echo isset($a['k']) ? 'y' : 'n';
            echo isset($a['n']) ? 'y' : 'n';
            echo isset($a['z']) ? 'y' : 'n';
            unset($a['k']);
            echo isset($a['k']) ? 'y' : 'n';
            echo isset($undefined) ? 'y' : 'n';";
        assert_eq!(run(src), "ynnnn");
    }

    #[test]
    fn ternary_and_elvis() {
        assert_eq!(run("echo 1 ? 'a' : 'b';"), "a");
        assert_eq!(run("echo 0 ?: 'dflt';"), "dflt");
        assert_eq!(run("echo 'v' ?: 'dflt';"), "v");
    }

    #[test]
    fn short_circuit_evaluation() {
        // The second operand must not run (division by zero would be
        // fatal).
        assert_eq!(run("echo (false && 1 / 0) ? 'y' : 'n';"), "n");
        assert_eq!(run("echo (true || 1 / 0) ? 'y' : 'n';"), "y");
    }

    #[test]
    fn string_indexing() {
        assert_eq!(run("$s = 'abc'; echo $s[1];"), "b");
        assert_eq!(run("$s = 'abc'; echo $s[-1];"), "c");
    }

    #[test]
    fn fatal_errors_produce_500() {
        let script = compile("/t.php", &parse_script("echo 1 / 0;").unwrap()).unwrap();
        let mut b = NullBackend;
        let result = run_request(
            &script,
            &mut b,
            &RequestInput {
                path: "/t.php".into(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.output.status, 500);
        assert!(result.output.body.contains("division by zero"));
    }

    #[test]
    fn digest_distinguishes_control_flow() {
        let script = compile(
            "/t.php",
            &parse_script("if ($_GET['x'] == 1) { echo 'a'; } else { echo 'b'; }").unwrap(),
        )
        .unwrap();
        let run_digest = |x: &str| {
            let mut b = NullBackend;
            run_request(
                &script,
                &mut b,
                &RequestInput {
                    path: "/t.php".into(),
                    get: vec![("x".into(), x.into())],
                    ..Default::default()
                },
            )
            .unwrap()
            .digest
        };
        assert_eq!(run_digest("1"), run_digest("1"));
        assert_ne!(run_digest("1"), run_digest("2"));
        // Same path, different data: same digest.
        assert_eq!(run_digest("2"), run_digest("3"));
    }

    #[test]
    fn digest_depends_on_loop_count() {
        let script = compile(
            "/t.php",
            &parse_script("for ($i = 0; $i < intval($_GET['n']); $i++) { echo $i; }").unwrap(),
        )
        .unwrap();
        let run_digest = |n: &str| {
            let mut b = NullBackend;
            run_request(
                &script,
                &mut b,
                &RequestInput {
                    path: "/t.php".into(),
                    get: vec![("n".into(), n.into())],
                    ..Default::default()
                },
            )
            .unwrap()
            .digest
        };
        assert_ne!(run_digest("2"), run_digest("3"));
        assert_eq!(run_digest("3"), run_digest("3"));
    }

    #[test]
    fn overflow_promotes_to_float() {
        assert_eq!(
            run("echo 9223372036854775807 + 1 > 0 ? 'pos' : 'neg';"),
            "pos"
        );
    }

    #[test]
    fn incdec_semantics() {
        assert_eq!(run("$i = 1; echo $i++; echo $i; echo ++$i;"), "123");
        assert_eq!(run("echo $undef++; echo $undef;"), "1"); // null++ -> "" then 1.
        assert_eq!(run("$a = ['n' => 1]; $a['n']++; echo $a['n'];"), "2");
    }

    #[test]
    fn stack_depth_guard() {
        let out = run("function f() { return f(); } echo f();");
        // Comes back as a deterministic fatal-error page body.
        assert!(out.is_empty() || !out.contains("55"));
    }
}
