//! The hooks through which the VM reaches shared state and
//! nondeterminism.
//!
//! The same bytecode runs in three harnesses: the online server (real
//! objects + recording), the verifier's grouped re-execution
//! (simulate-and-check per lane), and the verifier's scalar fallback.
//! Each provides its own [`StateBackend`] and [`NondetProvider`]; the VM
//! itself never touches shared state directly.
//!
//! Object naming: the runtime composes canonical object names from
//! program data — `reg:sess:<cookie>` for session registers, `kv:<name>`
//! for key-value stores, `db:<name>` for databases. Because both the
//! online runtime and the re-execution runtime derive names the same
//! way, the audit's `CheckOp` can compare the re-executed target against
//! the log's object without a trusted directory.

/// A database cell value crossing the VM/backend boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum DbScalar {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
}

/// Result of a database query as seen by the program.
#[derive(Debug, Clone, PartialEq)]
pub enum DbResult {
    /// SELECT result rows: each row is `(column, value)` pairs in
    /// projection order.
    Rows(Vec<Vec<(String, DbScalar)>>),
    /// Write statement result.
    Write {
        /// Rows affected.
        affected: u64,
        /// Auto-increment id assigned, if any.
        insert_id: Option<i64>,
    },
    /// The statement failed (duplicate key, bad SQL, ...); the program
    /// observes `false` from `db_query`.
    Failed,
}

/// Error from a backend call.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The audit rejected (verifier side only): abort re-execution and
    /// propagate the rejection.
    AuditReject(String),
    /// Unrecoverable runtime misuse (e.g. nested transaction); the
    /// request fails with a 500 like any fatal PHP error.
    Fatal(String),
}

/// Shared-state operations. Every call is (on the server) a recorded
/// operation or (at the verifier) a checked-and-simulated one.
pub trait StateBackend {
    /// Atomic register read (session load).
    fn register_read(&mut self, object: &str) -> Result<Option<Vec<u8>>, BackendError>;
    /// Atomic register write (session store).
    fn register_write(&mut self, object: &str, value: Vec<u8>) -> Result<(), BackendError>;
    /// Key-value get (APC fetch).
    fn kv_get(&mut self, object: &str, key: &str) -> Result<Option<Vec<u8>>, BackendError>;
    /// Key-value set (APC store; `None` deletes).
    fn kv_set(
        &mut self,
        object: &str,
        key: &str,
        value: Option<Vec<u8>>,
    ) -> Result<(), BackendError>;
    /// Opens a multi-statement transaction on `object`.
    fn db_begin(&mut self, object: &str) -> Result<(), BackendError>;
    /// Executes one SQL statement. Outside a transaction this is an
    /// auto-committed single-statement transaction; inside, it joins the
    /// open one.
    fn db_query(&mut self, object: &str, sql: &str) -> Result<DbResult, BackendError>;
    /// Commits the open transaction; returns false if it had failed.
    fn db_commit(&mut self, object: &str) -> Result<bool, BackendError>;
    /// Rolls back the open transaction.
    fn db_rollback(&mut self, object: &str) -> Result<(), BackendError>;
    /// True while a transaction is open (used by the runtime to forbid
    /// nested object operations, §4.4).
    fn in_txn(&self) -> bool;
    /// Called by the runtime when the script finishes, before the
    /// session write-back. Implementations that find a leaked (still
    /// open) transaction must close it and return a deterministic fatal
    /// error, so the online and re-executed responses agree.
    fn end_of_request(&mut self) -> Result<(), BackendError> {
        if self.in_txn() {
            return Err(BackendError::Fatal(
                "script ended with open transaction".into(),
            ));
        }
        Ok(())
    }
}

/// Nondeterministic builtins (§4.6). The server draws real values and
/// records them; the verifier replays the recorded ones.
pub trait NondetProvider {
    /// `time()`.
    fn time(&mut self) -> Result<i64, BackendError>;
    /// `microtime(true)`.
    fn microtime(&mut self) -> Result<f64, BackendError>;
    /// `getpid()`.
    fn getpid(&mut self) -> Result<i64, BackendError>;
    /// `mt_rand(lo, hi)` — the backend returns the raw draw; the VM
    /// range-reduces deterministically.
    fn mt_rand(&mut self) -> Result<i64, BackendError>;
    /// `uniqid()`.
    fn uniqid(&mut self) -> Result<String, BackendError>;
}

/// Combined runtime backend: what [`crate::vm::run_request`] needs.
pub trait RuntimeBackend: StateBackend + NondetProvider {}

impl<T: StateBackend + NondetProvider> RuntimeBackend for T {}

/// A backend for programs that use no shared state (unit tests, the
/// Fig. 10 microbenchmarks). Every state call is a fatal error; nondet
/// calls return fixed values.
#[derive(Debug, Default)]
pub struct NullBackend;

impl StateBackend for NullBackend {
    fn register_read(&mut self, _object: &str) -> Result<Option<Vec<u8>>, BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn register_write(&mut self, _object: &str, _value: Vec<u8>) -> Result<(), BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn kv_get(&mut self, _object: &str, _key: &str) -> Result<Option<Vec<u8>>, BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn kv_set(
        &mut self,
        _object: &str,
        _key: &str,
        _value: Option<Vec<u8>>,
    ) -> Result<(), BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn db_begin(&mut self, _object: &str) -> Result<(), BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn db_query(&mut self, _object: &str, _sql: &str) -> Result<DbResult, BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn db_commit(&mut self, _object: &str) -> Result<bool, BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn db_rollback(&mut self, _object: &str) -> Result<(), BackendError> {
        Err(BackendError::Fatal("no state backend".into()))
    }
    fn in_txn(&self) -> bool {
        false
    }
}

impl NondetProvider for NullBackend {
    fn time(&mut self) -> Result<i64, BackendError> {
        Ok(0)
    }
    fn microtime(&mut self) -> Result<f64, BackendError> {
        Ok(0.0)
    }
    fn getpid(&mut self) -> Result<i64, BackendError> {
        Ok(1)
    }
    fn mt_rand(&mut self) -> Result<i64, BackendError> {
        Ok(4)
    }
    fn uniqid(&mut self) -> Result<String, BackendError> {
        Ok("fixed".into())
    }
}
