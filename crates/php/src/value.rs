//! PHP values: scalars and the ordered-hash array, with value semantics.
//!
//! PHP arrays are ordered maps from int/string keys to values, copied on
//! assignment. We implement the copy with `Rc` + copy-on-write
//! (`Arc::make_mut`), which also makes lane duplication cheap in the
//! multivalue VM. Key canonicalization, loose (`==`) versus identical
//! (`===`) comparison, and string conversion follow PHP semantics closely
//! enough for the evaluation applications; every conversion is
//! deterministic, which is what the audit requires (the server and the
//! verifier run the same rules).

use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A PHP value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// Booleans.
    Bool(bool),
    /// 64-bit integers.
    Int(i64),
    /// Doubles.
    Float(f64),
    /// Strings (cheaply clonable).
    Str(Arc<String>),
    /// Arrays (ordered hash, copy-on-write).
    Array(Arc<PhpArray>),
}

/// A canonicalized PHP array key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArrayKey {
    /// Integer key.
    Int(i64),
    /// String key (non-numeric).
    Str(String),
}

impl ArrayKey {
    /// Canonicalizes a value into an array key following PHP's rules:
    /// integral floats and canonical decimal strings become ints, bools
    /// become 0/1, null becomes `""`.
    pub fn from_value(v: &Value) -> ArrayKey {
        match v {
            Value::Null => ArrayKey::Str(String::new()),
            Value::Bool(b) => ArrayKey::Int(*b as i64),
            Value::Int(i) => ArrayKey::Int(*i),
            Value::Float(f) => ArrayKey::Int(*f as i64),
            Value::Str(s) => match canonical_int_string(s) {
                Some(i) => ArrayKey::Int(i),
                None => ArrayKey::Str(s.as_str().to_string()),
            },
            Value::Array(_) => ArrayKey::Str("Array".to_string()),
        }
    }

    /// The key as a value (for `foreach` and `array_keys`).
    pub fn to_value(&self) -> Value {
        match self {
            ArrayKey::Int(i) => Value::Int(*i),
            ArrayKey::Str(s) => Value::str(s.clone()),
        }
    }
}

/// Returns `Some(i)` if `s` is the canonical decimal representation of
/// an i64 (PHP's array-key canonicalization rule).
fn canonical_int_string(s: &str) -> Option<i64> {
    if s.is_empty() {
        return None;
    }
    let i: i64 = s.parse().ok()?;
    if i.to_string() == s {
        Some(i)
    } else {
        None
    }
}

/// The PHP array: insertion-ordered map with O(1) key lookup.
#[derive(Debug, Clone, Default)]
pub struct PhpArray {
    /// Entries in insertion order; deleted slots are `None` (compacted
    /// lazily on clone-heavy paths is unnecessary at our sizes).
    entries: Vec<Option<(ArrayKey, Value)>>,
    /// Key -> position in `entries`.
    index: HashMap<ArrayKey, usize>,
    /// Next automatic integer key.
    next_int: i64,
    /// Count of live entries.
    live: usize,
}

impl PhpArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries (`count()`).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Gets a value by key.
    pub fn get(&self, key: &ArrayKey) -> Option<&Value> {
        self.index
            .get(key)
            .and_then(|&pos| self.entries[pos].as_ref().map(|(_, v)| v))
    }

    /// True if the key exists (even with a null value —
    /// `array_key_exists`; note `isset` is false for null).
    pub fn has_key(&self, key: &ArrayKey) -> bool {
        self.index.contains_key(key)
    }

    /// Mutable access to a value by key.
    pub fn get_mut(&mut self, key: &ArrayKey) -> Option<&mut Value> {
        let pos = *self.index.get(key)?;
        self.entries[pos].as_mut().map(|(_, v)| v)
    }

    /// Removes and returns the last live entry (`array_pop`).
    pub fn pop_last(&mut self) -> Option<(ArrayKey, Value)> {
        let pos = self.entries.iter().rposition(|e| e.is_some())?;
        let (k, v) = self.entries[pos].take().expect("rposition found Some");
        self.index.remove(&k);
        self.live -= 1;
        Some((k, v))
    }

    /// Removes and returns the first live entry (`array_shift`).
    pub fn shift_first(&mut self) -> Option<(ArrayKey, Value)> {
        let pos = self.entries.iter().position(|e| e.is_some())?;
        let (k, v) = self.entries[pos].take().expect("position found Some");
        self.index.remove(&k);
        self.live -= 1;
        Some((k, v))
    }

    /// Sets `key = value`, preserving insertion order for existing keys.
    pub fn set(&mut self, key: ArrayKey, value: Value) {
        if let ArrayKey::Int(i) = key {
            if i >= self.next_int {
                self.next_int = i + 1;
            }
        }
        match self.index.get(&key) {
            Some(&pos) => {
                self.entries[pos] = Some((key, value));
            }
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push(Some((key, value)));
                self.live += 1;
            }
        }
    }

    /// Appends with the next automatic integer key (`$a[] = v`),
    /// returning the key used.
    pub fn push(&mut self, value: Value) -> i64 {
        let key = self.next_int;
        self.set(ArrayKey::Int(key), value);
        key
    }

    /// Removes a key (`unset`).
    pub fn remove(&mut self, key: &ArrayKey) -> Option<Value> {
        let pos = self.index.remove(key)?;
        let entry = self.entries[pos].take();
        self.live -= 1;
        entry.map(|(_, v)| v)
    }

    /// Iterates live `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&ArrayKey, &Value)> {
        self.entries
            .iter()
            .filter_map(|e| e.as_ref().map(|(k, v)| (k, v)))
    }

    /// Collects the live pairs (used by sort builtins, which rebuild).
    pub fn to_pairs(&self) -> Vec<(ArrayKey, Value)> {
        self.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Rebuilds from pairs, keeping the given order and renumbering
    /// nothing (keys kept as-is).
    pub fn from_pairs(pairs: Vec<(ArrayKey, Value)>) -> Self {
        let mut out = Self::new();
        for (k, v) in pairs {
            out.set(k, v);
        }
        out
    }

    /// Rebuilds from values with fresh integer keys 0..n (used by
    /// `sort`, `array_values`).
    pub fn from_values(values: Vec<Value>) -> Self {
        let mut out = Self::new();
        for v in values {
            out.push(v);
        }
        out
    }
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Arc::new(s.into()))
    }

    /// Builds an array value.
    pub fn array(a: PhpArray) -> Value {
        Value::Array(Arc::new(a))
    }

    /// An empty array.
    pub fn empty_array() -> Value {
        Value::array(PhpArray::new())
    }

    /// PHP truthiness: `"", "0", 0, 0.0, null, false, []` are false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty() && s.as_str() != "0",
            Value::Array(a) => !a.is_empty(),
        }
    }

    /// The type name (`gettype`-style, used in diagnostics).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
        }
    }

    /// String conversion (echo, concatenation). Arrays render as
    /// `"Array"` like PHP (without the notice).
    pub fn to_php_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(true) => "1".to_string(),
            Value::Bool(false) => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_php_float(*f),
            Value::Str(s) => s.as_str().to_string(),
            Value::Array(_) => "Array".to_string(),
        }
    }

    /// Integer conversion (`intval`): leading numeric prefix of strings.
    pub fn to_php_int(&self) -> i64 {
        match self {
            Value::Null => 0,
            Value::Bool(b) => *b as i64,
            Value::Int(i) => *i,
            Value::Float(f) => *f as i64,
            Value::Str(s) => parse_numeric_prefix(s).map(|f| f as i64).unwrap_or(0),
            Value::Array(a) => !a.is_empty() as i64,
        }
    }

    /// Float conversion (`floatval`).
    pub fn to_php_float(&self) -> f64 {
        match self {
            Value::Null => 0.0,
            Value::Bool(b) => *b as i64 as f64,
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Str(s) => parse_numeric_prefix(s).unwrap_or(0.0),
            Value::Array(a) => (!a.is_empty()) as i64 as f64,
        }
    }

    /// True if the value is a number or fully numeric string
    /// (`is_numeric`).
    pub fn is_numeric(&self) -> bool {
        match self {
            Value::Int(_) | Value::Float(_) => true,
            Value::Str(s) => {
                let t = s.trim();
                !t.is_empty() && t.parse::<f64>().is_ok()
            }
            _ => false,
        }
    }

    /// PHP loose equality (`==`).
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), b) => *a == b.is_truthy(),
            (a, Bool(b)) => a.is_truthy() == *b,
            (Null, b) => {
                !b.is_truthy() && !matches!(b, Array(_))
                    || matches!(b, Array(arr) if arr.is_empty())
            }
            (a, Null) => Value::Null.loose_eq(a),
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (Str(a), Str(b)) => {
                // PHP 8: numeric strings compare numerically.
                match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    (Ok(x), Ok(y)) => x == y,
                    _ => a == b,
                }
            }
            (Int(a), Str(s)) | (Str(s), Int(a)) => match s.trim().parse::<f64>() {
                Ok(x) => x == *a as f64,
                Err(_) => false,
            },
            (Float(a), Str(s)) | (Str(s), Float(a)) => match s.trim().parse::<f64>() {
                Ok(x) => x == *a,
                Err(_) => false,
            },
            (Array(a), Array(b)) => {
                if a.len() != b.len() {
                    return false;
                }
                a.iter().all(|(k, v)| match b.get(k) {
                    Some(w) => v.loose_eq(w),
                    None => false,
                })
            }
            _ => false,
        }
    }

    /// PHP identity (`===`): same type and same value.
    pub fn identical(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => {
                if a.len() != b.len() {
                    return false;
                }
                // `===` also requires the same key order.
                a.iter()
                    .zip(b.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && va.identical(vb))
            }
            _ => false,
        }
    }

    /// PHP relational comparison (`<`, `<=`, ...); `None` when the
    /// operands do not admit an order (e.g. array vs scalar).
    pub fn loose_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Str(a), Str(b)) => match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                (Ok(x), Ok(y)) => x.partial_cmp(&y),
                _ => Some(a.cmp(b)),
            },
            (Array(a), Array(b)) => Some(a.len().cmp(&b.len())),
            (Array(_), _) | (_, Array(_)) => None,
            (a, b) => a.to_php_float().partial_cmp(&b.to_php_float()),
        }
    }
}

/// PHP-style float formatting: integral values drop the fraction
/// (`2.0` echoes as `2`), others use the shortest roundtrip form.
pub fn format_php_float(f: f64) -> String {
    if f.is_nan() {
        return "NAN".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { "INF" } else { "-INF" }.to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

/// Parses PHP's leading-numeric-prefix rule: `"12abc"` -> 12.
fn parse_numeric_prefix(s: &str) -> Option<f64> {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'+' | b'-' if i == 0 => end = i + 1,
            b'0'..=b'9' => {
                seen_digit = true;
                end = i + 1;
            }
            b'.' if !seen_dot => {
                seen_dot = true;
                end = i + 1;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return None;
    }
    t[..end].parse().ok()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_php_string())
    }
}

impl Wire for Value {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Value::Null => enc.byte(0),
            Value::Bool(b) => {
                enc.byte(1);
                enc.bool(*b);
            }
            Value::Int(i) => {
                enc.byte(2);
                enc.i64(*i);
            }
            Value::Float(f) => {
                enc.byte(3);
                enc.f64(*f);
            }
            Value::Str(s) => {
                enc.byte(4);
                enc.str(s);
            }
            Value::Array(a) => {
                enc.byte(5);
                enc.u64(a.len() as u64);
                for (k, v) in a.iter() {
                    match k {
                        ArrayKey::Int(i) => {
                            enc.byte(0);
                            enc.i64(*i);
                        }
                        ArrayKey::Str(s) => {
                            enc.byte(1);
                            enc.str(s);
                        }
                    }
                    v.encode(enc);
                }
                enc.u64(a.next_int as u64);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.byte()? {
            0 => Value::Null,
            1 => Value::Bool(dec.bool()?),
            2 => Value::Int(dec.i64()?),
            3 => Value::Float(dec.f64()?),
            4 => Value::str(dec.str()?),
            5 => {
                let n = dec.u64()? as usize;
                if n > dec.remaining() {
                    return Err(WireError::Malformed("array length exceeds buffer"));
                }
                let mut a = PhpArray::new();
                for _ in 0..n {
                    let key = match dec.byte()? {
                        0 => ArrayKey::Int(dec.i64()?),
                        1 => ArrayKey::Str(dec.str()?),
                        _ => return Err(WireError::Malformed("bad array key tag")),
                    };
                    let v = Value::decode(dec)?;
                    a.set(key, v);
                }
                a.next_int = dec.u64()? as i64;
                Value::array(a)
            }
            _ => return Err(WireError::Malformed("unknown php value tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_key_canonicalization() {
        assert_eq!(ArrayKey::from_value(&Value::str("5")), ArrayKey::Int(5));
        assert_eq!(
            ArrayKey::from_value(&Value::str("05")),
            ArrayKey::Str("05".into())
        );
        assert_eq!(ArrayKey::from_value(&Value::str("-3")), ArrayKey::Int(-3));
        assert_eq!(ArrayKey::from_value(&Value::Bool(true)), ArrayKey::Int(1));
        assert_eq!(ArrayKey::from_value(&Value::Float(2.9)), ArrayKey::Int(2));
        assert_eq!(
            ArrayKey::from_value(&Value::Null),
            ArrayKey::Str(String::new())
        );
    }

    #[test]
    fn array_preserves_insertion_order() {
        let mut a = PhpArray::new();
        a.set(ArrayKey::Str("z".into()), Value::Int(1));
        a.set(ArrayKey::Str("a".into()), Value::Int(2));
        a.set(ArrayKey::Int(10), Value::Int(3));
        let keys: Vec<_> = a.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![
                ArrayKey::Str("z".into()),
                ArrayKey::Str("a".into()),
                ArrayKey::Int(10)
            ]
        );
        // Overwrite preserves position.
        a.set(ArrayKey::Str("z".into()), Value::Int(9));
        let first = a.iter().next().unwrap();
        assert_eq!(first.0, &ArrayKey::Str("z".into()));
        assert!(first.1.identical(&Value::Int(9)));
    }

    #[test]
    fn push_uses_max_int_key_plus_one() {
        let mut a = PhpArray::new();
        assert_eq!(a.push(Value::Int(0)), 0);
        a.set(ArrayKey::Int(10), Value::Int(1));
        assert_eq!(a.push(Value::Int(2)), 11);
        // Deleting does not lower the next key (PHP behaviour).
        a.remove(&ArrayKey::Int(11));
        assert_eq!(a.push(Value::Int(3)), 12);
    }

    #[test]
    fn remove_and_count() {
        let mut a = PhpArray::new();
        a.push(Value::Int(1));
        a.push(Value::Int(2));
        assert_eq!(a.len(), 2);
        a.remove(&ArrayKey::Int(0));
        assert_eq!(a.len(), 1);
        assert!(!a.has_key(&ArrayKey::Int(0)));
        let remaining: Vec<_> = a.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(remaining, vec![ArrayKey::Int(1)]);
    }

    #[test]
    fn truthiness_table() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(!Value::str("0").is_truthy());
        assert!(!Value::empty_array().is_truthy());
        assert!(Value::str("0.0").is_truthy()); // PHP quirk: "0.0" is true.
        assert!(Value::Int(-1).is_truthy());
    }

    #[test]
    fn loose_equality_table() {
        assert!(Value::Int(0).loose_eq(&Value::str("0")));
        assert!(Value::Int(1).loose_eq(&Value::Bool(true)));
        assert!(Value::Null.loose_eq(&Value::Bool(false)));
        assert!(Value::str("1e1").loose_eq(&Value::Int(10)));
        assert!(!Value::str("abc").loose_eq(&Value::Int(0))); // PHP 8.
        assert!(Value::str("10").loose_eq(&Value::str("1e1")));
        assert!(!Value::str("abc").loose_eq(&Value::str("ABC")));
    }

    #[test]
    fn identity_is_strict() {
        assert!(!Value::Int(1).identical(&Value::Float(1.0)));
        assert!(!Value::Int(0).identical(&Value::str("0")));
        assert!(Value::str("x").identical(&Value::str("x")));
    }

    #[test]
    fn array_equality() {
        let mut a = PhpArray::new();
        a.set(ArrayKey::Str("k".into()), Value::Int(1));
        let mut b = PhpArray::new();
        b.set(ArrayKey::Str("k".into()), Value::str("1"));
        let (va, vb) = (Value::array(a), Value::array(b));
        assert!(va.loose_eq(&vb));
        assert!(!va.identical(&vb));
    }

    #[test]
    fn string_conversion() {
        assert_eq!(Value::Float(2.0).to_php_string(), "2");
        assert_eq!(Value::Float(2.5).to_php_string(), "2.5");
        assert_eq!(Value::Bool(true).to_php_string(), "1");
        assert_eq!(Value::Bool(false).to_php_string(), "");
        assert_eq!(Value::Null.to_php_string(), "");
    }

    #[test]
    fn numeric_prefix_parsing() {
        assert_eq!(Value::str("12abc").to_php_int(), 12);
        assert_eq!(Value::str("3.5x").to_php_float(), 3.5);
        assert_eq!(Value::str("abc").to_php_int(), 0);
        assert_eq!(Value::str("-7").to_php_int(), -7);
    }

    #[test]
    fn comparison() {
        assert_eq!(
            Value::Int(2).loose_cmp(&Value::str("10")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("apple").loose_cmp(&Value::str("banana")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("2").loose_cmp(&Value::str("10")),
            Some(Ordering::Less) // Numeric strings compare numerically.
        );
    }

    #[test]
    fn copy_on_write_semantics() {
        let mut a = PhpArray::new();
        a.push(Value::Int(1));
        let v1 = Value::array(a);
        let v2 = v1.clone();
        // Mutating v2's array must not affect v1 (value semantics).
        if let Value::Array(rc) = &v2 {
            let mut rc = rc.clone();
            Arc::make_mut(&mut rc).push(Value::Int(2));
            assert_eq!(rc.len(), 2);
        }
        if let Value::Array(rc) = &v1 {
            assert_eq!(rc.len(), 1);
        }
    }

    #[test]
    fn wire_roundtrip_nested() {
        let mut inner = PhpArray::new();
        inner.set(ArrayKey::Str("x".into()), Value::Float(1.5));
        let mut outer = PhpArray::new();
        outer.push(Value::array(inner));
        outer.set(ArrayKey::Str("s".into()), Value::str("hé"));
        outer.set(ArrayKey::Int(5), Value::Bool(true));
        let v = Value::array(outer);
        let bytes = v.to_wire_bytes();
        let back = Value::from_wire_bytes(&bytes).unwrap();
        assert!(v.identical(&back));
        // next_int survives the roundtrip.
        if let (Value::Array(a), Value::Array(b)) = (&v, &back) {
            let mut a2 = (**a).clone();
            let mut b2 = (**b).clone();
            assert_eq!(a2.push(Value::Null), b2.push(Value::Null));
        }
    }
}
