//! The bytecode the VM executes.
//!
//! A stack machine close in spirit to HHVM's (§4.2: "the PHP runtime
//! translates each program line to byte code"). The opcode set includes
//! the instruction categories Fig. 10 measures: `Mul` (Multiply),
//! `Concat`, `IssetPath*` (Isset), conditional jumps (Jump), `Load*`
//! (GetVal), `SetPath*` (ArraySet), `IterNext*` (Iteration),
//! `CallBuiltin` (Microtime et al.), `*Inc`/`*Dec` (Increment), and
//! `NewArray`.

use crate::value::Value;
use std::collections::HashMap;

/// One VM instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push the value of local slot `i`.
    LoadLocal(u16),
    /// Pop into local slot `i`.
    StoreLocal(u16),
    /// Push the value of global slot `i`.
    LoadGlobal(u16),
    /// Pop into global slot `i`.
    StoreGlobal(u16),
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two stack values (used by by-reference builtins).
    Swap,
    /// `+` with PHP numeric semantics.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (float division; integral results stay int when exact).
    Div,
    /// `%` (integer modulo).
    Mod,
    /// `.` string concatenation.
    Concat,
    /// `==` loose equality.
    Eq,
    /// `!=`.
    Ne,
    /// `===`.
    Identical,
    /// `!==`.
    NotIdentical,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `!`.
    Not,
    /// Unary `-`.
    Neg,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy. Updates the control-flow digest.
    JumpIfFalse(u32),
    /// Pop; jump when truthy. Updates the control-flow digest.
    JumpIfTrue(u32),
    /// Push an empty array.
    NewArray,
    /// `[arr, v] -> [arr']`: append with the next integer key.
    AppendStack,
    /// `[arr, k, v] -> [arr']`: set a key.
    InsertStack,
    /// `[base, k] -> [v]`: index read (array or string; null when
    /// missing).
    IndexGet,
    /// `[v, k1..kn] -> [v]`: set `local[slot][k1]..[kn] = v`.
    SetPathLocal(u16, u8),
    /// `[v, k1..kn] -> [v]`: set through a global slot.
    SetPathGlobal(u16, u8),
    /// `[v, k1..k(n-1)] -> [v]`: append at the end of the path
    /// (`$a[k1]..[] = v`); `n = 1` is the plain `$a[] = v`.
    AppendPathLocal(u16, u8),
    /// Append through a global slot.
    AppendPathGlobal(u16, u8),
    /// `[k1..kn] -> []`: unset `local[slot][k1]..[kn]`; `n = 0` clears
    /// the variable itself.
    UnsetPathLocal(u16, u8),
    /// Unset through a global slot.
    UnsetPathGlobal(u16, u8),
    /// `[k1..kn] -> [bool]`: isset on a local path; `n = 0` tests the
    /// variable.
    IssetPathLocal(u16, u8),
    /// Isset through a global slot.
    IssetPathGlobal(u16, u8),
    /// `++$local` (push new value).
    PreIncLocal(u16),
    /// `$local++` (push old value).
    PostIncLocal(u16),
    /// `--$local`.
    PreDecLocal(u16),
    /// `$local--`.
    PostDecLocal(u16),
    /// `++$global`.
    PreIncGlobal(u16),
    /// `$global++`.
    PostIncGlobal(u16),
    /// `--$global`.
    PreDecGlobal(u16),
    /// `$global--`.
    PostDecGlobal(u16),
    /// Call user function `i` with `argc` stack arguments.
    Call(u16, u8),
    /// Call builtin `i` with `argc` stack arguments.
    CallBuiltin(u16, u8),
    /// Return the top of stack to the caller.
    Return,
    /// Return null.
    ReturnNull,
    /// Pop and append to the output buffer.
    Echo,
    /// `[arr] -> []`: push a fresh iterator over the array snapshot.
    IterInit,
    /// Advance the top iterator: push the next value, or jump to the
    /// target when exhausted. Updates the control-flow digest.
    IterNext(u32),
    /// Advance pushing key then value, or jump when exhausted.
    IterNextKV(u32),
    /// Pop the top iterator.
    IterPop,
}

/// A compiled function body.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Function name (lowercased; `"{main}"` for the script body).
    pub name: String,
    /// Number of declared parameters.
    pub num_params: u16,
    /// Constant-pool indices of parameter defaults (`None` = required).
    pub defaults: Vec<Option<u16>>,
    /// Total local slots (params first).
    pub num_locals: u16,
    /// The code.
    pub code: Vec<Op>,
}

/// A compiled script: the unit the server routes requests to.
#[derive(Debug, Clone)]
pub struct CompiledScript {
    /// Script path (e.g. `/wiki.php`), mixed into the control-flow
    /// digest seed.
    pub path: String,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// The script body.
    pub main: CompiledFunction,
    /// User functions, indexed by [`Op::Call`].
    pub functions: Vec<CompiledFunction>,
    /// Global slot names (superglobals first).
    pub global_names: Vec<String>,
}

/// Superglobal slot assignments, fixed across every script.
pub const SUPERGLOBALS: &[&str] = &["_GET", "_POST", "_COOKIE", "_SESSION", "_SERVER"];

/// Returns the fixed global slot of a superglobal, if `name` is one.
pub fn superglobal_slot(name: &str) -> Option<u16> {
    SUPERGLOBALS
        .iter()
        .position(|s| *s == name)
        .map(|i| i as u16)
}

impl CompiledScript {
    /// Map from function name to index (for diagnostics and tests).
    pub fn function_index(&self) -> HashMap<&str, u16> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i as u16))
            .collect()
    }

    /// Total instruction count across main and functions (the `ℓ_c`
    /// statistic of Fig. 11 counts *executed* instructions; this is the
    /// static size).
    pub fn code_size(&self) -> usize {
        self.main.code.len() + self.functions.iter().map(|f| f.code.len()).sum::<usize>()
    }
}
