//! The bytecode the VM executes.
//!
//! A stack machine close in spirit to HHVM's (§4.2: "the PHP runtime
//! translates each program line to byte code"). The opcode set includes
//! the instruction categories Fig. 10 measures: `Mul` (Multiply),
//! `Concat`, `IssetPath*` (Isset), conditional jumps (Jump), `Load*`
//! (GetVal), `SetPath*` (ArraySet), `IterNext*` (Iteration),
//! `CallBuiltin` (Microtime et al.), `*Inc`/`*Dec` (Increment), and
//! `NewArray`.

use crate::value::Value;
use std::collections::HashMap;

/// One VM instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push the value of local slot `i`.
    LoadLocal(u16),
    /// Pop into local slot `i`.
    StoreLocal(u16),
    /// Push the value of global slot `i`.
    LoadGlobal(u16),
    /// Pop into global slot `i`.
    StoreGlobal(u16),
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two stack values (used by by-reference builtins).
    Swap,
    /// `+` with PHP numeric semantics.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (float division; integral results stay int when exact).
    Div,
    /// `%` (integer modulo).
    Mod,
    /// `.` string concatenation.
    Concat,
    /// `==` loose equality.
    Eq,
    /// `!=`.
    Ne,
    /// `===`.
    Identical,
    /// `!==`.
    NotIdentical,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `!`.
    Not,
    /// Unary `-`.
    Neg,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy. Updates the control-flow digest.
    JumpIfFalse(u32),
    /// Pop; jump when truthy. Updates the control-flow digest.
    JumpIfTrue(u32),
    /// Push an empty array.
    NewArray,
    /// `[arr, v] -> [arr']`: append with the next integer key.
    AppendStack,
    /// `[arr, k, v] -> [arr']`: set a key.
    InsertStack,
    /// `[base, k] -> [v]`: index read (array or string; null when
    /// missing).
    IndexGet,
    /// `[v, k1..kn] -> [v]`: set `local[slot][k1]..[kn] = v`.
    SetPathLocal(u16, u8),
    /// `[v, k1..kn] -> [v]`: set through a global slot.
    SetPathGlobal(u16, u8),
    /// `[v, k1..k(n-1)] -> [v]`: append at the end of the path
    /// (`$a[k1]..[] = v`); `n = 1` is the plain `$a[] = v`.
    AppendPathLocal(u16, u8),
    /// Append through a global slot.
    AppendPathGlobal(u16, u8),
    /// `[k1..kn] -> []`: unset `local[slot][k1]..[kn]`; `n = 0` clears
    /// the variable itself.
    UnsetPathLocal(u16, u8),
    /// Unset through a global slot.
    UnsetPathGlobal(u16, u8),
    /// `[k1..kn] -> [bool]`: isset on a local path; `n = 0` tests the
    /// variable.
    IssetPathLocal(u16, u8),
    /// Isset through a global slot.
    IssetPathGlobal(u16, u8),
    /// `++$local` (push new value).
    PreIncLocal(u16),
    /// `$local++` (push old value).
    PostIncLocal(u16),
    /// `--$local`.
    PreDecLocal(u16),
    /// `$local--`.
    PostDecLocal(u16),
    /// `++$global`.
    PreIncGlobal(u16),
    /// `$global++`.
    PostIncGlobal(u16),
    /// `--$global`.
    PreDecGlobal(u16),
    /// `$global--`.
    PostDecGlobal(u16),
    /// Call user function `i` with `argc` stack arguments.
    Call(u16, u8),
    /// Call builtin `i` with `argc` stack arguments.
    CallBuiltin(u16, u8),
    /// Return the top of stack to the caller.
    Return,
    /// Return null.
    ReturnNull,
    /// Pop and append to the output buffer.
    Echo,
    /// `[arr] -> []`: push a fresh iterator over the array snapshot.
    IterInit,
    /// Advance the top iterator: push the next value, or jump to the
    /// target when exhausted. Updates the control-flow digest.
    IterNext(u32),
    /// Advance pushing key then value, or jump when exhausted.
    IterNextKV(u32),
    /// Pop the top iterator.
    IterPop,
}

/// Register-bytecode opcodes (the primary execution encoding).
///
/// Fixed-width 32-bit instructions in two formats:
///
/// ```text
///  31      24 23      16 15       8 7        0
/// +----------+----------+----------+----------+
/// |  opcode  |    A     |    B     |    C     |   ABC
/// +----------+----------+----------+----------+
/// |  opcode  |    A     |         BX          |   ABX
/// +----------+----------+----------+----------+
/// ```
///
/// `A`/`B`/`C` are register indices (or small immediates), `BX` is a
/// 16-bit constant-pool index or jump target. Locals occupy registers
/// `0..num_locals` of a frame's window; temporaries sit above them, and
/// the compiler reports the high watermark as
/// [`CompiledFunction::register_count`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ROp {
    /// `r[a] = r[b]`.
    Move = 0,
    /// `r[a] = consts[bx]`.
    LoadConst,
    /// `r[a] = globals[b]`.
    LoadGlobal,
    /// `globals[a] = r[b]`.
    StoreGlobal,
    /// `r[a] = r[b] + r[c]` (PHP numeric semantics).
    Add,
    /// `r[a] = r[b] - r[c]`.
    Sub,
    /// `r[a] = r[b] * r[c]`.
    Mul,
    /// `r[a] = r[b] / r[c]`.
    Div,
    /// `r[a] = r[b] % r[c]`.
    Mod,
    /// `r[a] = r[b] . r[c]`.
    Concat,
    /// `r[a] = r[b] == r[c]` (loose).
    Eq,
    /// `r[a] = r[b] != r[c]`.
    Ne,
    /// `r[a] = r[b] === r[c]`.
    Identical,
    /// `r[a] = r[b] !== r[c]`.
    NotIdentical,
    /// `r[a] = r[b] < r[c]`.
    Lt,
    /// `r[a] = r[b] <= r[c]`.
    Le,
    /// `r[a] = r[b] > r[c]`.
    Gt,
    /// `r[a] = r[b] >= r[c]`.
    Ge,
    /// `r[a] = !r[b]`.
    Not,
    /// `r[a] = -r[b]`.
    Neg,
    /// `pc = bx`.
    Jump,
    /// `if !truthy(r[a]) pc = bx`. Mixes a branch event into the digest.
    JumpIfFalse,
    /// `if truthy(r[a]) pc = bx`. Mixes a branch event into the digest.
    JumpIfTrue,
    /// `r[a] = []`.
    NewArray,
    /// `r[a][] = r[b]` (array-literal append; `r[a]` must be an array).
    ArrayAppend,
    /// `r[a][r[b]] = r[c]` (array-literal keyed insert).
    ArrayInsert,
    /// `r[a] = r[b][r[c]]` (array or string index read).
    IndexGet,
    /// `local[b][k1]..[kc] = r[a]`; keys in `r[a+1..a+1+c]`. The
    /// assigned value stays in `r[a]` (the expression result).
    SetPathLocal,
    /// Set through global slot `b`.
    SetPathGlobal,
    /// `local[b][k1]..[k(c-1)][] = r[a]`; keys in `r[a+1..a+c]`.
    AppendPathLocal,
    /// Append through global slot `b`.
    AppendPathGlobal,
    /// Unset `local[b]` through `c` keys in `r[a..a+c]`.
    UnsetPathLocal,
    /// Unset through global slot `b`.
    UnsetPathGlobal,
    /// `r[a] = isset(local[b][k1]..[kc])`; keys in `r[a..a+c]`.
    IssetPathLocal,
    /// Isset through global slot `b`.
    IssetPathGlobal,
    /// `r[a] = ++/--local-register b`; `c` is the variant
    /// (0 `++$x`, 1 `$x++`, 2 `--$x`, 3 `$x--`).
    IncDecLocal,
    /// Increment/decrement global slot `b` (same variants).
    IncDecGlobal,
    /// Call user function `a`: args in `r[b]..r[b+c]`, result in `r[b]`.
    /// The callee's window starts at the caller's `base +
    /// register_count`, so recursion reuses the pooled register file.
    Call,
    /// Call builtin `a` with the same convention. For by-reference
    /// builtins the updated target lands in `r[b]` and the PHP return
    /// value in `r[b+1]`.
    CallBuiltin,
    /// Return `r[a]` to the caller.
    Return,
    /// Return null.
    ReturnNull,
    /// Append `r[a]` to the output buffer.
    Echo,
    /// Push a fresh iterator over a snapshot of `r[a]`.
    IterInit,
    /// Advance the top iterator: `r[a] = value`, or `pc = bx` when
    /// exhausted. Mixes a branch event into the digest.
    IterNext,
    /// Advance: `r[a] = key`, `r[a+1] = value`, or `pc = bx`.
    IterNextKV,
    /// Pop the top iterator.
    IterPop,
}

/// Number of register opcodes (decode guard).
pub const ROP_COUNT: u8 = ROp::IterPop as u8 + 1;

impl ROp {
    /// Decodes an opcode byte; panics on garbage (compiler-generated
    /// code never contains any).
    #[inline]
    pub fn from_u8(b: u8) -> ROp {
        debug_assert!(b < ROP_COUNT, "invalid register opcode {b}");
        // SAFETY-free decode: exhaustive match keeps this safe code.
        match b {
            0 => ROp::Move,
            1 => ROp::LoadConst,
            2 => ROp::LoadGlobal,
            3 => ROp::StoreGlobal,
            4 => ROp::Add,
            5 => ROp::Sub,
            6 => ROp::Mul,
            7 => ROp::Div,
            8 => ROp::Mod,
            9 => ROp::Concat,
            10 => ROp::Eq,
            11 => ROp::Ne,
            12 => ROp::Identical,
            13 => ROp::NotIdentical,
            14 => ROp::Lt,
            15 => ROp::Le,
            16 => ROp::Gt,
            17 => ROp::Ge,
            18 => ROp::Not,
            19 => ROp::Neg,
            20 => ROp::Jump,
            21 => ROp::JumpIfFalse,
            22 => ROp::JumpIfTrue,
            23 => ROp::NewArray,
            24 => ROp::ArrayAppend,
            25 => ROp::ArrayInsert,
            26 => ROp::IndexGet,
            27 => ROp::SetPathLocal,
            28 => ROp::SetPathGlobal,
            29 => ROp::AppendPathLocal,
            30 => ROp::AppendPathGlobal,
            31 => ROp::UnsetPathLocal,
            32 => ROp::UnsetPathGlobal,
            33 => ROp::IssetPathLocal,
            34 => ROp::IssetPathGlobal,
            35 => ROp::IncDecLocal,
            36 => ROp::IncDecGlobal,
            37 => ROp::Call,
            38 => ROp::CallBuiltin,
            39 => ROp::Return,
            40 => ROp::ReturnNull,
            41 => ROp::Echo,
            42 => ROp::IterInit,
            43 => ROp::IterNext,
            44 => ROp::IterNextKV,
            _ => ROp::IterPop,
        }
    }
}

/// Encode/decode helpers for the 32-bit register instruction word.
pub mod rinsn {
    use super::ROp;

    /// Packs an ABC-format instruction.
    #[inline]
    pub fn abc(op: ROp, a: u8, b: u8, c: u8) -> u32 {
        ((op as u32) << 24) | ((a as u32) << 16) | ((b as u32) << 8) | c as u32
    }

    /// Packs an ABX-format instruction.
    #[inline]
    pub fn abx(op: ROp, a: u8, bx: u16) -> u32 {
        ((op as u32) << 24) | ((a as u32) << 16) | bx as u32
    }

    /// The opcode byte.
    #[inline]
    pub fn op(insn: u32) -> ROp {
        ROp::from_u8((insn >> 24) as u8)
    }

    /// Operand A.
    #[inline]
    pub fn a(insn: u32) -> usize {
        ((insn >> 16) & 0xff) as usize
    }

    /// Operand B.
    #[inline]
    pub fn b(insn: u32) -> usize {
        ((insn >> 8) & 0xff) as usize
    }

    /// Operand C.
    #[inline]
    pub fn c(insn: u32) -> usize {
        (insn & 0xff) as usize
    }

    /// Operand BX (constant index / jump target).
    #[inline]
    pub fn bx(insn: u32) -> usize {
        (insn & 0xffff) as usize
    }

    /// Rewrites the BX field (jump patching).
    #[inline]
    pub fn with_bx(insn: u32, bx: u16) -> u32 {
        (insn & 0xffff_0000) | bx as u32
    }
}

/// Renders one register instruction for the disassembler.
pub fn disasm_insn(insn: u32) -> String {
    use rinsn::{a, b, bx, c, op};
    let o = op(insn);
    match o {
        ROp::Move => format!("Move r{} <- r{}", a(insn), b(insn)),
        ROp::LoadConst => format!("LoadConst r{} <- consts[{}]", a(insn), bx(insn)),
        ROp::LoadGlobal => format!("LoadGlobal r{} <- g{}", a(insn), b(insn)),
        ROp::StoreGlobal => format!("StoreGlobal g{} <- r{}", a(insn), b(insn)),
        ROp::Add
        | ROp::Sub
        | ROp::Mul
        | ROp::Div
        | ROp::Mod
        | ROp::Concat
        | ROp::Eq
        | ROp::Ne
        | ROp::Identical
        | ROp::NotIdentical
        | ROp::Lt
        | ROp::Le
        | ROp::Gt
        | ROp::Ge => format!("{:?} r{} <- r{}, r{}", o, a(insn), b(insn), c(insn)),
        ROp::Not | ROp::Neg => format!("{:?} r{} <- r{}", o, a(insn), b(insn)),
        ROp::Jump => format!("Jump -> {}", bx(insn)),
        ROp::JumpIfFalse => format!("JumpIfFalse r{} -> {}", a(insn), bx(insn)),
        ROp::JumpIfTrue => format!("JumpIfTrue r{} -> {}", a(insn), bx(insn)),
        ROp::NewArray => format!("NewArray r{}", a(insn)),
        ROp::ArrayAppend => format!("ArrayAppend r{}[] <- r{}", a(insn), b(insn)),
        ROp::ArrayInsert => format!("ArrayInsert r{}[r{}] <- r{}", a(insn), b(insn), c(insn)),
        ROp::IndexGet => format!("IndexGet r{} <- r{}[r{}]", a(insn), b(insn), c(insn)),
        ROp::SetPathLocal => format!(
            "SetPathLocal local{} base=r{} keys={}",
            b(insn),
            a(insn),
            c(insn)
        ),
        ROp::SetPathGlobal => format!(
            "SetPathGlobal g{} base=r{} keys={}",
            b(insn),
            a(insn),
            c(insn)
        ),
        ROp::AppendPathLocal => format!(
            "AppendPathLocal local{} base=r{} n={}",
            b(insn),
            a(insn),
            c(insn)
        ),
        ROp::AppendPathGlobal => format!(
            "AppendPathGlobal g{} base=r{} n={}",
            b(insn),
            a(insn),
            c(insn)
        ),
        ROp::UnsetPathLocal => format!(
            "UnsetPathLocal local{} base=r{} keys={}",
            b(insn),
            a(insn),
            c(insn)
        ),
        ROp::UnsetPathGlobal => format!(
            "UnsetPathGlobal g{} base=r{} keys={}",
            b(insn),
            a(insn),
            c(insn)
        ),
        ROp::IssetPathLocal => format!(
            "IssetPathLocal r{} <- local{} keys={}",
            a(insn),
            b(insn),
            c(insn)
        ),
        ROp::IssetPathGlobal => format!(
            "IssetPathGlobal r{} <- g{} keys={}",
            a(insn),
            b(insn),
            c(insn)
        ),
        ROp::IncDecLocal => format!(
            "IncDecLocal r{} <- r{} variant={}",
            a(insn),
            b(insn),
            c(insn)
        ),
        ROp::IncDecGlobal => format!(
            "IncDecGlobal r{} <- g{} variant={}",
            a(insn),
            b(insn),
            c(insn)
        ),
        ROp::Call => format!("Call f{} base=r{} argc={}", a(insn), b(insn), c(insn)),
        ROp::CallBuiltin => format!(
            "CallBuiltin b{} base=r{} argc={}",
            a(insn),
            b(insn),
            c(insn)
        ),
        ROp::Return => format!("Return r{}", a(insn)),
        ROp::ReturnNull => "ReturnNull".to_string(),
        ROp::Echo => format!("Echo r{}", a(insn)),
        ROp::IterInit => format!("IterInit r{}", a(insn)),
        ROp::IterNext => format!("IterNext r{} -> {}", a(insn), bx(insn)),
        ROp::IterNextKV => format!("IterNextKV r{},r{} -> {}", a(insn), a(insn) + 1, bx(insn)),
        ROp::IterPop => "IterPop".to_string(),
    }
}

/// Disassembles a register-code body, one numbered line per instruction.
pub fn disasm(code: &[u32]) -> String {
    let mut out = String::new();
    for (i, insn) in code.iter().enumerate() {
        out.push_str(&format!("{i:4}  {}\n", disasm_insn(*insn)));
    }
    out
}

/// A compiled function body. Carries both encodings: the register code
/// (primary; executed by `vm::run_request` and the grouped VM) and the
/// stack code (the retained differential oracle, `vm::stack`).
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Function name (lowercased; `"{main}"` for the script body).
    pub name: String,
    /// Number of declared parameters.
    pub num_params: u16,
    /// Constant-pool indices of parameter defaults (`None` = required).
    pub defaults: Vec<Option<u16>>,
    /// Total local slots (params first) used by the stack encoding.
    pub num_locals: u16,
    /// The stack code (differential oracle).
    pub code: Vec<Op>,
    /// The register code (primary encoding).
    pub reg_code: Vec<u32>,
    /// Registers this function's frame window needs (locals + temp high
    /// watermark); the VM grows its pooled register file by this much
    /// per activation.
    pub register_count: u16,
}

/// A compiled script: the unit the server routes requests to.
#[derive(Debug, Clone)]
pub struct CompiledScript {
    /// Script path (e.g. `/wiki.php`), mixed into the control-flow
    /// digest seed.
    pub path: String,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// The script body.
    pub main: CompiledFunction,
    /// User functions, indexed by [`Op::Call`].
    pub functions: Vec<CompiledFunction>,
    /// Global slot names (superglobals first).
    pub global_names: Vec<String>,
}

/// Superglobal slot assignments, fixed across every script.
pub const SUPERGLOBALS: &[&str] = &["_GET", "_POST", "_COOKIE", "_SESSION", "_SERVER"];

/// Returns the fixed global slot of a superglobal, if `name` is one.
pub fn superglobal_slot(name: &str) -> Option<u16> {
    SUPERGLOBALS
        .iter()
        .position(|s| *s == name)
        .map(|i| i as u16)
}

impl CompiledScript {
    /// Map from function name to index (for diagnostics and tests).
    pub fn function_index(&self) -> HashMap<&str, u16> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i as u16))
            .collect()
    }

    /// Total instruction count across main and functions (the `ℓ_c`
    /// statistic of Fig. 11 counts *executed* instructions; this is the
    /// static size).
    pub fn code_size(&self) -> usize {
        self.main.code.len() + self.functions.iter().map(|f| f.code.len()).sum::<usize>()
    }
}
